//! The full distributed stack: a live threaded master/slave run with
//! heartbeats, then the same job on the virtual Cluster-UY.
//!
//! ```text
//! cargo run --release --example cluster_run
//! ```
//!
//! Part 1 executes the real §III protocol: master + m² slaves as ranks,
//! node announcements, run-task messages, per-iteration LOCAL allgather,
//! heartbeat monitoring, final GLOBAL gather and reduction.
//!
//! Part 2 re-runs the identical training on the virtual-time Cluster-UY
//! simulator and prints the Table-III-style comparison against a
//! sequential baseline — and asserts all three agree on the results.

use lipizzaner::prelude::*;
use std::time::Duration;

fn main() {
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = 4;
    cfg.training.batches_per_iteration = 3;

    let make_data = |_cell: usize, cfg: &TrainConfig| {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    };

    // ---- Part 1: real threaded master/slave run -------------------------
    println!("== part 1: threaded master/slave runtime (m²+1 = 5 ranks) ==");
    let outcome = run_distributed(
        &cfg,
        make_data,
        DistributedOptions {
            heartbeat_interval: Duration::from_millis(5),
            ..DistributedOptions::default()
        },
    );
    println!("node announcements:");
    for a in &outcome.announcements {
        println!("  world rank {} -> {}", a.rank, a.node_name);
    }
    println!(
        "heartbeat rounds: {} (any delayed: {})",
        outcome.heartbeat.len(),
        outcome.heartbeat.any_delayed()
    );
    println!(
        "distributed run: {:.2}s wall, best cell {} (G fitness {:.4})",
        outcome.report.wall_seconds,
        outcome.report.best().cell,
        outcome.report.best().gen_fitness
    );

    // ---- Part 2: virtual Cluster-UY + sequential baseline ---------------
    println!("\n== part 2: virtual Cluster-UY vs single core ==");
    let data = {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    };
    let mut seq = SequentialTrainer::new(&cfg, |_| data.clone());
    let seq_report = seq.run();

    let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
    let sim_outcome = sim.run(&cfg, |_| data.clone());
    println!(
        "single core: {:.2}s | virtual cluster: {:.3}s (virtual) => speedup {:.2} on {} cells",
        seq_report.wall_seconds,
        sim_outcome.virtual_wall(),
        seq_report.wall_seconds / sim_outcome.virtual_wall(),
        cfg.cells()
    );
    println!(
        "placement: {} node(s), worst best-effort slowdown {:.2}x, imbalance {:.3}",
        sim_outcome.placement.nodes_used,
        sim_outcome.placement.worst_speed(),
        sim_outcome.imbalance()
    );

    // ---- The invariant that makes the comparison meaningful -------------
    for ((d, s), v) in
        outcome.report.cells.iter().zip(&seq_report.cells).zip(&sim_outcome.report.cells)
    {
        assert_eq!(d.gen_fitness, s.gen_fitness, "threaded vs sequential diverged");
        assert_eq!(s.gen_fitness, v.gen_fitness, "sequential vs simulator diverged");
    }
    println!("\nall three drivers produced bit-identical training results ✓");
}
