//! Data dieting: training cells on shards of the dataset.
//!
//! ```text
//! cargo run --release --example data_dieting
//! ```
//!
//! The paper's reference [20] ("Data dieting in GAN training", Toutouh et
//! al. 2020) trains each Lipizzaner cell on a *subset* of the data to cut
//! memory and time. This example compares three partitions on the digit
//! workload — full data, disjoint shards, independent random quarters —
//! and reports training time plus the best cell's fitness for each.

use lipizzaner::data::DataPartition;
use lipizzaner::prelude::*;

fn config() -> TrainConfig {
    let mut cfg = TrainConfig::smoke(2);
    cfg.network.latent_dim = 16;
    cfg.network.hidden_layers = 1;
    cfg.network.hidden_units = 48;
    cfg.network.data_dim = lipizzaner::data::IMAGE_DIM;
    cfg.coevolution.iterations = 6;
    cfg.training.batch_size = 32;
    cfg.training.batches_per_iteration = 6;
    cfg.training.dataset_size = 640;
    cfg.training.eval_batch = 64;
    cfg.mutation.initial_lr = 1e-3;
    cfg
}

fn run(scheme: DataPartition, label: &str, full: &Matrix, cfg: &TrainConfig) {
    let cells = cfg.cells();
    let local_rows = scheme.rows_for_cell(full.rows(), cells, 0, 5).len();
    let mut trainer =
        SequentialTrainer::new(cfg, |cell| scheme.slice_for_cell(full, cells, cell, 5));
    let report = trainer.run();
    println!(
        "{label:<22} {local_rows:>4} rows/cell | {:.2}s | best G fitness {:.4}",
        report.wall_seconds,
        report.best().gen_fitness
    );
}

fn main() {
    let cfg = config();
    let digits = SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
    println!(
        "dataset: {} samples; grid {}x{} ({} cells)\n",
        digits.len(),
        cfg.grid.rows,
        cfg.grid.cols,
        cfg.cells()
    );
    println!("{:<22} {:>9} | time  | quality", "partition", "data");

    run(DataPartition::Full, "full (paper setup)", &digits.images, &cfg);
    run(DataPartition::Shards, "disjoint shards", &digits.images, &cfg);
    run(
        DataPartition::RandomSubset { fraction: 0.25 },
        "random quarters",
        &digits.images,
        &cfg,
    );

    println!(
        "\nsharded cells see 1/{} of the data each; the cellular exchange of\n\
         generators lets the grid still cover the full distribution — the\n\
         data-dieting effect of the paper's reference [20].",
        cfg.cells()
    );
}
