//! The dynamic `grid` class (§III-C): reshaping the grid and neighborhood
//! pattern at runtime.
//!
//! ```text
//! cargo run --release --example dynamic_topology
//! ```
//!
//! The paper highlights that, unlike the original Lipizzaner, the new
//! `grid` class "allows modifying the grid and also the structure of
//! neighboring processes dynamically … exploring different patterns for
//! training and learning". This example walks the topology through three
//! configurations and shows the neighborhoods and overlap sets.

use lipizzaner::prelude::*;

fn show(grid: &Grid, title: &str) {
    println!("== {title} ==");
    println!(
        "{} rows x {} cols, pattern {:?}, {} cells",
        grid.rows(),
        grid.cols(),
        grid.pattern(),
        grid.cell_count()
    );
    let center = grid.cell_count() / 2 + grid.cols() / 2;
    let center = center.min(grid.cell_count() - 1);
    println!("neighborhood of cell {center}:");
    println!("{}", grid.render_neighborhood(center));
    println!(
        "cells whose neighborhoods contain cell {center}: {:?}\n",
        grid.overlapping(center)
    );
}

fn main() {
    // Start with the paper's 4×4 torus and five-cell neighborhood (Fig. 1).
    let mut grid = Grid::square(4);
    show(&grid, "4x4 torus, five-cell neighborhood (paper Fig. 1)");

    // Widen migration: Moore-9 neighborhoods.
    grid.set_pattern(NeighborhoodPattern::Moore9);
    show(&grid, "4x4 torus, Moore-9 neighborhood (faster mixing)");

    // Reshape to a 2×8 ring-like torus mid-experiment.
    grid.regrid(2, 8);
    grid.set_pattern(NeighborhoodPattern::Cross5);
    show(&grid, "regridded to 2x8, back to five-cell");

    // Demonstrate that a training run picks the pattern up from config.
    let mut cfg = TrainConfig::smoke(2);
    cfg.grid.pattern = NeighborhoodPattern::Moore9;
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    let data = rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9);
    let mut trainer = SequentialTrainer::new(&cfg, |_| data.clone());
    let report = trainer.run();
    println!(
        "trained a 2x2 grid under Moore-9: sub-population size {} (vs 5 for the paper's pattern); best G fitness {:.4}",
        cfg.subpopulation_size(),
        report.best().gen_fitness
    );
}
