//! Quickstart: a minimal cellular coevolutionary GAN training run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Trains a 2×2 grid of tiny GANs on a synthetic dataset with the
//! sequential driver, then prints the per-cell outcome and the routine
//! profile (the same four routines the paper's Table IV analyses).

use lipizzaner::prelude::*;

fn main() {
    // A small-but-real configuration: same algorithm and phases as the
    // paper's Table I setup, toy sizes so this finishes in seconds.
    let mut cfg = TrainConfig::smoke(2);
    cfg.coevolution.iterations = 5;
    cfg.training.batches_per_iteration = 4;

    // Deterministic synthetic data in [-1, 1].
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    let data = rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9);

    println!(
        "training a {}x{} toroidal grid, {} iterations ...",
        cfg.grid.rows, cfg.grid.cols, cfg.coevolution.iterations
    );
    let mut trainer = SequentialTrainer::new(&cfg, |_| data.clone());
    let report = trainer.run();

    println!("\nper-cell results (fitness = adversarial loss, lower is better):");
    for cell in &report.cells {
        println!(
            "  cell {:>2} at {:?}: G fitness {:.4}, D fitness {:.4}",
            cell.cell, cell.coords, cell.gen_fitness, cell.disc_fitness
        );
    }
    println!(
        "\nbest cell: {} (G fitness {:.4})",
        report.best().cell,
        report.best().gen_fitness
    );

    println!("\nroutine profile (Table IV's rows):");
    for routine in Routine::ALL {
        let secs = report.profile.seconds(routine);
        if secs > 0.0 {
            println!("  {:<16} {:.4}s", routine.name(), secs);
        }
    }

    // Sample from the winning cell's ensemble.
    let mut ensembles = trainer.ensembles();
    let best = ensembles.swap_remove(report.best_cell);
    let samples = best.sample(4, &mut rng);
    println!(
        "\nsampled {} vectors from the best ensemble ({} mixture components)",
        samples.rows(),
        best.components()
    );
    println!("done in {:.2}s", report.wall_seconds);
}
