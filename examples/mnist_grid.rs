//! The paper's headline workload: digit generation on a cellular grid.
//!
//! ```text
//! cargo run --release --example mnist_grid
//! ```
//!
//! Trains a 2×2 grid with the Table I network topology (64→256→256→784
//! MLPs, batch 100) on the synthetic MNIST substitute, scores the result
//! with the classifier-based inception score / FID / mode-coverage stack,
//! and writes a sample gallery (`mnist_grid_samples.pgm`) plus ASCII
//! previews.

use lipizzaner::data::image;
use lipizzaner::prelude::*;

fn main() {
    // Table I networks; reduced iteration/batch counts so this example
    // finishes in about a minute on a laptop core.
    let mut cfg = TrainConfig::paper_table1();
    cfg.grid = lipizzaner::core::GridConfig::square(2);
    cfg.coevolution.iterations = 8;
    cfg.coevolution.mixture_every = 4;
    cfg.training.batches_per_iteration = 6;
    cfg.training.dataset_size = 1200;
    cfg.training.eval_batch = 100;

    println!("generating synthetic digit dataset ({} samples) ...", cfg.training.dataset_size);
    let digits = SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed);
    println!("training classifier-based scorer ...");
    let scorer = ScoreService::bootstrap(&digits, 4, 99);

    println!(
        "training {}x{} grid of Table-I GANs for {} iterations ...",
        cfg.grid.rows, cfg.grid.cols, cfg.coevolution.iterations
    );
    let images = digits.images.clone();
    let mut trainer = SequentialTrainer::new(&cfg, |_| images.clone());
    let report = trainer.run();
    println!("trained in {:.1}s", report.wall_seconds);

    // Score every cell's ensemble; report the best (the paper's §II-B
    // selection by quality score).
    let mut rng = Rng64::seed_from(2026);
    let ensembles = trainer.ensembles();
    let mut best: Option<(usize, f64)> = None;
    for (i, ensemble) in ensembles.iter().enumerate() {
        let samples = ensemble.sample(200, &mut rng);
        let scores = scorer.score(&samples);
        println!(
            "cell {i}: IS {:.3}, FID {:.1}, modes covered {}/10, TVD {:.3}",
            scores.inception, scores.fid, scores.coverage.covered, scores.coverage.tvd
        );
        if best.is_none_or(|(_, f)| scores.fid < f) {
            best = Some((i, scores.fid));
        }
    }
    let (best_cell, best_fid) = best.expect("at least one cell");
    println!("\nbest cell by FID: {best_cell} (FID {best_fid:.1})");

    // Dump samples from the best ensemble.
    let samples = ensembles[best_cell].sample(16, &mut rng);
    println!("\nfirst sample (ASCII):");
    println!("{}", image::to_ascii_28(samples.row(0)));
    let rows: Vec<&[f32]> = (0..16).map(|r| samples.row(r)).collect();
    let path = std::path::Path::new("mnist_grid_samples.pgm");
    image::write_pgm(path, &rows, lipizzaner::data::IMAGE_SIDE, 4).expect("write gallery");
    println!("wrote 4x4 sample gallery to {}", path.display());
}
