//! Why cellular training: mode collapse on the ring-of-Gaussians toy set.
//!
//! ```text
//! cargo run --release --example mode_collapse
//! ```
//!
//! Trains (a) a single isolated GAN and (b) a 2×2 cellular grid on the
//! classic 8-mode ring, then compares how many modes each covers. The
//! isolated GAN routinely drops modes; the coevolutionary grid's diverse
//! sub-populations and migration pressure keep more of the ring alive —
//! the motivation the paper cites for Lipizzaner-style training (§I, §II).

use lipizzaner::prelude::*;

fn ring_config(grid_m: usize, pattern: NeighborhoodPattern) -> TrainConfig {
    let mut cfg = TrainConfig::smoke(grid_m);
    cfg.grid.pattern = pattern;
    cfg.network.latent_dim = 8;
    cfg.network.hidden_layers = 2;
    cfg.network.hidden_units = 32;
    cfg.network.data_dim = 2;
    cfg.coevolution.iterations = 30;
    cfg.coevolution.mixture_every = 5;
    cfg.training.batch_size = 64;
    cfg.training.batches_per_iteration = 8;
    cfg.training.dataset_size = 1024;
    cfg.training.eval_batch = 128;
    cfg.mutation.initial_lr = 1e-3;
    cfg
}

fn covered_by(cfg: &TrainConfig, ring: &RingDataset, label: &str) -> usize {
    let data = ring.points.clone();
    let mut trainer = SequentialTrainer::new(cfg, |_| data.clone());
    let report = trainer.run();
    let mut rng = Rng64::seed_from(7);
    // Sample from the best cell's ensemble.
    let ensembles = trainer.ensembles();
    let samples = ensembles[report.best_cell].sample(512, &mut rng);
    let covered = ring.covered_modes(&samples, 0.02);
    println!(
        "{label}: {covered}/8 modes covered (best cell {}, G fitness {:.3}, {:.1}s)",
        report.best().cell,
        report.best().gen_fitness,
        report.wall_seconds
    );
    covered
}

fn main() {
    let ring = RingDataset::standard(1024, 42);
    println!(
        "ring dataset: {} samples over {} modes, radius {}, sigma {}\n",
        ring.len(),
        ring.num_modes,
        ring.radius,
        ring.sigma
    );

    // Baseline: one isolated GAN (1×1 grid, no neighbors, no migration).
    let isolated = ring_config(1, NeighborhoodPattern::Isolated);
    let covered_isolated = covered_by(&isolated, &ring, "isolated single GAN  ");

    // Cellular: 2×2 toroidal grid with the paper's five-cell neighborhood.
    let cellular = ring_config(2, NeighborhoodPattern::Cross5);
    let covered_cellular = covered_by(&cellular, &ring, "2x2 cellular grid    ");

    println!(
        "\ncellular training covered {covered_cellular} modes vs {covered_isolated} for the isolated baseline"
    );
    if covered_cellular >= covered_isolated {
        println!("=> the coevolutionary grid resists mode collapse at least as well");
    } else {
        println!("=> unlucky seed: try a different data seed (training is stochastic)");
    }
}
