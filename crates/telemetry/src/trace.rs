//! Chrome trace-event export: merge per-rank journals into one timeline
//! that loads in Perfetto / `chrome://tracing`.
//!
//! Each rank becomes one track (`tid` = rank, named via a `thread_name`
//! metadata event). Span begin/end records become `"B"`/`"E"` duration
//! events under the Table IV routine names; everything else becomes a
//! thread-scoped `"i"` instant, so a mid-run kill, the frozen-frame
//! degradation window, and the rejoin are visible on the right rank's
//! track. Timestamps are the journal's nanoseconds converted to the
//! format's microseconds — real monotonic time for the distributed
//! drivers, virtual time for the cluster simulator, same format either
//! way so the two timelines are directly comparable.

use crate::journal::RankJournal;
use std::fmt::Write as _;

/// Render journals into a complete Chrome trace-event JSON document.
pub fn chrome_trace(journals: &[RankJournal]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for j in journals {
        emit(&mut out, &mut first, |out| {
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"rank {:02}\"}}}}",
                j.rank, j.rank
            );
        });
        for e in &j.events {
            let ts = e.t_ns as f64 / 1000.0;
            if let Some(name) = e.kind.span_open() {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"B\",\"pid\":0,\"tid\":{},\"ts\":{ts:.3},\"name\":\"{name}\",\"args\":{{\"cell\":{},\"iter\":{}}}}}",
                        j.rank, e.cell as i64, e.iter
                    );
                });
            } else if let Some(name) = e.kind.span_close() {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":{ts:.3},\"name\":\"{name}\"}}",
                        j.rank
                    );
                });
            } else {
                emit(&mut out, &mut first, |out| {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{ts:.3},\"name\":\"{}\",\"s\":\"t\",\"args\":{{\"cell\":{},\"iter\":{},\"arg\":{}}}}}",
                        j.rank,
                        e.kind.name(),
                        e.cell as i64,
                        e.iter,
                        e.arg
                    );
                });
            }
        }
        if j.dropped > 0 {
            emit(&mut out, &mut first, |out| {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":0.000,\"name\":\"events_dropped\",\"s\":\"t\",\"args\":{{\"dropped\":{}}}}}",
                    j.rank, j.dropped
                );
            });
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn emit(out: &mut String, first: &mut bool, f: impl FnOnce(&mut String)) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    f(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn journal() -> RankJournal {
        RankJournal {
            rank: 3,
            dropped: 0,
            events: vec![
                Event { t_ns: 1_000, kind: EventKind::GatherBegin, cell: 2, iter: 0, arg: 0 },
                Event { t_ns: 4_500, kind: EventKind::GatherEnd, cell: 2, iter: 0, arg: 3_500 },
                Event { t_ns: 9_000, kind: EventKind::Kill, cell: 2, iter: 2, arg: 0 },
            ],
        }
    }

    #[test]
    fn golden_trace_document() {
        // The exporter's exact output is part of the format contract: a
        // byte change here is a change Perfetto users will see.
        let got = chrome_trace(&[journal()]);
        let want = concat!(
            "{\"traceEvents\":[\n",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"rank 03\"}},\n",
            "{\"ph\":\"B\",\"pid\":0,\"tid\":3,\"ts\":1.000,\"name\":\"gather\",\"args\":{\"cell\":2,\"iter\":0}},\n",
            "{\"ph\":\"E\",\"pid\":0,\"tid\":3,\"ts\":4.500,\"name\":\"gather\"},\n",
            "{\"ph\":\"i\",\"pid\":0,\"tid\":3,\"ts\":9.000,\"name\":\"kill\",\"s\":\"t\",\"args\":{\"cell\":2,\"iter\":2,\"arg\":0}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(got, want);
    }

    #[test]
    fn balanced_begin_end_pairs() {
        let trace = chrome_trace(&[journal()]);
        assert_eq!(
            trace.matches("\"ph\":\"B\"").count(),
            trace.matches("\"ph\":\"E\"").count()
        );
    }

    #[test]
    fn drop_marker_appears() {
        let mut j = journal();
        j.dropped = 7;
        let trace = chrome_trace(&[j]);
        assert!(trace.contains("\"events_dropped\""));
        assert!(trace.contains("\"dropped\":7"));
    }

    #[test]
    fn one_track_per_rank() {
        let mut a = journal();
        a.rank = 1;
        let mut b = journal();
        b.rank = 2;
        let trace = chrome_trace(&[a, b]);
        assert!(trace.contains("\"name\":\"rank 01\""));
        assert!(trace.contains("\"name\":\"rank 02\""));
    }
}
