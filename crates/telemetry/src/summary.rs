//! The compact per-rank aggregate that rides the wire to the master.

use crate::metrics::LogHistogram;
use std::fmt::Write as _;

/// Rank stamp for a summary merged across ranks.
pub const MERGED_RANK: u32 = u32::MAX;

/// Everything a rank needs to report about a run (or a slice of one),
/// mergeable across ranks. Slaves ship one at every checkpoint commit
/// boundary and with the final result; the master folds them into the
/// live status line and the run summary persisted next to the `.lpz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Reporting world rank ([`MERGED_RANK`] once merged).
    pub rank: u32,
    /// Grid cell the rank trains ([`crate::NO_CELL`] when merged).
    pub cell: u32,
    /// Iterations completed (max across ranks when merged).
    pub iterations: u64,
    /// Per-iteration blocking gather latency histogram (ns).
    pub gather_ns: LogHistogram,
    /// Per-iteration train-phase latency histogram (ns).
    pub train_ns: LogHistogram,
    /// Total wall ns between posting an exchange and consuming its frame.
    pub exchange_wall_ns: u64,
    /// Checkpoint cuts committed.
    pub checkpoints: u64,
    /// Iterations gathered against a frozen death-frame.
    pub degraded_iters: u64,
    /// Structural snapshot staleness (0 sync, 1 async; max when merged).
    pub staleness: u64,
    /// In-flight rejoins performed (sum when merged).
    pub rejoined: u64,
    /// Ranks the master replaced in-flight (master-side; sum when merged).
    pub replaced_ranks: u64,
    /// Journal records lost to ring overwrites.
    pub dropped_events: u64,
}

impl TelemetrySummary {
    /// An all-zero summary to merge into.
    pub fn empty() -> Self {
        Self {
            rank: MERGED_RANK,
            cell: crate::NO_CELL,
            iterations: 0,
            gather_ns: LogHistogram::new(),
            train_ns: LogHistogram::new(),
            exchange_wall_ns: 0,
            checkpoints: 0,
            degraded_iters: 0,
            staleness: 0,
            rejoined: 0,
            replaced_ranks: 0,
            dropped_events: 0,
        }
    }

    /// Fold another rank's summary into this one.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.rank = MERGED_RANK;
        self.cell = crate::NO_CELL;
        self.iterations = self.iterations.max(other.iterations);
        self.gather_ns.merge(&other.gather_ns);
        self.train_ns.merge(&other.train_ns);
        self.exchange_wall_ns += other.exchange_wall_ns;
        self.checkpoints += other.checkpoints;
        self.degraded_iters += other.degraded_iters;
        self.staleness = self.staleness.max(other.staleness);
        self.rejoined += other.rejoined;
        self.replaced_ranks += other.replaced_ranks;
        self.dropped_events += other.dropped_events;
    }

    /// Fraction of the exchange wall time hidden behind compute: `0` for
    /// a fully blocking exchange, approaching `1` when the async pipeline
    /// hides nearly all of it.
    pub fn overlap_fraction(&self) -> f64 {
        if self.exchange_wall_ns == 0 {
            return 0.0;
        }
        (1.0 - self.gather_ns.sum as f64 / self.exchange_wall_ns as f64).clamp(0.0, 1.0)
    }

    /// The master's one-line live status: latency quantiles, overlap,
    /// staleness, and fault history at a glance.
    pub fn status_line(&self) -> String {
        format!(
            "telemetry iter {} | train p50 {} p99 {} | gather p50 {} p99 {} | overlap {:.0}% | staleness {} | degraded {} | rejoined {} | replaced {} | drops {}",
            self.iterations,
            fmt_ns(self.train_ns.quantile(0.5)),
            fmt_ns(self.train_ns.quantile(0.99)),
            fmt_ns(self.gather_ns.quantile(0.5)),
            fmt_ns(self.gather_ns.quantile(0.99)),
            self.overlap_fraction() * 100.0,
            self.staleness,
            self.degraded_iters,
            self.rejoined,
            self.replaced_ranks,
            self.dropped_events,
        )
    }

    /// Append this summary as a JSON object (the persisted run-summary
    /// schema; hand-emitted — no `serde_json` in the offline set).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let _ = write!(
            out,
            "\"rank\":{},\"cell\":{},\"iterations\":{},",
            self.rank, self.cell, self.iterations
        );
        write_hist_json(out, "gather_ns", &self.gather_ns);
        out.push(',');
        write_hist_json(out, "train_ns", &self.train_ns);
        let _ = write!(
            out,
            ",\"exchange_wall_ns\":{},\"overlap_fraction\":{:.4},\"checkpoints\":{},\"degraded_iters\":{},\"staleness\":{},\"rejoined\":{},\"replaced_ranks\":{},\"dropped_events\":{}",
            self.exchange_wall_ns,
            self.overlap_fraction(),
            self.checkpoints,
            self.degraded_iters,
            self.staleness,
            self.rejoined,
            self.replaced_ranks,
            self.dropped_events,
        );
        out.push('}');
    }
}

fn write_hist_json(out: &mut String, name: &str, h: &LogHistogram) {
    let _ = write!(
        out,
        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.quantile(0.5),
        h.quantile(0.99)
    );
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Human-readable nanoseconds (µs/ms/s as appropriate).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: u32) -> TelemetrySummary {
        let mut s = TelemetrySummary { rank, cell: rank - 1, ..TelemetrySummary::empty() };
        s.iterations = 6;
        s.gather_ns.observe(2_000_000);
        s.train_ns.observe(7_000_000);
        s.exchange_wall_ns = 8_000_000;
        s.checkpoints = 3;
        s.staleness = 1;
        s
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut m = TelemetrySummary::empty();
        m.merge(&sample(1));
        m.merge(&sample(2));
        assert_eq!(m.rank, MERGED_RANK);
        assert_eq!(m.iterations, 6);
        assert_eq!(m.gather_ns.count, 2);
        assert_eq!(m.checkpoints, 6);
        assert_eq!(m.exchange_wall_ns, 16_000_000);
        assert_eq!(m.staleness, 1);
    }

    #[test]
    fn overlap_fraction_bounds() {
        assert_eq!(TelemetrySummary::empty().overlap_fraction(), 0.0);
        let s = sample(1);
        // 2 ms blocked of an 8 ms exchange wall → 75% hidden.
        assert!((s.overlap_fraction() - 0.75).abs() < 1e-9);
        let mut all_blocked = sample(1);
        all_blocked.gather_ns.observe(u64::MAX / 2);
        assert_eq!(all_blocked.overlap_fraction(), 0.0);
    }

    #[test]
    fn status_line_mentions_the_vitals() {
        let line = sample(1).status_line();
        assert!(line.contains("iter 6"));
        assert!(line.contains("overlap 75%"));
        assert!(line.contains("staleness 1"));
    }

    #[test]
    fn json_shape() {
        let mut out = String::new();
        sample(1).write_json(&mut out);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"gather_ns\":{\"count\":1"));
        assert!(out.contains("\"overlap_fraction\":0.7500"));
        assert!(out.contains("\"buckets\":["));
    }
}
