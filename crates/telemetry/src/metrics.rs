//! The metrics registry: counters, gauges, and log2 histograms.
//!
//! Everything here is a plain inline value — no interior mutability, no
//! heap — so updating a metric in the training hot path is a handful of
//! integer operations and preserves the zero-allocation guarantee.

/// A monotonically increasing count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Add `n` to the count.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Add one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge(u64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Number of buckets in a [`LogHistogram`] — one per bit of a `u64`.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket base-2 logarithmic histogram. Bucket `b` counts values
/// in `[2^(b-1), 2^b)` (bucket 0 counts zero). Observation is a
/// `leading_zeros` and an array increment; quantiles come back as the
/// bucket's upper bound, so `p99` on nanosecond latencies is accurate to
/// within 2× at any scale without storing samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHistogram {
    /// Per-bucket counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (for means and overlap accounting).
    pub sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v).min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b.min(63) };
            }
        }
        u64::MAX
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Has nothing been observed yet?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The concrete per-rank registry every driver records into.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankMetrics {
    /// Per-iteration blocking gather latency (ns).
    pub gather_ns: LogHistogram,
    /// Per-iteration train-phase latency (ns).
    pub train_ns: LogHistogram,
    /// Iterations completed.
    pub iterations: Counter,
    /// Checkpoint cuts committed.
    pub checkpoints: Counter,
    /// Iterations that gathered against a frozen death-frame.
    pub degraded_iters: Counter,
    /// Wall nanoseconds between posting a neighbor exchange and its frame
    /// being consumed (overlap accounting: the async pipeline hides
    /// `1 - gather_ns.sum / exchange_wall_ns` of it behind compute).
    pub exchange_wall_ns: Counter,
    /// Structural snapshot staleness of the run (0 sync, 1 async).
    pub staleness: Gauge,
    /// Times this rank rejoined the mesh as an in-flight replacement.
    pub rejoined: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
    }

    #[test]
    fn quantiles_bound_observations() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        // p50 of {100,200,400,800,100000}: third observation (400) lands
        // in bucket 9 → upper bound 512.
        assert_eq!(h.quantile(0.5), 512);
        // p99 covers the outlier.
        assert!(h.quantile(0.99) >= 100_000);
        // Quantiles never under-report by more than the bucket width.
        assert!(h.quantile(1.0) >= 100_000 && h.quantile(1.0) <= 131_072);
        assert!((h.mean() - 20_300.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.observe(10);
        b.observe(1000);
        b.observe(2000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 3010);
        assert!(a.quantile(1.0) >= 2000);
    }
}
