//! The per-rank recorder: span API + event ring + metrics registry.

use crate::event::{Event, EventKind, SpanKind};
use crate::metrics::RankMetrics;
use crate::ring::{EventRing, DEFAULT_CAPACITY};
use crate::summary::TelemetrySummary;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token returned by [`Telemetry::begin`]; carries the span's start time
/// so [`Telemetry::end`] can both journal the span and hand the duration
/// to the `Profiler`.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart {
    at: Instant,
    t_ns: u64,
}

/// One rank's telemetry state. Exactly one per rank, owned by the
/// driver's training thread — recording takes `&mut self` and is a few
/// stores, no locks, no allocation.
///
/// A *disabled* recorder (the default when `--telemetry` is off) still
/// measures spans — the Table IV `Profiler` needs the durations either
/// way, which is what lets the drivers route all their timing through
/// this one API — but journals nothing and keeps no metrics.
#[derive(Debug)]
pub struct Telemetry {
    rank: u32,
    origin: Instant,
    ring: Option<Box<EventRing>>,
    /// The metrics registry (public: drivers bump counters directly).
    pub metrics: RankMetrics,
}

impl Telemetry {
    /// A recorder that measures but records nothing. Free: no ring is
    /// allocated and every record call is a no-op branch.
    pub fn disabled() -> Self {
        Self { rank: 0, origin: Instant::now(), ring: None, metrics: RankMetrics::default() }
    }

    /// An active recorder for `rank` with a ring of `capacity` events
    /// (0 = default). The only allocation happens here.
    pub fn enabled(rank: u32, capacity: usize) -> Self {
        let capacity = if capacity == 0 { DEFAULT_CAPACITY } else { capacity };
        Self {
            rank,
            origin: Instant::now(),
            ring: Some(Box::new(EventRing::new(capacity))),
            metrics: RankMetrics::default(),
        }
    }

    /// Build from a config-style gate: active when `enabled`.
    pub fn from_gate(enabled: bool, rank: u32, capacity: usize) -> Self {
        if enabled {
            Self::enabled(rank, capacity)
        } else {
            Self::disabled()
        }
    }

    /// Is this recorder journaling?
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// The rank this recorder belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Monotonic nanoseconds since this recorder's origin.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Open a Table IV routine span.
    pub fn begin(&mut self, kind: SpanKind, cell: u32, iter: u32) -> SpanStart {
        let t_ns = self.now_ns();
        if self.ring.is_some() {
            self.push(Event { t_ns, kind: kind.begin_kind(), cell, iter, arg: 0 });
        }
        SpanStart { at: Instant::now(), t_ns }
    }

    /// Close a span opened by [`Telemetry::begin`], journal it, feed the
    /// gather/train latency histograms, and return the measured duration
    /// for the caller's `Profiler`.
    pub fn end(&mut self, kind: SpanKind, cell: u32, iter: u32, start: SpanStart) -> Duration {
        let elapsed = start.at.elapsed();
        if self.ring.is_some() {
            let ns = elapsed.as_nanos() as u64;
            self.push(Event {
                t_ns: start.t_ns + ns,
                kind: kind.end_kind(),
                cell,
                iter,
                arg: ns,
            });
            match kind {
                SpanKind::Gather => self.metrics.gather_ns.observe(ns),
                SpanKind::Train => self.metrics.train_ns.observe(ns),
                _ => {}
            }
        }
        elapsed
    }

    /// Journal an instant event at the current time.
    pub fn instant(&mut self, kind: EventKind, cell: u32, iter: u32, arg: u64) {
        if self.ring.is_some() {
            let t_ns = self.now_ns();
            self.push(Event { t_ns, kind, cell, iter, arg });
        }
    }

    /// Journal an event at an explicit timestamp — the cluster
    /// simulator's entry point, which stamps virtual nanoseconds so the
    /// exported timeline lives on the simulated clock.
    pub fn record_at(&mut self, kind: EventKind, cell: u32, iter: u32, arg: u64, t_ns: u64) {
        if self.ring.is_some() {
            self.push(Event { t_ns, kind, cell, iter, arg });
        }
    }

    fn push(&mut self, e: Event) {
        if let Some(ring) = self.ring.as_mut() {
            ring.record(e);
        }
    }

    /// Live journal records, oldest first (empty when disabled).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter().flat_map(|r| r.iter())
    }

    /// Records lost to ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped())
    }

    /// The compact mergeable aggregate this rank ships to the master.
    pub fn summary(&self, cell: u32) -> TelemetrySummary {
        TelemetrySummary {
            rank: self.rank,
            cell,
            iterations: self.metrics.iterations.get(),
            gather_ns: self.metrics.gather_ns,
            train_ns: self.metrics.train_ns,
            exchange_wall_ns: self.metrics.exchange_wall_ns.get(),
            checkpoints: self.metrics.checkpoints.get(),
            degraded_iters: self.metrics.degraded_iters.get(),
            staleness: self.metrics.staleness.get(),
            rejoined: self.metrics.rejoined.get(),
            replaced_ranks: 0,
            dropped_events: self.dropped(),
        }
    }

    /// Write this rank's journal as JSONL (see [`crate::journal`]); a
    /// no-op returning `Ok` when disabled. Creates parent directories.
    pub fn write_journal(&self, path: &Path) -> std::io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        crate::journal::write_journal(path, self.rank, self.dropped(), self.events())
    }
}

/// A mutex-wrapped recorder for the master process, where the heartbeat
/// thread and the result-gathering thread both journal verdicts. Not for
/// training hot paths — slaves own their [`Telemetry`] directly.
#[derive(Debug)]
pub struct SharedTelemetry(Mutex<Telemetry>);

impl SharedTelemetry {
    /// Wrap a recorder for cross-thread journaling.
    pub fn new(tel: Telemetry) -> Self {
        Self(Mutex::new(tel))
    }

    /// Is the underlying recorder journaling?
    pub fn is_enabled(&self) -> bool {
        self.0.lock().expect("telemetry lock").is_enabled()
    }

    /// Journal an instant event at the current time.
    pub fn instant(&self, kind: EventKind, cell: u32, iter: u32, arg: u64) {
        self.0.lock().expect("telemetry lock").instant(kind, cell, iter, arg);
    }

    /// Write the journal file (no-op when disabled).
    pub fn write_journal(&self, path: &Path) -> std::io::Result<()> {
        self.0.lock().expect("telemetry lock").write_journal(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_measures_but_records_nothing() {
        let mut tel = Telemetry::disabled();
        let s = tel.begin(SpanKind::Train, 0, 0);
        std::thread::sleep(Duration::from_millis(2));
        let d = tel.end(SpanKind::Train, 0, 0, s);
        assert!(d >= Duration::from_millis(2), "span must still measure");
        tel.instant(EventKind::Kill, 0, 0, 0);
        assert_eq!(tel.events().count(), 0);
        assert!(tel.metrics.train_ns.is_empty());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn enabled_recorder_journals_spans_and_hists() {
        let mut tel = Telemetry::enabled(3, 16);
        let s = tel.begin(SpanKind::Gather, 2, 5);
        let d = tel.end(SpanKind::Gather, 2, 5, s);
        tel.instant(EventKind::CheckpointCommit, 2, 5, 6);
        let events: Vec<Event> = tel.events().copied().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::GatherBegin);
        assert_eq!(events[1].kind, EventKind::GatherEnd);
        assert_eq!(events[1].arg, events[1].t_ns - events[0].t_ns);
        assert_eq!(events[2].kind, EventKind::CheckpointCommit);
        assert_eq!(tel.metrics.gather_ns.count, 1);
        assert!(tel.metrics.gather_ns.sum <= d.as_nanos() as u64 + 1);
        assert_eq!(tel.rank(), 3);
    }

    #[test]
    fn summary_reflects_metrics() {
        let mut tel = Telemetry::enabled(2, 16);
        tel.metrics.iterations.add(6);
        tel.metrics.checkpoints.add(3);
        tel.metrics.staleness.set(1);
        let s = tel.summary(1);
        assert_eq!(s.rank, 2);
        assert_eq!(s.cell, 1);
        assert_eq!(s.iterations, 6);
        assert_eq!(s.checkpoints, 3);
        assert_eq!(s.staleness, 1);
    }

    #[test]
    fn shared_recorder_is_send_and_records() {
        let shared = SharedTelemetry::new(Telemetry::enabled(0, 8));
        std::thread::scope(|scope| {
            scope.spawn(|| shared.instant(EventKind::Conviction, 3, 2, 0));
        });
        assert!(shared.is_enabled());
        let dir = std::env::temp_dir().join("lipiz_tel_shared");
        let path = dir.join("master.jsonl");
        shared.write_journal(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\":\"conviction\""));
    }
}
