//! Fixed-capacity event ring: the allocation-free journal storage.

use crate::event::Event;

/// Default ring capacity when the configuration leaves it at 0.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A bounded ring of [`Event`]s. All storage is allocated once at
/// construction; recording is index arithmetic plus a slot store. When
/// the ring is full the **oldest** record is overwritten and
/// [`EventRing::dropped`] ticks — the newest events (the interesting end
/// of a run: kills, rejoins, the final iterations) always survive.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    /// Index of the logically first (oldest) record.
    head: usize,
    /// Number of live records (≤ capacity).
    len: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (clamped to ≥ 1); the
    /// single allocation happens here.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { buf: vec![Event::empty(); capacity], head: 0, len: 0, dropped: 0 }
    }

    /// Append a record; overwrites the oldest (and counts a drop) when
    /// full. Never allocates.
    pub fn record(&mut self, e: Event) {
        let cap = self.buf.len();
        if self.len < cap {
            let tail = (self.head + self.len) % cap;
            self.buf[tail] = e;
            self.len += 1;
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Live records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let cap = self.buf.len();
        (0..self.len).map(move |i| &self.buf[(self.head + i) % cap])
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Records lost to overwrites so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event { t_ns: t, kind: EventKind::TrainBegin, cell: 0, iter: t as u32, arg: 0 }
    }

    #[test]
    fn records_in_order_until_full() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for t in 0..7 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 4);
        let ts: Vec<u64> = r.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![4, 5, 6], "the newest records survive");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![2]);
        assert_eq!(r.dropped(), 1);
    }
}
