//! Per-rank JSONL journal files: one header line, one line per event.
//!
//! ```text
//! {"telemetry":1,"rank":3,"dropped":0}
//! {"t_ns":1200,"kind":"gather_begin","cell":2,"iter":0,"arg":0}
//! {"t_ns":5300,"kind":"gather_end","cell":2,"iter":0,"arg":4100}
//! ```
//!
//! Both the writer and the parser are hand-rolled (the offline dependency
//! set has no `serde_json`); the format is deliberately flat — every line
//! is one object of scalar fields — so a line-based parser is exact, and
//! `lipizzaner trace` can merge journals from any driver.

use crate::event::{Event, EventKind};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Journal format version tag written in the header line.
pub const JOURNAL_VERSION: u64 = 1;

/// One parsed per-rank journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankJournal {
    /// World rank the journal belongs to.
    pub rank: u32,
    /// Ring-overflow drop count at write time.
    pub dropped: u64,
    /// Events, oldest first.
    pub events: Vec<Event>,
}

/// Serialize a journal to its JSONL text.
pub fn journal_to_string<'a>(
    rank: u32,
    dropped: u64,
    events: impl Iterator<Item = &'a Event>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"telemetry\":{JOURNAL_VERSION},\"rank\":{rank},\"dropped\":{dropped}}}"
    );
    for e in events {
        let _ = writeln!(
            out,
            "{{\"t_ns\":{},\"kind\":\"{}\",\"cell\":{},\"iter\":{},\"arg\":{}}}",
            e.t_ns,
            e.kind.name(),
            e.cell,
            e.iter,
            e.arg
        );
    }
    out
}

/// Write a journal file, creating parent directories.
pub fn write_journal<'a>(
    path: &Path,
    rank: u32,
    dropped: u64,
    events: impl Iterator<Item = &'a Event>,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, journal_to_string(rank, dropped, events))
}

/// Extract the numeric value of `"key":` from a flat JSON object line.
fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle).ok_or_else(|| format!("missing field '{key}': {line}"))?;
    let rest = &line[at + needle.len()..];
    let end = rest.find([',', '}']).ok_or_else(|| format!("unterminated field '{key}'"))?;
    rest[..end].trim().parse::<u64>().map_err(|e| format!("field '{key}': {e}"))
}

/// Extract the quoted string value of `"key":` from a flat JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle).ok_or_else(|| format!("missing field '{key}': {line}"))?;
    let rest = &line[at + needle.len()..];
    let end = rest.find('"').ok_or_else(|| format!("unterminated string '{key}'"))?;
    Ok(&rest[..end])
}

/// Parse a journal back from its JSONL text.
pub fn parse_journal(text: &str) -> Result<RankJournal, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty journal")?;
    if field_u64(header, "telemetry")? != JOURNAL_VERSION {
        return Err(format!("unsupported journal version: {header}"));
    }
    let rank = field_u64(header, "rank")? as u32;
    let dropped = field_u64(header, "dropped")?;
    let mut events = Vec::new();
    for line in lines {
        let kind_name = field_str(line, "kind")?;
        let kind = EventKind::from_name(kind_name)
            .ok_or_else(|| format!("unknown event kind '{kind_name}'"))?;
        events.push(Event {
            t_ns: field_u64(line, "t_ns")?,
            kind,
            cell: field_u64(line, "cell")? as u32,
            iter: field_u64(line, "iter")? as u32,
            arg: field_u64(line, "arg")?,
        });
    }
    Ok(RankJournal { rank, dropped, events })
}

/// Read and parse every `*.jsonl` journal in `dir`, sorted by file name
/// (stable rank ordering for the trace exporter).
pub fn read_journal_dir(dir: &Path) -> io::Result<Vec<RankJournal>> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    let mut journals = Vec::new();
    for p in paths {
        let text = fs::read_to_string(&p)?;
        let j = parse_journal(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", p.display()))
        })?;
        journals.push(j);
    }
    Ok(journals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_small_journal() {
        let events = vec![
            Event { t_ns: 10, kind: EventKind::GatherBegin, cell: 0, iter: 0, arg: 0 },
            Event { t_ns: 40, kind: EventKind::GatherEnd, cell: 0, iter: 0, arg: 30 },
            Event { t_ns: 99, kind: EventKind::Kill, cell: u32::MAX, iter: 2, arg: 0 },
        ];
        let text = journal_to_string(7, 3, events.iter());
        let back = parse_journal(&text).unwrap();
        assert_eq!(back, RankJournal { rank: 7, dropped: 3, events });
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal("{\"telemetry\":99,\"rank\":0,\"dropped\":0}").is_err());
        let bad_kind =
            "{\"telemetry\":1,\"rank\":0,\"dropped\":0}\n{\"t_ns\":1,\"kind\":\"zap\",\"cell\":0,\"iter\":0,\"arg\":0}";
        assert!(parse_journal(bad_kind).is_err());
    }

    #[test]
    fn journal_dir_reads_sorted() {
        let dir = std::env::temp_dir().join("lipiz_tel_journal_dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_journal(&dir.join("node02.jsonl"), 2, 0, std::iter::empty()).unwrap();
        write_journal(&dir.join("node01.jsonl"), 1, 0, std::iter::empty()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let journals = read_journal_dir(&dir).unwrap();
        assert_eq!(journals.iter().map(|j| j.rank).collect::<Vec<_>>(), vec![1, 2]);
    }

    fn arb_event() -> impl Strategy<Value = Event> {
        (any::<u64>(), 0usize..EventKind::ALL.len(), any::<u32>(), any::<u32>(), any::<u64>())
            .prop_map(|(t_ns, k, cell, iter, arg)| Event {
                t_ns,
                kind: EventKind::ALL[k],
                cell,
                iter,
                arg,
            })
    }

    proptest! {
        #[test]
        fn journal_round_trip(
            rank in any::<u32>(),
            dropped in any::<u64>(),
            events in proptest::collection::vec(arb_event(), 0..32),
        ) {
            let text = journal_to_string(rank, dropped, events.iter());
            let back = parse_journal(&text).unwrap();
            prop_assert_eq!(back, RankJournal { rank, dropped, events });
        }
    }
}
