//! The fixed-size event record and its taxonomy.

/// Cell stamp for events that concern a whole rank (or the whole grid)
/// rather than one cell.
pub const NO_CELL: u32 = u32::MAX;

/// Everything the journal can record. Span kinds come in begin/end pairs
/// (the Table IV routines); the rest are instant events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Gather span opened (neighbor exchange / snapshot refresh).
    GatherBegin = 0,
    /// Gather span closed.
    GatherEnd = 1,
    /// Mutate span opened (hyperparameter mutation).
    MutateBegin = 2,
    /// Mutate span closed.
    MutateEnd = 3,
    /// Train span opened (mini-batch adversarial steps).
    TrainBegin = 4,
    /// Train span closed.
    TrainEnd = 5,
    /// Update-genomes span opened (re-evaluation + promotion + mixture ES).
    UpdateBegin = 6,
    /// Update-genomes span closed.
    UpdateEnd = 7,
    /// Other span opened (checkpoint capture, bookkeeping).
    OtherBegin = 8,
    /// Other span closed.
    OtherEnd = 9,
    /// Neighbor exchange posted (async: handed to the exchange thread;
    /// sync: the blocking allgather started). `arg` = generation.
    ExchangeBegin = 10,
    /// A gathered neighbor frame became available to compute.
    /// `arg` = the generation consumed.
    ExchangeComplete = 11,
    /// A checkpoint cut was committed. `arg` = committed iteration.
    CheckpointCommit = 12,
    /// The master's heartbeat missed a slave's status response.
    /// `cell` = suspect world rank, `arg` = consecutive misses so far.
    HeartbeatMiss = 13,
    /// The heartbeat convicted a slave as dead. `cell` = convicted world
    /// rank, `iter` = its last reported iteration count.
    Conviction = 14,
    /// A conviction was cleared (stale verdict, or replacement done).
    /// `cell` = the previously convicted world rank.
    ConvictionCleared = 15,
    /// A gather substituted a dead rank's frozen death-frame.
    /// `arg` = the absent world rank.
    Degraded = 16,
    /// A replacement rank finished solo catch-up and joined the live
    /// exchange. `iter` = the rejoin round.
    Rejoin = 17,
    /// A scripted kill boundary was reached; the process dies after this
    /// record is flushed.
    Kill = 18,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 19] = [
        EventKind::GatherBegin,
        EventKind::GatherEnd,
        EventKind::MutateBegin,
        EventKind::MutateEnd,
        EventKind::TrainBegin,
        EventKind::TrainEnd,
        EventKind::UpdateBegin,
        EventKind::UpdateEnd,
        EventKind::OtherBegin,
        EventKind::OtherEnd,
        EventKind::ExchangeBegin,
        EventKind::ExchangeComplete,
        EventKind::CheckpointCommit,
        EventKind::HeartbeatMiss,
        EventKind::Conviction,
        EventKind::ConvictionCleared,
        EventKind::Degraded,
        EventKind::Rejoin,
        EventKind::Kill,
    ];

    /// Stable journal name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GatherBegin => "gather_begin",
            EventKind::GatherEnd => "gather_end",
            EventKind::MutateBegin => "mutate_begin",
            EventKind::MutateEnd => "mutate_end",
            EventKind::TrainBegin => "train_begin",
            EventKind::TrainEnd => "train_end",
            EventKind::UpdateBegin => "update_begin",
            EventKind::UpdateEnd => "update_end",
            EventKind::OtherBegin => "other_begin",
            EventKind::OtherEnd => "other_end",
            EventKind::ExchangeBegin => "exchange_begin",
            EventKind::ExchangeComplete => "exchange_complete",
            EventKind::CheckpointCommit => "checkpoint_commit",
            EventKind::HeartbeatMiss => "heartbeat_miss",
            EventKind::Conviction => "conviction",
            EventKind::ConvictionCleared => "conviction_cleared",
            EventKind::Degraded => "degraded",
            EventKind::Rejoin => "rejoin",
            EventKind::Kill => "kill",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// For a span-begin kind, the name of the span it opens (the Table IV
    /// routine name); `None` for end markers and instants.
    pub fn span_open(self) -> Option<&'static str> {
        match self {
            EventKind::GatherBegin => Some("gather"),
            EventKind::MutateBegin => Some("mutate"),
            EventKind::TrainBegin => Some("train"),
            EventKind::UpdateBegin => Some("update genomes"),
            EventKind::OtherBegin => Some("other"),
            _ => None,
        }
    }

    /// For a span-end kind, the name of the span it closes.
    pub fn span_close(self) -> Option<&'static str> {
        match self {
            EventKind::GatherEnd => Some("gather"),
            EventKind::MutateEnd => Some("mutate"),
            EventKind::TrainEnd => Some("train"),
            EventKind::UpdateEnd => Some("update genomes"),
            EventKind::OtherEnd => Some("other"),
            _ => None,
        }
    }
}

/// The five Table IV span kinds, mirroring `lipiz_core::Routine` (this
/// crate sits below core in the dependency graph, so it defines its own
/// copy; core maps between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Neighbor gather / snapshot refresh.
    Gather,
    /// Hyperparameter mutation.
    Mutate,
    /// Mini-batch adversarial training.
    Train,
    /// Genome re-evaluation and replacement.
    Update,
    /// Everything else (checkpoint capture, bookkeeping).
    Other,
}

impl SpanKind {
    /// The event kind that opens this span.
    pub fn begin_kind(self) -> EventKind {
        match self {
            SpanKind::Gather => EventKind::GatherBegin,
            SpanKind::Mutate => EventKind::MutateBegin,
            SpanKind::Train => EventKind::TrainBegin,
            SpanKind::Update => EventKind::UpdateBegin,
            SpanKind::Other => EventKind::OtherBegin,
        }
    }

    /// The event kind that closes this span.
    pub fn end_kind(self) -> EventKind {
        match self {
            SpanKind::Gather => EventKind::GatherEnd,
            SpanKind::Mutate => EventKind::MutateEnd,
            SpanKind::Train => EventKind::TrainEnd,
            SpanKind::Update => EventKind::UpdateEnd,
            SpanKind::Other => EventKind::OtherEnd,
        }
    }
}

/// One fixed-size journal record: 24 bytes of payload, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic nanoseconds since the recorder's origin (virtual
    /// nanoseconds for the cluster simulator).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Cell the event concerns ([`NO_CELL`] for rank-wide events; world
    /// rank for the master's heartbeat verdicts).
    pub cell: u32,
    /// Training iteration the event belongs to.
    pub iter: u32,
    /// Kind-specific argument (generation, miss count, absent rank, …).
    pub arg: u64,
}

impl Event {
    /// A zeroed placeholder record (ring pre-fill).
    pub fn empty() -> Self {
        Self { t_ns: 0, kind: EventKind::GatherBegin, cell: 0, iter: 0, arg: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn span_kinds_pair_up() {
        for s in [
            SpanKind::Gather,
            SpanKind::Mutate,
            SpanKind::Train,
            SpanKind::Update,
            SpanKind::Other,
        ] {
            let open = s.begin_kind().span_open().expect("begin opens");
            let close = s.end_kind().span_close().expect("end closes");
            assert_eq!(open, close);
            assert!(s.begin_kind().span_close().is_none());
            assert!(s.end_kind().span_open().is_none());
        }
        assert!(EventKind::Kill.span_open().is_none());
        assert!(EventKind::Kill.span_close().is_none());
    }
}
