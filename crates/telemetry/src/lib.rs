//! Run telemetry for the lipizzaner drivers.
//!
//! Training already *times* itself (the 5-routine `Profiler` in
//! `lipiz-core` accumulates Table IV totals), but totals cannot explain
//! *when* things happened: async-exchange overlap, degraded gathers,
//! in-flight rank replacement, and checkpoint commits are invisible at
//! runtime. This crate is the observability substrate every driver
//! threads through:
//!
//! * [`Event`] / [`EventRing`] — a fixed-capacity, allocation-free
//!   per-rank event journal. Each event is a fixed-size record stamped
//!   with cell, iteration, and monotonic nanoseconds; when the ring is
//!   full the oldest record is overwritten and a drop counter ticks —
//!   the ring never resizes, so hot-path recording preserves the
//!   workspace's steady-state zero-allocation guarantee.
//! * [`metrics`] — a small metrics registry: [`metrics::Counter`],
//!   [`metrics::Gauge`], and fixed-bucket log2 [`metrics::LogHistogram`]s
//!   for per-iteration gather/train latency (p50/p99 without storing
//!   samples).
//! * [`Telemetry`] — the per-rank recorder combining both, with a span
//!   API ([`Telemetry::begin`] / [`Telemetry::end`]) that measures a
//!   Table IV routine *and* journals its begin/end, so ad-hoc
//!   `Instant::now()` timing collapses onto one code path. A disabled
//!   recorder still measures (the `Profiler` needs durations either way)
//!   but records nothing — telemetry off is free.
//! * [`TelemetrySummary`] — the compact mergeable aggregate slaves ship
//!   to the master at commit boundaries (and with the final result), so
//!   the master can print a live status line and persist a merged run
//!   summary next to the `.lpz`.
//! * [`journal`] / [`trace`] — per-rank JSONL journal files and the
//!   Chrome trace-event exporter (`lipizzaner trace`) that merges them
//!   into a Perfetto-loadable timeline, one track per rank. The cluster
//!   simulator emits the identical format on virtual time, so simulated
//!   and real timelines are directly comparable.
//!
//! Telemetry never touches RNG or training state: runs with and without
//! it produce byte-identical `.lpz` ensembles (asserted by the
//! integration suites).

pub mod event;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod ring;
pub mod summary;
pub mod trace;

pub use event::{Event, EventKind, SpanKind, NO_CELL};
pub use journal::{parse_journal, read_journal_dir, RankJournal};
pub use metrics::{Counter, Gauge, LogHistogram, RankMetrics};
pub use recorder::{SharedTelemetry, SpanStart, Telemetry};
pub use ring::EventRing;
pub use summary::{TelemetrySummary, MERGED_RANK};
pub use trace::chrome_trace;
