//! Inception score over classifier probabilities.

use lipiz_tensor::Matrix;

/// Inception score: `exp( E_x[ KL(p(y|x) ‖ p(y)) ] )`.
///
/// `probs` is `(n, classes)`, each row a conditional class distribution
/// p(y|x) (e.g. from [`crate::Classifier::probabilities`]). Higher is
/// better: confident per-sample predictions (low conditional entropy)
/// spread evenly over classes (high marginal entropy). The score lies in
/// `[1, classes]`.
pub fn inception_score(probs: &Matrix) -> f64 {
    let n = probs.rows();
    if n == 0 {
        return 1.0;
    }
    let c = probs.cols();
    // Marginal p(y).
    let mut marginal = vec![0.0f64; c];
    for r in 0..n {
        for (m, &p) in marginal.iter_mut().zip(probs.row(r)) {
            *m += p as f64;
        }
    }
    marginal.iter_mut().for_each(|m| *m /= n as f64);
    // Mean KL divergence.
    let eps = 1e-12f64;
    let mut mean_kl = 0.0f64;
    for r in 0..n {
        let mut kl = 0.0f64;
        for (j, &p) in probs.row(r).iter().enumerate() {
            let p = p as f64;
            if p > eps {
                kl += p * ((p + eps).ln() - (marginal[j] + eps).ln());
            }
        }
        mean_kl += kl;
    }
    (mean_kl / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a probability matrix from rows.
    fn probs(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn perfect_diverse_predictions_score_num_classes() {
        // 4 samples, 4 classes, each confidently a different class.
        let p = probs(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let is = inception_score(&p);
        assert!((is - 4.0).abs() < 1e-6, "IS {is}");
    }

    #[test]
    fn collapsed_predictions_score_one() {
        // All samples confidently the same class: KL(p||marginal)=0.
        let p = probs(&[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let is = inception_score(&p);
        assert!((is - 1.0).abs() < 1e-6, "IS {is}");
    }

    #[test]
    fn uniform_predictions_score_one() {
        // Maximum conditional entropy: also uninformative.
        let p = probs(&[&[0.25; 4], &[0.25; 4]]);
        let is = inception_score(&p);
        assert!((is - 1.0).abs() < 1e-6, "IS {is}");
    }

    #[test]
    fn partial_diversity_scores_in_between() {
        // Two confident classes out of four.
        let p = probs(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]]);
        let is = inception_score(&p);
        assert!(is > 1.5 && is < 4.0, "IS {is}");
        assert!((is - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_batch_scores_one() {
        let p = Matrix::zeros(0, 5);
        assert_eq!(inception_score(&p), 1.0);
    }

    #[test]
    fn score_is_bounded_by_class_count() {
        let p = probs(&[&[0.9, 0.1, 0.0], &[0.0, 0.8, 0.2], &[0.1, 0.0, 0.9]]);
        let is = inception_score(&p);
        assert!((1.0..=3.0 + 1e-9).contains(&is), "IS {is}");
    }
}
