//! Symmetric eigendecomposition (cyclic Jacobi) and PSD matrix square root.
//!
//! The Fréchet inception distance needs `tr((Σ₁Σ₂)^{1/2})`. Both covariance
//! matrices are symmetric PSD, so the trace can be computed through two
//! symmetric eigendecompositions without any general-matrix machinery:
//! `S₁ = Σ₁^{1/2}` (eigendecomposition of Σ₁), then
//! `tr((Σ₁Σ₂)^{1/2}) = tr((S₁Σ₂S₁)^{1/2})`, where `S₁Σ₂S₁` is symmetric PSD.
//!
//! The feature dimension here is ≤ 128, where cyclic Jacobi is accurate and
//! more than fast enough; everything runs in `f64` to keep the FID stable.

/// Dense symmetric matrix in `f64`, row-major, used only inside metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMat {
    /// Dimension.
    pub d: usize,
    /// Row-major storage, `d*d` entries.
    pub a: Vec<f64>,
}

impl SymMat {
    /// Zero matrix.
    pub fn zeros(d: usize) -> Self {
        Self { d, a: vec![0.0; d * d] }
    }

    /// From row-major data.
    ///
    /// # Panics
    /// Panics if `a.len() != d*d`.
    pub fn from_vec(d: usize, a: Vec<f64>) -> Self {
        assert_eq!(a.len(), d * d, "SymMat storage length");
        Self { d, a }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.d + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.d + j] = v;
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        (0..self.d).map(|i| self.get(i, i)).sum()
    }

    /// Maximum absolute asymmetry `max |a_ij - a_ji|` (diagnostic).
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.d {
            for j in (i + 1)..self.d {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// `self · other` (general product, both `d × d`).
    pub fn matmul(&self, other: &SymMat) -> SymMat {
        assert_eq!(self.d, other.d, "dim mismatch");
        let d = self.d;
        let mut out = SymMat::zeros(d);
        for i in 0..d {
            for k in 0..d {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..d {
                    out.a[i * d + j] += aik * other.a[k * d + j];
                }
            }
        }
        out
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` where `eigenvectors` is row-major
/// with eigenvector `k` in **column** `k`, satisfying `A ≈ V Λ Vᵀ`.
/// Off-diagonal mass below `1e-12 × ‖A‖` terminates; at most 50 sweeps.
pub fn sym_eigen(m: &SymMat) -> (Vec<f64>, SymMat) {
    let d = m.d;
    let mut a = m.clone();
    // Symmetrize defensively (covariances can carry f32 noise).
    for i in 0..d {
        for j in (i + 1)..d {
            let avg = 0.5 * (a.get(i, j) + a.get(j, i));
            a.set(i, j, avg);
            a.set(j, i, avg);
        }
    }
    let mut v = SymMat::zeros(d);
    for i in 0..d {
        v.set(i, i, 1.0);
    }
    let norm: f64 = a.a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    let tol = 1e-12 * norm;
    for _sweep in 0..50 {
        let mut off = 0.0f64;
        for i in 0..d {
            for j in (i + 1)..d {
                off += a.get(i, j).abs();
            }
        }
        if off < tol {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a.get(p, q);
                if apq.abs() < tol / (d * d) as f64 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of A.
                for k in 0..d {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..d {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // Accumulate rotations into V.
                for k in 0..d {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let eigvals = (0..d).map(|i| a.get(i, i)).collect();
    (eigvals, v)
}

/// Symmetric PSD square root `A^{1/2} = V diag(√max(λ,0)) Vᵀ`.
///
/// Negative eigenvalues (numerical noise from covariance estimation) are
/// clamped to zero.
#[allow(clippy::needless_range_loop)] // k indexes eigenpairs across two arrays
pub fn sqrtm_psd(m: &SymMat) -> SymMat {
    let d = m.d;
    let (vals, v) = sym_eigen(m);
    let mut out = SymMat::zeros(d);
    for k in 0..d {
        let s = vals[k].max(0.0).sqrt();
        if s == 0.0 {
            continue;
        }
        for i in 0..d {
            let vik = v.get(i, k);
            if vik == 0.0 {
                continue;
            }
            let w = s * vik;
            for j in 0..d {
                out.a[i * d + j] += w * v.get(j, k);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)] // k indexes eigenpairs
    fn reconstruct(vals: &[f64], v: &SymMat) -> SymMat {
        let d = v.d;
        let mut out = SymMat::zeros(d);
        for k in 0..d {
            for i in 0..d {
                for j in 0..d {
                    out.a[i * d + j] += vals[k] * v.get(i, k) * v.get(j, k);
                }
            }
        }
        out
    }

    #[test]
    fn eigen_of_diagonal() {
        let mut m = SymMat::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let (mut vals, _) = sym_eigen(&m);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_the_matrix() {
        // Random symmetric matrix.
        let d = 8;
        let mut m = SymMat::zeros(d);
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..d {
            for j in 0..=i {
                let v = next();
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let (vals, v) = sym_eigen(&m);
        let rec = reconstruct(&vals, &v);
        for i in 0..d * d {
            assert!((rec.a[i] - m.a[i]).abs() < 1e-8, "entry {i}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut m = SymMat::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                m.set(i, j, 1.0 / (1.0 + (i as f64 - j as f64).abs()));
            }
        }
        let (_, v) = sym_eigen(&m);
        for a in 0..4 {
            for b in 0..4 {
                let dot: f64 = (0..4).map(|k| v.get(k, a) * v.get(k, b)).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "columns {a},{b}: {dot}");
            }
        }
    }

    #[test]
    fn sqrtm_squares_back() {
        // PSD matrix: A = B Bᵀ.
        let d = 5;
        let mut b = SymMat::zeros(d);
        for i in 0..d {
            for j in 0..d {
                b.set(i, j, ((i * d + j) as f64 * 0.37).sin());
            }
        }
        let mut a = SymMat::zeros(d);
        for i in 0..d {
            for j in 0..d {
                let mut s = 0.0;
                for k in 0..d {
                    s += b.get(i, k) * b.get(j, k);
                }
                a.set(i, j, s);
            }
        }
        let s = sqrtm_psd(&a);
        let s2 = s.matmul(&s);
        for i in 0..d * d {
            assert!((s2.a[i] - a.a[i]).abs() < 1e-8, "entry {i}: {} vs {}", s2.a[i], a.a[i]);
        }
    }

    #[test]
    fn sqrtm_of_identity_is_identity() {
        let mut m = SymMat::zeros(6);
        for i in 0..6 {
            m.set(i, i, 1.0);
        }
        let s = sqrtm_psd(&m);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s.get(i, j) - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sqrtm_clamps_negative_noise() {
        let mut m = SymMat::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, -1e-9); // numerical noise
        let s = sqrtm_psd(&m);
        assert!(s.get(1, 1).abs() < 1e-4);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_and_asymmetry() {
        let mut m = SymMat::zeros(2);
        m.set(0, 0, 2.0);
        m.set(1, 1, 3.0);
        m.set(0, 1, 0.5);
        m.set(1, 0, 0.4);
        assert_eq!(m.trace(), 5.0);
        assert!((m.asymmetry() - 0.1).abs() < 1e-12);
    }
}
