//! Fréchet inception distance over classifier features.

use crate::eigen::{sqrtm_psd, SymMat};
use lipiz_tensor::{reduce, Matrix};

/// Gaussian fit (mean + covariance) of a feature batch, in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Feature mean, length `d`.
    pub mu: Vec<f64>,
    /// Feature covariance, `d × d`.
    pub cov: SymMat,
}

impl FeatureStats {
    /// Fit mean and covariance to feature rows `(n, d)`.
    pub fn fit(features: &Matrix) -> Self {
        let d = features.cols();
        let mu32 = reduce::col_mean(features);
        let cov32 = reduce::col_covariance(features);
        let mu = mu32.iter().map(|&v| v as f64).collect();
        let cov = SymMat::from_vec(d, cov32.as_slice().iter().map(|&v| v as f64).collect());
        Self { mu, cov }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mu.len()
    }
}

/// Fréchet distance between two Gaussian feature fits:
/// `‖μ₁-μ₂‖² + tr(Σ₁ + Σ₂ - 2(Σ₁Σ₂)^{1/2})`.
///
/// Lower is better; 0 iff the fits are identical. The matrix square root is
/// computed via two symmetric eigendecompositions (see [`crate::eigen`]).
///
/// # Panics
/// Panics if the two fits have different dimensions.
pub fn frechet_distance(a: &FeatureStats, b: &FeatureStats) -> f64 {
    assert_eq!(a.dim(), b.dim(), "feature dimension mismatch");
    let mean_term: f64 = a.mu.iter().zip(&b.mu).map(|(x, y)| (x - y) * (x - y)).sum();
    // tr((Σ₁Σ₂)^{1/2}) = tr((S₁ Σ₂ S₁)^{1/2}) with S₁ = Σ₁^{1/2}.
    let s1 = sqrtm_psd(&a.cov);
    let inner = s1.matmul(&b.cov).matmul(&s1);
    let (vals, _) = crate::eigen::sym_eigen(&inner);
    let tr_sqrt: f64 = vals.iter().map(|v| v.max(0.0).sqrt()).sum();
    let fid = mean_term + a.cov.trace() + b.cov.trace() - 2.0 * tr_sqrt;
    // Clamp tiny negative numerical noise.
    fid.max(0.0)
}

/// Convenience: FID between two raw feature batches.
pub fn fid_between(features_a: &Matrix, features_b: &Matrix) -> f64 {
    frechet_distance(&FeatureStats::fit(features_a), &FeatureStats::fit(features_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    #[test]
    fn identical_batches_have_zero_fid() {
        let mut rng = Rng64::seed_from(1);
        let f = rng.normal_matrix(200, 6, 0.0, 1.0);
        let fid = fid_between(&f, &f);
        assert!(fid < 1e-6, "FID {fid}");
    }

    #[test]
    fn mean_shift_increases_fid_quadratically() {
        let mut rng = Rng64::seed_from(2);
        let a = rng.normal_matrix(2000, 4, 0.0, 1.0);
        let mut b1 = a.clone();
        b1.map_inplace(|v| v + 1.0);
        let mut b2 = a.clone();
        b2.map_inplace(|v| v + 2.0);
        let f1 = fid_between(&a, &b1);
        let f2 = fid_between(&a, &b2);
        // Shifting all 4 dims by δ adds 4δ² to the mean term.
        assert!((f1 - 4.0).abs() < 0.2, "FID1 {f1}");
        assert!((f2 - 16.0).abs() < 0.5, "FID2 {f2}");
    }

    #[test]
    fn scale_mismatch_increases_fid() {
        let mut rng = Rng64::seed_from(3);
        let a = rng.normal_matrix(3000, 3, 0.0, 1.0);
        let mut b = rng.normal_matrix(3000, 3, 0.0, 1.0);
        b.map_inplace(|v| v * 3.0);
        let fid = fid_between(&a, &b);
        // For 1-D gaussians: (σ1-σ2)² per dim = 4 per dim = 12 total.
        assert!(fid > 8.0, "FID {fid}");
    }

    #[test]
    fn fid_is_symmetric() {
        let mut rng = Rng64::seed_from(4);
        let a = rng.normal_matrix(500, 5, 0.0, 1.0);
        let b = rng.normal_matrix(500, 5, 0.5, 1.5);
        let ab = fid_between(&a, &b);
        let ba = fid_between(&b, &a);
        assert!((ab - ba).abs() < 1e-6 * ab.max(1.0), "{ab} vs {ba}");
    }

    #[test]
    fn closer_distribution_scores_lower() {
        let mut rng = Rng64::seed_from(5);
        let real = rng.normal_matrix(1000, 4, 0.0, 1.0);
        let near = rng.normal_matrix(1000, 4, 0.1, 1.0);
        let far = rng.normal_matrix(1000, 4, 2.0, 1.0);
        assert!(fid_between(&real, &near) < fid_between(&real, &far));
    }

    #[test]
    fn stats_fit_shapes() {
        let mut rng = Rng64::seed_from(6);
        let f = rng.normal_matrix(50, 7, 0.0, 1.0);
        let stats = FeatureStats::fit(&f);
        assert_eq!(stats.dim(), 7);
        assert_eq!(stats.cov.d, 7);
        assert!(stats.cov.asymmetry() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let a = FeatureStats::fit(&Matrix::zeros(3, 2));
        let b = FeatureStats::fit(&Matrix::zeros(3, 4));
        frechet_distance(&a, &b);
    }
}
