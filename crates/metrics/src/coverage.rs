//! Mode-coverage statistics.
//!
//! Mode collapse is the pathology the cellular training is designed to
//! mitigate (§I). These helpers quantify it: classify generated samples,
//! compare the induced class histogram to the real one.

use lipiz_tensor::Matrix;

/// Normalized histogram over `classes` from integer labels.
pub fn label_histogram(labels: &[usize], classes: usize) -> Vec<f64> {
    let mut h = vec![0.0f64; classes];
    if labels.is_empty() {
        return h;
    }
    for &l in labels {
        assert!(l < classes, "label {l} out of range {classes}");
        h[l] += 1.0;
    }
    let inv = 1.0 / labels.len() as f64;
    h.iter_mut().for_each(|v| *v *= inv);
    h
}

/// Total variation distance between two distributions: `½ Σ |p_i - q_i|`.
///
/// # Panics
/// Panics if lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Number of classes whose share is at least `min_share`.
pub fn modes_covered(hist: &[f64], min_share: f64) -> usize {
    hist.iter().filter(|&&p| p >= min_share).count()
}

/// Shannon entropy of a distribution in nats.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum()
}

/// Summary of a generator's mode behaviour against a reference histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Normalized class histogram of generated samples.
    pub generated_hist: Vec<f64>,
    /// Total variation distance to the reference histogram.
    pub tvd: f64,
    /// Number of classes with ≥ 2% share.
    pub covered: usize,
    /// Entropy of the generated histogram (nats).
    pub entropy: f64,
}

/// Build a coverage report from predicted labels of generated samples.
pub fn coverage_report(predicted: &[usize], reference_hist: &[f64]) -> CoverageReport {
    let classes = reference_hist.len();
    let generated_hist = label_histogram(predicted, classes);
    CoverageReport {
        tvd: total_variation(&generated_hist, reference_hist),
        covered: modes_covered(&generated_hist, 0.02),
        entropy: entropy(&generated_hist),
        generated_hist,
    }
}

/// Proportion of samples a classifier maps to each class — convenience that
/// combines prediction and histogram for a probability matrix.
pub fn histogram_from_probs(probs: &Matrix) -> Vec<f64> {
    let labels = lipiz_tensor::reduce::row_argmax(probs);
    label_histogram(&labels, probs.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_normalizes() {
        let h = label_histogram(&[0, 0, 1, 2], 4);
        assert_eq!(h, vec![0.5, 0.25, 0.25, 0.0]);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = label_histogram(&[], 3);
        assert_eq!(h, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        label_histogram(&[5], 3);
    }

    #[test]
    fn tvd_properties() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
        // Disjoint supports => 1.
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modes_covered_threshold() {
        let h = vec![0.5, 0.3, 0.01, 0.19];
        assert_eq!(modes_covered(&h, 0.02), 3);
        assert_eq!(modes_covered(&h, 0.4), 1);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        let uniform = vec![0.25; 4];
        assert!((entropy(&uniform) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn collapsed_generator_report() {
        let reference = vec![0.1; 10];
        let predicted = vec![3usize; 100]; // everything is a "3"
        let r = coverage_report(&predicted, &reference);
        assert_eq!(r.covered, 1);
        assert!((r.tvd - 0.9).abs() < 1e-9);
        assert_eq!(r.entropy, 0.0);
    }

    #[test]
    fn healthy_generator_report() {
        let reference = vec![0.1; 10];
        let predicted: Vec<usize> = (0..100).map(|i| i % 10).collect();
        let r = coverage_report(&predicted, &reference);
        assert_eq!(r.covered, 10);
        assert!(r.tvd < 1e-9);
    }

    #[test]
    fn histogram_from_probs_argmax() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.7, 0.3]]);
        let h = histogram_from_probs(&probs);
        assert!((h[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((h[1] - 1.0 / 3.0).abs() < 1e-9);
    }
}
