//! Domain classifier used as the feature/probability extractor.
//!
//! The MNIST analogue of the Inception network: a softmax MLP trained on the
//! labelled synthetic digits. Its softmax output feeds the inception score
//! and mode-coverage statistics; its penultimate layer feeds the FID.

use lipiz_data::{SynthDigits, IMAGE_DIM, NUM_CLASSES};
use lipiz_nn::{Activation, Adam, Mlp};
use lipiz_tensor::{reduce, Matrix, Rng64};

/// Width of the penultimate (feature) layer.
pub const FEATURE_DIM: usize = 64;

/// A softmax digit classifier: 784 → 64 → 10 (logits).
#[derive(Debug, Clone, PartialEq)]
pub struct Classifier {
    net: Mlp,
}

impl Classifier {
    /// Train a classifier on `data` for `epochs` passes with batch 100.
    ///
    /// Training is deterministic given `(data, epochs, seed)`.
    pub fn train(data: &SynthDigits, epochs: usize, seed: u64) -> Self {
        let mut rng = Rng64::seed_from(seed);
        let mut net = Mlp::from_dims(
            &[IMAGE_DIM, FEATURE_DIM, NUM_CLASSES],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let mut adam = Adam::new(net.param_count());
        let n = data.len();
        let batch = 100.min(n);
        for _ in 0..epochs {
            let order = rng.permutation(n);
            for chunk in order.chunks(batch) {
                let x = data.images.gather_rows(chunk);
                let cache = net.forward_cached(&x);
                let probs = softmax_rows(cache.output());
                // d(cross-entropy)/d(logits) = (p - onehot) / m
                let mut d_out = probs;
                let m = chunk.len() as f32;
                for (r, &idx) in chunk.iter().enumerate() {
                    let label = data.labels[idx] as usize;
                    let row = d_out.row_mut(r);
                    row[label] -= 1.0;
                    for v in row.iter_mut() {
                        *v /= m;
                    }
                }
                let (grads, _) = net.backward(&cache, &d_out);
                adam.step(&mut net, &grads, 1e-3);
            }
        }
        Self { net }
    }

    /// Class probabilities `(n, 10)` for an image batch.
    pub fn probabilities(&self, images: &Matrix) -> Matrix {
        softmax_rows(&self.net.forward(images))
    }

    /// Penultimate-layer features `(n, FEATURE_DIM)`.
    pub fn features(&self, images: &Matrix) -> Matrix {
        let cache = self.net.forward_cached(images);
        // activations[0] = input, [1] = hidden layer output.
        cache.activations[1].clone()
    }

    /// Predicted class of each row.
    pub fn predict(&self, images: &Matrix) -> Vec<usize> {
        reduce::row_argmax(&self.net.forward(images))
    }

    /// Accuracy on a labelled dataset.
    pub fn accuracy(&self, data: &SynthDigits) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let pred = self.predict(&data.images);
        let correct =
            pred.iter().zip(&data.labels).filter(|(p, l)| **p == **l as usize).count();
        correct as f32 / data.len() as f32
    }
}

/// Row-wise softmax with max-subtraction for stability.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Larger logits get larger probability.
        assert!(p[(0, 2)] > p[(0, 1)]);
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let logits = Matrix::from_rows(&[&[1000.0, 0.0]]);
        let p = softmax_rows(&logits);
        assert!(p.all_finite());
        assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn classifier_learns_the_synthetic_digits() {
        let data = SynthDigits::generate(600, 11);
        let (train, test) = data.split(500);
        let clf = Classifier::train(&train, 6, 22);
        let acc = clf.accuracy(&test);
        assert!(acc > 0.85, "classifier test accuracy too low: {acc}");
    }

    #[test]
    fn features_have_expected_shape() {
        let data = SynthDigits::generate(60, 12);
        let clf = Classifier::train(&data, 1, 23);
        let f = clf.features(&data.images);
        assert_eq!(f.shape(), (60, FEATURE_DIM));
        assert!(f.all_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let data = SynthDigits::generate(100, 13);
        let a = Classifier::train(&data, 1, 24);
        let b = Classifier::train(&data, 1, 24);
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_on_empty_set_is_zero() {
        let data = SynthDigits::generate(40, 14);
        let clf = Classifier::train(&data, 1, 25);
        let (_, empty) = SynthDigits::generate(10, 15).split(10);
        assert_eq!(clf.accuracy(&empty), 0.0);
    }
}
