//! Kernel Inception Distance (unbiased MMD² with a polynomial kernel).
//!
//! KID (Bińkowski et al., 2018) is the standard complement to FID: an
//! unbiased estimator with no Gaussianity assumption, more reliable at the
//! small sample counts used inside a training loop. Computed over the same
//! classifier features as the FID.

use lipiz_tensor::{ops, Matrix};

/// Polynomial kernel `k(x, y) = (xᵀy / d + 1)³` evaluated blockwise.
fn poly_kernel_mean(a: &Matrix, b: &Matrix, skip_diagonal: bool) -> f64 {
    assert_eq!(a.cols(), b.cols(), "feature dims differ");
    let d = a.cols() as f64;
    let mut sum = 0.0f64;
    let mut count = 0.0f64;
    for i in 0..a.rows() {
        let ai = a.row(i);
        for j in 0..b.rows() {
            if skip_diagonal && i == j {
                continue;
            }
            let k = (f64::from(ops::dot(ai, b.row(j))) / d + 1.0).powi(3);
            sum += k;
            count += 1.0;
        }
    }
    if count == 0.0 {
        0.0
    } else {
        sum / count
    }
}

/// Unbiased KID estimate between two feature batches `(n, d)` / `(m, d)`.
///
/// `MMD²_u = E[k(x,x')] + E[k(y,y')] - 2 E[k(x,y)]`, diagonal terms
/// excluded from the within-set expectations. Lower is better; ~0 for
/// samples from the same distribution.
///
/// # Panics
/// Panics if either batch has fewer than 2 rows or dims differ.
pub fn kernel_inception_distance(real: &Matrix, generated: &Matrix) -> f64 {
    assert!(real.rows() >= 2 && generated.rows() >= 2, "KID needs ≥ 2 samples per side");
    let k_rr = poly_kernel_mean(real, real, true);
    let k_gg = poly_kernel_mean(generated, generated, true);
    let k_rg = poly_kernel_mean(real, generated, false);
    k_rr + k_gg - 2.0 * k_rg
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    #[test]
    fn same_distribution_scores_near_zero() {
        let mut rng = Rng64::seed_from(1);
        let a = rng.normal_matrix(200, 8, 0.0, 1.0);
        let b = rng.normal_matrix(200, 8, 0.0, 1.0);
        let kid = kernel_inception_distance(&a, &b);
        assert!(kid.abs() < 0.5, "KID {kid}");
    }

    #[test]
    fn shifted_distribution_scores_higher() {
        let mut rng = Rng64::seed_from(2);
        let a = rng.normal_matrix(150, 6, 0.0, 1.0);
        let near = rng.normal_matrix(150, 6, 0.2, 1.0);
        let far = rng.normal_matrix(150, 6, 2.0, 1.0);
        let kid_near = kernel_inception_distance(&a, &near);
        let kid_far = kernel_inception_distance(&a, &far);
        assert!(kid_far > kid_near, "near {kid_near} vs far {kid_far}");
        assert!(kid_far > 1.0, "far shift should be clearly visible: {kid_far}");
    }

    #[test]
    fn kid_is_symmetric() {
        let mut rng = Rng64::seed_from(3);
        let a = rng.normal_matrix(60, 5, 0.0, 1.0);
        let b = rng.normal_matrix(60, 5, 0.5, 1.2);
        let ab = kernel_inception_distance(&a, &b);
        let ba = kernel_inception_distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn identical_batches_are_minimal() {
        let mut rng = Rng64::seed_from(4);
        let a = rng.normal_matrix(80, 4, 0.0, 1.0);
        let self_kid = kernel_inception_distance(&a, &a);
        let other = rng.normal_matrix(80, 4, 1.0, 1.0);
        assert!(self_kid < kernel_inception_distance(&a, &other));
    }

    #[test]
    #[should_panic(expected = "≥ 2 samples")]
    fn single_sample_rejected() {
        let a = Matrix::zeros(1, 4);
        let b = Matrix::zeros(5, 4);
        kernel_inception_distance(&a, &b);
    }
}
