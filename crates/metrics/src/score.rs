//! The score service consumed by the trainer.
//!
//! Bundles the classifier, the real-data feature statistics, and the real
//! class histogram so that scoring a generator is a single call. The trainer
//! uses it for (1+1)-ES mixture-weight evolution and for the final
//! best-cell selection (§II-B).

use crate::classifier::Classifier;
use crate::coverage::{self, CoverageReport};
use crate::fid::{frechet_distance, FeatureStats};
use crate::inception::inception_score;
use lipiz_data::SynthDigits;
use lipiz_tensor::Matrix;

/// Quality scores of one generated batch.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerativeScores {
    /// Inception score over the classifier softmax (higher is better).
    pub inception: f64,
    /// Fréchet distance to the real-feature Gaussian fit (lower is better).
    pub fid: f64,
    /// Mode coverage report.
    pub coverage: CoverageReport,
}

/// Precomputed scoring context.
#[derive(Debug, Clone)]
pub struct ScoreService {
    classifier: Classifier,
    real_stats: FeatureStats,
    real_hist: Vec<f64>,
}

impl ScoreService {
    /// Build from a trained classifier and a reference (real) dataset.
    pub fn new(classifier: Classifier, reference: &SynthDigits) -> Self {
        let feats = classifier.features(&reference.images);
        let real_stats = FeatureStats::fit(&feats);
        let labels: Vec<usize> = reference.labels.iter().map(|&l| l as usize).collect();
        let real_hist = coverage::label_histogram(&labels, lipiz_data::NUM_CLASSES);
        Self { classifier, real_stats, real_hist }
    }

    /// Train a classifier on `reference` and build the service in one go.
    pub fn bootstrap(reference: &SynthDigits, epochs: usize, seed: u64) -> Self {
        let classifier = Classifier::train(reference, epochs, seed);
        Self::new(classifier, reference)
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// Real-data feature statistics.
    pub fn real_stats(&self) -> &FeatureStats {
        &self.real_stats
    }

    /// Score a batch of generated images.
    pub fn score(&self, images: &Matrix) -> GenerativeScores {
        let probs = self.classifier.probabilities(images);
        let inception = inception_score(&probs);
        let feats = self.classifier.features(images);
        let fid = frechet_distance(&FeatureStats::fit(&feats), &self.real_stats);
        let predicted = lipiz_tensor::reduce::row_argmax(&probs);
        let coverage = coverage::coverage_report(&predicted, &self.real_hist);
        GenerativeScores { inception, fid, coverage }
    }

    /// FID only (cheaper; used inside the mixture-evolution loop).
    pub fn fid_of(&self, images: &Matrix) -> f64 {
        let feats = self.classifier.features(images);
        frechet_distance(&FeatureStats::fit(&feats), &self.real_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    fn service() -> (ScoreService, SynthDigits) {
        let data = SynthDigits::generate(400, 31);
        let svc = ScoreService::bootstrap(&data, 4, 32);
        (svc, data)
    }

    #[test]
    fn real_data_scores_well() {
        let (svc, data) = service();
        let holdout = SynthDigits::generate(200, 33);
        let scores = svc.score(&holdout.images);
        assert!(scores.inception > 3.0, "IS of real digits {}", scores.inception);
        assert!(scores.fid < 20.0, "FID of real digits {}", scores.fid);
        assert_eq!(scores.coverage.covered, 10);
        // Self-consistency: scoring the reference itself is near-perfect FID.
        let self_scores = svc.score(&data.images);
        assert!(self_scores.fid < 1e-3, "self FID {}", self_scores.fid);
    }

    #[test]
    fn noise_scores_poorly() {
        let (svc, _) = service();
        let mut rng = Rng64::seed_from(34);
        let noise = rng.uniform_matrix(200, lipiz_data::IMAGE_DIM, -1.0, 1.0);
        let noise_scores = svc.score(&noise);
        let holdout = SynthDigits::generate(200, 35);
        let real_scores = svc.score(&holdout.images);
        assert!(
            noise_scores.fid > real_scores.fid * 3.0,
            "noise FID {} vs real FID {}",
            noise_scores.fid,
            real_scores.fid
        );
    }

    #[test]
    fn collapsed_batch_has_low_inception_and_coverage() {
        let (svc, data) = service();
        // A "collapsed generator": repeats a single real sample.
        let row = data.images.slice_rows(0, 1);
        let collapsed = Matrix::vstack(&vec![&row; 100]).unwrap();
        let scores = svc.score(&collapsed);
        assert!(scores.inception < 1.5, "IS {}", scores.inception);
        assert_eq!(scores.coverage.covered, 1);
        assert!(scores.coverage.tvd > 0.8);
    }

    #[test]
    fn fid_of_matches_full_score() {
        let (svc, _) = service();
        let holdout = SynthDigits::generate(100, 36);
        let full = svc.score(&holdout.images);
        let only = svc.fid_of(&holdout.images);
        assert!((full.fid - only).abs() < 1e-9);
    }
}
