//! Generative-model quality metrics.
//!
//! Lipizzaner selects the final generative model by a quality score
//! (§II-B: "the sub-population with the highest quality according to some
//! fitness value, e.g., inception score"). On MNIST the original system uses
//! an MNIST classifier network in place of the Inception net. This crate
//! reproduces that stack for the synthetic digit dataset:
//!
//! * [`classifier::Classifier`] — a small softmax MLP trained on labelled
//!   synthetic digits; provides class probabilities and penultimate-layer
//!   features,
//! * [`inception::inception_score`] — `exp(E_x KL(p(y|x) ‖ p(y)))` over the
//!   classifier's probabilities,
//! * [`fid`] — Fréchet distance between Gaussian fits of feature
//!   activations, with the required symmetric matrix square root computed by
//!   the Jacobi eigensolver in [`eigen`],
//! * [`kid::kernel_inception_distance`] — unbiased kernel inception
//!   distance (polynomial-kernel MMD²), the small-sample complement to FID,
//! * [`coverage`] — mode-coverage statistics (total variation distance to
//!   the real class histogram, number of dominated/missing modes),
//! * [`score::ScoreService`] — the bundle the trainer consumes.
//!
//! # Example
//!
//! ```
//! use lipiz_data::SynthDigits;
//! use lipiz_metrics::ScoreService;
//!
//! let reference = SynthDigits::generate(120, 3);
//! let service = ScoreService::bootstrap(&reference, 1, 5);
//! // Real held-out digits score better (lower FID) than pure noise.
//! let held_out = SynthDigits::generate(60, 9);
//! let mut rng = lipiz_tensor::Rng64::seed_from(11);
//! let noise = rng.uniform_matrix(60, 784, -1.0, 1.0);
//! assert!(service.fid_of(&held_out.images) < service.fid_of(&noise));
//! ```

pub mod classifier;
pub mod coverage;
pub mod eigen;
pub mod fid;
pub mod inception;
pub mod kid;
pub mod score;

pub use classifier::Classifier;
pub use fid::FeatureStats;
pub use score::ScoreService;
