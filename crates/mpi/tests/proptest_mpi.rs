//! Property tests for the message-passing substrate: codec totality,
//! delivery exactly-once, and collective consistency under arbitrary
//! payloads.

use lipiz_mpi::transport::{encode_frame, FrameDecoder};
use lipiz_mpi::wire::Wire;
use lipiz_mpi::{Comm, Envelope, RecvFrom, Universe};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Totality: arbitrary bytes must decode to Ok or Err, never panic.
        let _ = Vec::<f32>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Option::<Vec<u64>>::from_bytes(&bytes);
        let _ = <(u32, Vec<u8>, bool)>::from_bytes(&bytes);
    }

    #[test]
    fn tuple_roundtrip(a in any::<u32>(), b in any::<i64>(), s in ".{0,32}") {
        let v = (a, b, s.clone());
        let back = <(u32, i64, String)>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn every_message_delivered_exactly_once(
        payloads in proptest::collection::vec(0u32..1000, 1..16)
    ) {
        // Rank 0 sends each payload once; rank 1 must receive exactly the
        // same multiset, in order (FIFO per src/tag).
        let received = Universe::run(2, |comm: Comm| {
            if comm.rank() == 0 {
                for p in &payloads {
                    comm.send(1, 3, p);
                }
                vec![]
            } else {
                (0..payloads.len())
                    .map(|_| comm.recv::<u32>(RecvFrom::Rank(0), 3).0)
                    .collect()
            }
        });
        prop_assert_eq!(&received[1], &payloads);
    }

    #[test]
    fn allgather_is_rank_indexed(values in proptest::collection::vec(any::<u16>(), 2..6)) {
        let n = values.len();
        let results = Universe::run(n, |comm: Comm| {
            comm.allgather(&values[comm.rank()])
        });
        for r in &results {
            prop_assert_eq!(r, &values);
        }
    }

    #[test]
    fn allreduce_sum_matches_local_sum(values in proptest::collection::vec(0i64..1000, 2..6)) {
        let n = values.len();
        let expected: i64 = values.iter().sum();
        let results = Universe::run(n, |comm: Comm| {
            comm.allreduce(&values[comm.rank()], |a, b| a + b)
        });
        for r in results {
            prop_assert_eq!(r, expected);
        }
    }

    #[test]
    fn framing_survives_arbitrary_stream_chunking(
        raw_envs in proptest::collection::vec(
            (any::<u16>(), 0usize..64, any::<u32>(), proptest::collection::vec(any::<u8>(), 0..96)),
            1..12,
        ),
        cuts in proptest::collection::vec(1usize..257, 1..48),
    ) {
        // The TCP reader sees an arbitrary re-chunking of the frame stream:
        // 1-byte reads, frames split across reads, several frames coalesced
        // into one read. Whatever the chunking, the decoder must hand back
        // exactly the sent envelopes, in order.
        let envelopes: Vec<Envelope> = raw_envs
            .into_iter()
            .map(|(context, src, tag, payload)| Envelope::new(context, src, tag, payload))
            .collect();
        let mut stream = Vec::new();
        for env in &envelopes {
            encode_frame(env, &mut stream);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut offset = 0;
        let mut cut_idx = 0;
        while offset < stream.len() {
            let step = cuts[cut_idx % cuts.len()].min(stream.len() - offset);
            decoder.extend(&stream[offset..offset + step]);
            offset += step;
            cut_idx += 1;
            while let Some(env) = decoder.next_frame().expect("valid stream") {
                decoded.push(env);
            }
        }
        prop_assert_eq!(decoded, envelopes);
        prop_assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(1usize..33, 1..16),
    ) {
        // Totality under hostile input: arbitrary bytes fed in arbitrary
        // chunks must yield Ok or Err — never a panic, never an infinite
        // loop — and after an error the decoder stays inert.
        let mut decoder = FrameDecoder::new();
        let mut offset = 0;
        let mut cut_idx = 0;
        let mut dead = false;
        while offset < bytes.len() && !dead {
            let step = cuts[cut_idx % cuts.len()].min(bytes.len() - offset);
            decoder.extend(&bytes[offset..offset + step]);
            offset += step;
            cut_idx += 1;
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        dead = true; // a real reader drops the connection here
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn bcast_from_any_root(root in 0usize..4, value in any::<u64>()) {
        let results = Universe::run(4, |comm: Comm| {
            let v = (comm.rank() == root).then_some(value);
            comm.bcast(root, v)
        });
        for r in results {
            prop_assert_eq!(r, value);
        }
    }
}
