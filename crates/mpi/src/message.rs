//! Message envelope and tag space.

use crate::wire::{Wire, WireError};
use bytes::{Buf, BufMut};

/// Message tag (user tags live below [`ReservedTags::RESERVED_BASE`]).
pub type Tag = u32;

/// Reserved tag constants used by the collective implementations.
pub struct ReservedTags;

impl ReservedTags {
    /// First reserved tag; user tags must stay below this.
    pub const RESERVED_BASE: Tag = 0xF000_0000;
    /// Barrier fan-in/fan-out.
    pub const BARRIER: Tag = Self::RESERVED_BASE;
    /// Broadcast payloads.
    pub const BCAST: Tag = Self::RESERVED_BASE + 1;
    /// Gather fan-in.
    pub const GATHER: Tag = Self::RESERVED_BASE + 2;
    /// Allgather = gather + bcast second phase.
    pub const ALLGATHER: Tag = Self::RESERVED_BASE + 3;
    /// Reduce fan-in.
    pub const REDUCE: Tag = Self::RESERVED_BASE + 4;
}

/// One message in flight between two ranks of a communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Communicator context id (isolates subgroup traffic).
    pub context: u16,
    /// Sender's rank *within that communicator's group*.
    pub src: usize,
    /// User or reserved tag.
    pub tag: Tag,
    /// Serialized payload.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Build an envelope.
    pub fn new(context: u16, src: usize, tag: Tag, payload: Vec<u8>) -> Self {
        Self { context, src, tag, payload }
    }

    /// Does this envelope match a receive posted for `(context, src, tag)`?
    /// `src = None` means receive-from-any.
    pub fn matches(&self, context: u16, src: Option<usize>, tag: Tag) -> bool {
        self.context == context && self.tag == tag && src.is_none_or(|s| s == self.src)
    }
}

/// Envelopes cross process boundaries on socket transports, so they encode
/// with the same little-endian codec as every payload. The payload gets a
/// `u32` length prefix and is copied as one slice (not element-wise) — this
/// is the hot path of the TCP transport.
impl Wire for Envelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.context.encode(buf);
        self.src.encode(buf);
        self.tag.encode(buf);
        (self.payload.len() as u32).encode(buf);
        buf.put_slice(&self.payload);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let context = u16::decode(buf)?;
        let src = usize::decode(buf)?;
        let tag = Tag::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return Err(WireError::new("envelope payload"));
        }
        let payload = buf[..len].to_vec();
        buf.advance(len);
        Ok(Self { context, src, tag, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_rules() {
        let env = Envelope::new(3, 2, 7, vec![1, 2, 3]);
        assert!(env.matches(3, Some(2), 7));
        assert!(env.matches(3, None, 7));
        assert!(!env.matches(4, Some(2), 7), "wrong context");
        assert!(!env.matches(3, Some(1), 7), "wrong source");
        assert!(!env.matches(3, Some(2), 8), "wrong tag");
    }

    #[test]
    fn envelope_wire_round_trip() {
        for env in [
            Envelope::new(0, 0, 0, vec![]),
            Envelope::new(7, 3, ReservedTags::ALLGATHER, vec![1, 2, 3]),
            Envelope::new(u16::MAX, usize::MAX, u32::MAX, vec![0xAB; 1024]),
        ] {
            let back = Envelope::from_bytes(&env.to_bytes()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn envelope_decode_rejects_truncation() {
        let bytes = Envelope::new(1, 2, 3, vec![9; 16]).to_bytes();
        for cut in 0..bytes.len() {
            assert!(Envelope::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn reserved_tags_are_distinct_and_high() {
        let tags = [
            ReservedTags::BARRIER,
            ReservedTags::BCAST,
            ReservedTags::GATHER,
            ReservedTags::ALLGATHER,
            ReservedTags::REDUCE,
        ];
        for (i, a) in tags.iter().enumerate() {
            assert!(*a >= ReservedTags::RESERVED_BASE);
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
