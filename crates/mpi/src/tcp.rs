//! Multi-process TCP transport: the real distributed backend behind
//! [`crate::comm::Comm`].
//!
//! Every rank is one OS process. Rank 0 (the runtime's master) listens on a
//! socket; slaves connect, perform a versioned handshake, and get their
//! world rank plus an address book of every peer. The slaves then build a
//! full mesh among themselves (each rank dials every lower slave rank), so
//! any pair of ranks shares a dedicated stream — point-to-point sends never
//! route through a hub. Envelopes travel as length-prefixed frames
//! ([`crate::transport::encode_frame`]); one reader thread per stream
//! decodes frames into the local [`Mailbox`], where the usual selective
//! matching takes over. Nothing above the [`Transport`] trait can tell this
//! backend from the in-process [`crate::comm::Fabric`] — the
//! `distributed_process` integration suite proves the two produce
//! byte-identical training results.
//!
//! Shutdown is leader-led: the master hard-closes its streams once the
//! final gather is done ([`TcpFabric::shutdown`]); slaves half-close their
//! write sides and drain until the master's close arrives as EOF
//! ([`TcpFabric::shutdown_when_drained`]), which keeps in-flight result
//! frames safe from RST-induced loss. Sends to an already-gone peer are
//! dropped silently, and any receive with a deadline (the heartbeat path)
//! times out instead of hanging — which is how the runtime *detects and
//! reports* a dead peer. Untimed collectives keep MPI semantics: a rank
//! that dies mid-collective stalls the group, exactly as `MPI_Allgather`
//! would; acting on the heartbeat's verdict (abort, restart, re-rank) is
//! the runtime's future-work territory, not the transport's (see ROADMAP).

use crate::endpoint::Mailbox;
use crate::fault::{FaultPlan, FaultState};
use crate::message::Envelope;
use crate::transport::{encode_frame, FrameDecoder, Transport};
use crate::wire::Wire;
use crate::wire_struct;
use parking_lot::{Mutex, RwLock};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handshake magic ("LPZT").
const MAGIC: u32 = 0x4C50_5A54;
/// Handshake protocol version. Bump whenever any post-handshake wire
/// layout changes, so mixed builds are rejected at connect time ("version
/// skew") instead of panicking mid-run on a decode mismatch. v2: ConfigMsg
/// gained the checkpoint fields and RunTask the resume marker. v3: the
/// Welcome carries the rejoin marker and ConfigMsg the failure-semantics
/// block.
const VERSION: u32 = 3;
/// Deadline for every handshake read (a stuck bootstrap fails loudly
/// instead of hanging the suite).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a slave keeps retrying its dial to the master (covers manual
/// multi-machine runs where slaves start before the master listens).
const CONNECT_RETRY_WINDOW: Duration = Duration::from_secs(20);
/// How long a bootstrap waits for all expected peers to arrive before
/// failing loudly. Generous, because the multi-machine recipe has a human
/// starting slaves by hand — but finite, so a crashed-before-connecting
/// peer can never hang a launch forever.
const BOOTSTRAP_ACCEPT_TIMEOUT: Duration = Duration::from_secs(600);
/// Upper bound on a *handshake* frame. Real handshake messages are tens of
/// bytes (a Welcome with a thousand-slave address book is still ~30 KiB);
/// anything bigger is a hostile or confused client, rejected before the
/// body is allocated — unlike data frames, handshake peers are
/// unauthenticated, so they do not get the full
/// [`crate::transport::MAX_FRAME_LEN`] budget.
const MAX_HANDSHAKE_FRAME: usize = 64 * 1024;

/// Slave → master bootstrap hello: protocol id plus the port the slave's
/// own mesh listener is bound to (the master pairs it with the IP it
/// observed on the control connection, so the recipe works across hosts).
#[derive(Debug, Clone, PartialEq)]
struct Hello {
    magic: u32,
    version: u32,
    listen_port: u16,
}
wire_struct!(Hello { magic, version, listen_port });

/// Master → slave bootstrap welcome: the assigned world rank, the world
/// size, and the address book of every slave's mesh listener.
#[derive(Debug, Clone, PartialEq)]
struct Welcome {
    rank: usize,
    world_size: usize,
    /// `(world rank, "ip:port")` for every slave rank.
    peers: Vec<(usize, String)>,
    /// True when this welcome re-admits a replacement for a dead rank:
    /// the recipient inherits the victim's rank and must dial *every*
    /// other slave (survivors never dial a rejoiner).
    rejoin: bool,
}
wire_struct!(Welcome { rank, world_size, peers, rejoin });

/// Slave → slave mesh hello: identifies the dialing rank.
#[derive(Debug, Clone, PartialEq)]
struct PeerHello {
    magic: u32,
    version: u32,
    rank: usize,
}
wire_struct!(PeerHello { magic, version, rank });

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Write one length-prefixed frame carrying `body` (handshake helper; data
/// frames go through the per-peer scratch buffer instead).
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let mut out = Vec::with_capacity(4 + body.len());
    (body.len() as u32).encode(&mut out);
    out.extend_from_slice(body);
    stream.write_all(&out)
}

/// Read one length-prefixed frame (handshake helper).
fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_HANDSHAKE_FRAME {
        return Err(bad_data("handshake frame too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Accept one connection from a non-blocking `listener`, polling until
/// `deadline`. The returned stream is switched back to blocking mode.
fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Instant,
) -> io::Result<(TcpStream, SocketAddr)> {
    loop {
        match listener.accept() {
            Ok((stream, remote)) => {
                stream.set_nonblocking(false)?;
                return Ok((stream, remote));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "bootstrap accept deadline: expected peers never connected",
                    ));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn send_msg<T: Wire>(stream: &mut TcpStream, msg: &T) -> io::Result<()> {
    write_frame(stream, &msg.to_bytes())
}

fn recv_msg<T: Wire>(stream: &mut TcpStream, what: &str) -> io::Result<T> {
    let body = read_frame(stream)?;
    T::from_bytes(&body).map_err(|_| bad_data(what))
}

/// Receive and protocol-check one handshake message on a fresh connection.
fn handshake<T: Wire + HandshakeMsg>(stream: &mut TcpStream, what: &str) -> io::Result<T> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let msg: T = recv_msg(stream, what)?;
    check_protocol(msg.magic(), msg.version())?;
    Ok(msg)
}

/// Handshake messages carry the protocol id for [`check_protocol`].
trait HandshakeMsg {
    fn magic(&self) -> u32;
    fn version(&self) -> u32;
}

impl HandshakeMsg for Hello {
    fn magic(&self) -> u32 {
        self.magic
    }
    fn version(&self) -> u32 {
        self.version
    }
}

impl HandshakeMsg for PeerHello {
    fn magic(&self) -> u32 {
        self.magic
    }
    fn version(&self) -> u32 {
        self.version
    }
}

fn check_protocol(magic: u32, version: u32) -> io::Result<()> {
    if magic != MAGIC {
        return Err(bad_data("not a lipizzaner transport peer (bad magic)"));
    }
    if version != VERSION {
        return Err(bad_data("transport protocol version mismatch"));
    }
    Ok(())
}

/// One connected peer: the write half (framed, mutex-serialized so both
/// rank threads can send) plus a reusable frame-encode scratch buffer.
#[derive(Debug)]
struct PeerLink {
    stream: Mutex<(TcpStream, Vec<u8>)>,
}

impl PeerLink {
    fn new(stream: TcpStream) -> Self {
        Self { stream: Mutex::new((stream, Vec::new())) }
    }

    /// Frame and send `env`; returns false when the peer is gone.
    fn send(&self, env: &Envelope) -> bool {
        let mut guard = self.stream.lock();
        let (stream, scratch) = &mut *guard;
        scratch.clear();
        encode_frame(env, scratch);
        stream.write_all(scratch).is_ok()
    }

    fn shutdown(&self, how: Shutdown) {
        let _ = self.stream.lock().0.shutdown(how);
    }
}

/// The TCP-backed [`Transport`]: this process's end of a multi-process
/// universe. Build one with [`TcpFabric::master`] (rank 0, accepts the
/// bootstrap connections), [`TcpFabric::slave`] (dials the master and is
/// assigned a rank), or [`TcpFabric::rejoin`] (a replacement process
/// re-admitted into a dead rank's slot via [`TcpFabric::accept_rejoin`]).
#[derive(Debug)]
pub struct TcpFabric {
    rank: usize,
    world_size: usize,
    mailbox: Arc<Mailbox>,
    /// Index = world rank; `None` at `rank` (self-delivery is local). A
    /// slot is *swappable*: when a replacement rejoins, its fresh link is
    /// installed over the dead one while the rest of the mesh keeps
    /// running.
    peers: Vec<RwLock<Option<Arc<PeerLink>>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Mesh acceptor (slaves only): keeps the bootstrap-era mesh listener
    /// open so a rejoining replacement can dial in mid-run.
    acceptor: Mutex<Option<JoinHandle<()>>>,
    /// Raised by shutdown so the acceptor (and any poll loops) unwind.
    closing: AtomicBool,
    /// Master only: the bootstrap listener, retained so
    /// [`TcpFabric::accept_rejoin`] can re-admit a replacement.
    listener: Option<TcpListener>,
    /// Master only: the live mesh address book, reissued (with the
    /// replacement's fresh address) in every rejoin welcome.
    peer_addrs: Mutex<Vec<(usize, String)>>,
    /// Fault-injection state, armed at most once via
    /// [`Transport::install_fault_plan`] after the wire config arrives.
    faults: OnceLock<FaultState>,
}

impl TcpFabric {
    /// Rank 0 bootstrap: accept `world_size - 1` slave connections on
    /// `listener`, assign ranks in arrival order, and broadcast the mesh
    /// address book. Returns once every slave is connected to the master
    /// (slave↔slave mesh links establish concurrently).
    ///
    /// The caller binds the listener so it can learn the port (and spawn or
    /// instruct slaves) before accepting starts. Connections that fail the
    /// handshake — port scanners, health checks, version-skewed peers — are
    /// dropped and their slot re-accepted, so a stray client cannot kill a
    /// waiting multi-machine bootstrap; only the overall accept deadline is
    /// fatal.
    pub fn master(listener: TcpListener, world_size: usize) -> io::Result<Arc<Self>> {
        Self::master_with_timeout(listener, world_size, BOOTSTRAP_ACCEPT_TIMEOUT)
    }

    /// [`TcpFabric::master`] with an explicit accept deadline (tests use a
    /// short one to prove a missing peer fails the bootstrap loudly).
    pub fn master_with_timeout(
        listener: TcpListener,
        world_size: usize,
        accept_timeout: Duration,
    ) -> io::Result<Arc<Self>> {
        assert!(world_size >= 2, "a TCP universe needs a master and at least one slave");
        let deadline = Instant::now() + accept_timeout;
        listener.set_nonblocking(true)?;
        let mut streams: Vec<TcpStream> = Vec::with_capacity(world_size - 1);
        let mut peer_addrs: Vec<(usize, String)> = Vec::with_capacity(world_size - 1);
        while streams.len() < world_size - 1 {
            let (mut stream, remote) = accept_with_deadline(&listener, deadline)?;
            let hello = match handshake::<Hello>(&mut stream, "bootstrap hello") {
                Ok(h) => h,
                Err(_) => continue, // stray or hostile client: drop, re-accept
            };
            let next_rank = streams.len() + 1;
            peer_addrs.push((next_rank, format!("{}:{}", remote.ip(), hello.listen_port)));
            streams.push(stream);
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let welcome =
                Welcome { rank: i + 1, world_size, peers: peer_addrs.clone(), rejoin: false };
            send_msg(stream, &welcome)?;
        }
        let peers = streams
            .into_iter()
            .map(|s| {
                s.set_read_timeout(None)?;
                Ok(Some(PeerLink::new(s)))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let mut peers_with_self = vec![None];
        peers_with_self.extend(peers);
        Ok(Self::finish(0, world_size, peers_with_self, Some(listener), peer_addrs))
    }

    /// Slave bootstrap: dial the master at `master_addr` (retrying while it
    /// is still coming up), learn this process's rank and the address book,
    /// then complete the slave↔slave mesh — dialing every lower slave rank
    /// and accepting every higher one.
    pub fn slave(master_addr: impl ToSocketAddrs) -> io::Result<Arc<Self>> {
        Self::bootstrap_slave(master_addr, false)
    }

    /// Replacement bootstrap: dial the master of an *already running*
    /// universe and take over a dead rank's slot. Blocks until the master
    /// reaches [`TcpFabric::accept_rejoin`] (the connect parks in the
    /// listener's backlog until then), learns the inherited rank from a
    /// `rejoin` welcome, then dials every surviving slave — survivors
    /// never dial a rejoiner, their mesh acceptors simply admit it.
    pub fn rejoin(master_addr: impl ToSocketAddrs) -> io::Result<Arc<Self>> {
        Self::bootstrap_slave(master_addr, true)
    }

    fn bootstrap_slave(
        master_addr: impl ToSocketAddrs,
        rejoining: bool,
    ) -> io::Result<Arc<Self>> {
        let addr = master_addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| bad_data("unresolvable master address"))?;
        // The mesh listener must exist before the hello that advertises it.
        let listener = TcpListener::bind(local_bind_addr(&addr))?;
        let listen_port = listener.local_addr()?.port();

        let mut master = connect_with_retry(addr)?;
        master.set_nodelay(true)?;
        // The Welcome legitimately arrives only once *every* expected peer
        // has connected — on a hand-started multi-machine bootstrap that
        // can take minutes. Bound the wait by the same accept budget the
        // master itself uses, not the per-message handshake timeout, or an
        // early slave would give up and kill the whole launch.
        master.set_read_timeout(Some(BOOTSTRAP_ACCEPT_TIMEOUT))?;
        send_msg(&mut master, &Hello { magic: MAGIC, version: VERSION, listen_port })?;
        let welcome: Welcome = recv_msg(&mut master, "bootstrap welcome")?;
        let (rank, world_size) = (welcome.rank, welcome.world_size);
        if rank == 0 || rank >= world_size {
            return Err(bad_data("bootstrap assigned an invalid rank"));
        }
        if welcome.rejoin != rejoining {
            return Err(bad_data("bootstrap/rejoin mode mismatch with the master"));
        }
        master.set_read_timeout(None)?;

        let mut peers: Vec<Option<PeerLink>> = (0..world_size).map(|_| None).collect();
        peers[0] = Some(PeerLink::new(master));

        // Dial every lower slave rank — or, on a rejoin, *every* other
        // slave: survivors only ever accept a replacement, never dial it.
        // Their listeners are bound (they advertised them before we got
        // our welcome), so the connection lands in the OS backlog even if
        // they have not reached accept yet.
        for &(peer_rank, ref peer_addr) in &welcome.peers {
            if peer_rank == rank || (!rejoining && peer_rank > rank) {
                continue;
            }
            let mut stream = connect_with_retry(
                peer_addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| bad_data("unresolvable peer address"))?,
            )?;
            stream.set_nodelay(true)?;
            send_msg(&mut stream, &PeerHello { magic: MAGIC, version: VERSION, rank })?;
            peers[peer_rank] = Some(PeerLink::new(stream));
        }
        listener.set_nonblocking(true)?;
        if !rejoining {
            // Accept every higher slave rank; like the master's bootstrap,
            // drop anything that fails the handshake and keep accepting.
            let deadline = Instant::now() + BOOTSTRAP_ACCEPT_TIMEOUT;
            let mut accepted = 0;
            while accepted < world_size - 1 - rank {
                let (mut stream, _) = accept_with_deadline(&listener, deadline)?;
                let hello = match handshake::<PeerHello>(&mut stream, "mesh hello") {
                    Ok(h) => h,
                    Err(_) => continue,
                };
                let valid = hello.rank > rank && hello.rank < world_size;
                if !valid || peers[hello.rank].is_some() {
                    continue; // confused or duplicate peer: drop, keep accepting
                }
                stream.set_read_timeout(None)?;
                peers[hello.rank] = Some(PeerLink::new(stream));
                accepted += 1;
            }
        }
        Ok(Self::finish(rank, world_size, peers, Some(listener), welcome.peers))
    }

    /// Assemble the fabric: wrap the bootstrap links in swappable slots,
    /// spawn one reader thread per connected peer, and keep the listener —
    /// the master retains it for [`TcpFabric::accept_rejoin`], slaves hand
    /// theirs to a background mesh acceptor so replacements can dial in.
    fn finish(
        rank: usize,
        world_size: usize,
        peers: Vec<Option<PeerLink>>,
        listener: Option<TcpListener>,
        peer_addrs: Vec<(usize, String)>,
    ) -> Arc<Self> {
        let (master_listener, mesh_listener) =
            if rank == 0 { (listener, None) } else { (None, listener) };
        let fabric = Arc::new(Self {
            rank,
            world_size,
            mailbox: Mailbox::new(),
            peers: peers.into_iter().map(|p| RwLock::new(p.map(Arc::new))).collect(),
            readers: Mutex::new(Vec::new()),
            acceptor: Mutex::new(None),
            closing: AtomicBool::new(false),
            listener: master_listener,
            peer_addrs: Mutex::new(peer_addrs),
            faults: OnceLock::new(),
        });
        for peer_rank in 0..world_size {
            let link = fabric.peers[peer_rank].read().clone();
            if let Some(link) = link {
                fabric.spawn_reader(peer_rank, link);
            }
        }
        if let Some(mesh) = mesh_listener {
            fabric.start_mesh_acceptor(mesh);
        }
        fabric
    }

    /// Spawn the reader thread serving one peer link.
    fn spawn_reader(self: &Arc<Self>, peer_rank: usize, link: Arc<PeerLink>) {
        let stream = link.stream.lock().0.try_clone().expect("clone stream read half");
        let mailbox = Arc::clone(&self.mailbox);
        let fabric = Arc::downgrade(self);
        let handle =
            std::thread::spawn(move || read_loop(peer_rank, stream, &mailbox, &fabric, &link));
        self.readers.lock().push(handle);
    }

    /// Install a fresh connection to `peer_rank` over whatever link (live
    /// or dead) currently occupies its slot: swap the write half, clear
    /// the mailbox's death verdict so pinned receives block normally
    /// again, and start a reader for the new stream.
    fn install_link(self: &Arc<Self>, peer_rank: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(None)?;
        stream.set_nodelay(true)?;
        let link = Arc::new(PeerLink::new(stream));
        *self.peers[peer_rank].write() = Some(Arc::clone(&link));
        self.mailbox.clear_peer_dead(peer_rank);
        self.spawn_reader(peer_rank, link);
        Ok(())
    }

    /// Background mesh acceptor (slaves): admits rejoining replacements
    /// mid-run. Connections that fail the handshake or claim an invalid
    /// rank are dropped, exactly like the bootstrap's rogue handling.
    fn start_mesh_acceptor(self: &Arc<Self>, listener: TcpListener) {
        let weak = Arc::downgrade(self);
        let handle = std::thread::spawn(move || loop {
            {
                let Some(fabric) = weak.upgrade() else { return };
                if fabric.closing.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let Ok(hello) =
                            handshake::<PeerHello>(&mut stream, "mesh rejoin hello")
                        else {
                            continue;
                        };
                        let valid = hello.rank != 0
                            && hello.rank != fabric.rank
                            && hello.rank < fabric.world_size;
                        if valid {
                            let _ = fabric.install_link(hello.rank, stream);
                        }
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => return,
                }
            }
            // Drop the fabric handle before sleeping so shutdown never
            // races a strong reference held across the poll interval.
            std::thread::sleep(Duration::from_millis(25));
        });
        *self.acceptor.lock() = Some(handle);
    }

    /// Master-side rejoin rendezvous: accept the replacement for
    /// `victim_rank` on the retained bootstrap listener, hand it the
    /// victim's rank plus the current address book (with its own fresh
    /// address substituted), and swap its link into the mesh. Returns once
    /// the control link is live; the replacement completes its slave↔slave
    /// dials concurrently.
    pub fn accept_rejoin(
        self: &Arc<Self>,
        victim_rank: usize,
        timeout: Duration,
    ) -> io::Result<()> {
        assert_eq!(self.rank, 0, "only the master re-admits replacements");
        assert!(
            victim_rank >= 1 && victim_rank < self.world_size,
            "rejoin target must be a slave rank"
        );
        let listener = self.listener.as_ref().expect("master retains its bootstrap listener");
        let deadline = Instant::now() + timeout;
        loop {
            let (mut stream, remote) = accept_with_deadline(listener, deadline)?;
            let hello = match handshake::<Hello>(&mut stream, "rejoin hello") {
                Ok(h) => h,
                Err(_) => continue, // stray or hostile client: drop, re-accept
            };
            let welcome = {
                let mut book = self.peer_addrs.lock();
                let addr = format!("{}:{}", remote.ip(), hello.listen_port);
                if let Some(entry) = book.iter_mut().find(|(r, _)| *r == victim_rank) {
                    entry.1 = addr;
                }
                Welcome {
                    rank: victim_rank,
                    world_size: self.world_size,
                    peers: book.clone(),
                    rejoin: true,
                }
            };
            send_msg(&mut stream, &welcome)?;
            self.install_link(victim_rank, stream)?;
            return Ok(());
        }
    }

    /// This process's world rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Leader-side orderly shutdown: hard-close every stream and join the
    /// reader threads. The master calls this after the final gather; peers
    /// observe EOF (or a reset, if they were still sending heartbeat
    /// answers) and unwind.
    pub fn shutdown(&self) {
        self.closing.store(true, Ordering::Release);
        for slot in &self.peers {
            if let Some(link) = slot.read().as_ref() {
                link.shutdown(Shutdown::Both);
            }
        }
        self.join_background();
    }

    /// Follower-side orderly shutdown: half-close the write sides, then
    /// wait for every peer to close theirs (the reader threads exit on
    /// EOF). This guarantees frames this rank already sent — its final
    /// result gather — stay deliverable: a full close here could turn a
    /// late master heartbeat into a connection reset that discards them.
    pub fn shutdown_when_drained(&self) {
        self.closing.store(true, Ordering::Release);
        for slot in &self.peers {
            if let Some(link) = slot.read().as_ref() {
                link.shutdown(Shutdown::Write);
            }
        }
        self.join_background();
    }

    fn join_background(&self) {
        if let Some(acceptor) = self.acceptor.lock().take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.readers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpFabric {
    fn world_size(&self) -> usize {
        self.world_size
    }

    fn deliver(&self, dst: usize, env: Envelope) {
        if dst == self.rank {
            self.mailbox.deliver(env);
            return;
        }
        // Clone the link out of its slot so a concurrent rejoin swap never
        // waits behind a send blocked on TCP backpressure.
        let link = self.peers[dst].read().clone();
        // A missing link (a dead rank whose replacement has not rejoined)
        // or a false return (peer disconnected) drops the envelope; the
        // receive side's deadline machinery takes over.
        if let Some(link) = link {
            let _ = link.send(&env);
        }
    }

    fn mailbox(&self, r: usize) -> &Mailbox {
        assert_eq!(r, self.rank, "a TCP fabric hosts only its own rank's mailbox");
        &self.mailbox
    }

    fn fault_state(&self) -> Option<&FaultState> {
        self.faults.get()
    }

    fn install_fault_plan(&self, plan: FaultPlan) {
        if !plan.is_empty() {
            let _ = self.faults.set(FaultState::new(plan, self.world_size));
        }
    }
}

/// Reader thread: decode frames from one peer stream into the local
/// mailbox until EOF, a connection error, or a corrupt frame. On exit the
/// peer is marked dead in the mailbox — unless its slot already holds a
/// *newer* link (a replacement rejoined while this reader was still
/// draining the old stream), in which case the stale verdict is suppressed
/// so the fresh connection's liveness is not poisoned. Death only means
/// nothing new arrives: already-queued frames remain receivable.
fn read_loop(
    peer_rank: usize,
    mut stream: TcpStream,
    mailbox: &Mailbox,
    fabric: &Weak<TcpFabric>,
    my_link: &Arc<PeerLink>,
) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    let note_dead = || {
        let replaced = fabric.upgrade().is_some_and(|f| {
            f.peers[peer_rank].read().as_ref().is_some_and(|cur| !Arc::ptr_eq(cur, my_link))
        });
        if !replaced {
            mailbox.mark_peer_dead(peer_rank);
        }
    };
    loop {
        let n = match stream.read(&mut chunk) {
            // A signal landing on this thread (profilers, timers) is not a
            // liveness verdict — retry instead of declaring the peer dead.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Ok(0) | Err(_) => {
                // EOF or reset: peer is gone.
                note_dead();
                return;
            }
            Ok(n) => n,
        };
        decoder.extend(&chunk[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(env)) => mailbox.deliver(env),
                Ok(None) => break,
                // Corrupt stream: frame sync is unrecoverable; drop the
                // connection (pending receives fail or time out rather
                // than hang).
                Err(_) => {
                    note_dead();
                    return;
                }
            }
        }
    }
}

/// First pause of the connect backoff; doubles per failed attempt.
const CONNECT_BACKOFF_START: Duration = Duration::from_millis(10);
/// Backoff ceiling — keeps long windows polite without going unresponsive.
const CONNECT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Dial `addr`, retrying while the listener may still be coming up. The
/// window defaults to [`CONNECT_RETRY_WINDOW`]; the `LIPIZ_TCP_RETRY_MS`
/// environment variable overrides it (test suites shrink it so a slave
/// pointed at a dead address gives up fast).
fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let window = std::env::var("LIPIZ_TCP_RETRY_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(CONNECT_RETRY_WINDOW, Duration::from_millis);
    connect_with_retry_window(addr, window)
}

/// [`connect_with_retry`] with an explicit deadline window. Retries on a
/// capped exponential backoff (10 ms doubling to 500 ms) instead of a
/// fixed cadence, so a listener that comes up fast is caught fast while a
/// long wait does not hammer the host; on exhaustion the error reports
/// the attempt count and the window alongside the underlying cause.
fn connect_with_retry_window(addr: SocketAddr, window: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + window;
    let mut backoff = CONNECT_BACKOFF_START;
    let mut attempts: u32 = 0;
    loop {
        attempts += 1;
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!(
                            "connect to {addr} failed after {attempts} attempts over {window:?}: {e}"
                        ),
                    ));
                }
                std::thread::sleep(backoff.min(deadline - now));
                backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
            }
        }
    }
}

/// Pick the wildcard bind address matching the master's address family, so
/// the mesh listener is reachable from other hosts in multi-machine runs.
fn local_bind_addr(master: &SocketAddr) -> SocketAddr {
    match master {
        SocketAddr::V4(_) => "0.0.0.0:0".parse().expect("v4 wildcard"),
        SocketAddr::V6(_) => "[::]:0".parse().expect("v6 wildcard"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{Comm, RecvFrom};

    /// Spin up an in-test TCP universe of `n` ranks (each rank a thread of
    /// this test process, but all traffic over real localhost sockets) and
    /// run `f` on every rank.
    fn tcp_universe<R: Send>(
        n: usize,
        f: impl Fn(Comm, Arc<TcpFabric>) -> R + Send + Sync,
    ) -> Vec<R> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let f = &f;
        std::thread::scope(|s| {
            let slaves: Vec<_> = (1..n)
                .map(|_| {
                    s.spawn(move || {
                        let fabric = TcpFabric::slave(addr).expect("slave bootstrap");
                        let comm = Comm::world(fabric.clone(), fabric.rank());
                        let out = f(comm, fabric.clone());
                        fabric.shutdown_when_drained();
                        (fabric.rank(), out)
                    })
                })
                .collect();
            let fabric = TcpFabric::master(listener, n).expect("master bootstrap");
            let comm = Comm::world(fabric.clone(), 0);
            let master_out = f(comm, fabric.clone());
            fabric.shutdown();
            let mut results: Vec<(usize, R)> = vec![(0, master_out)];
            for h in slaves {
                results.push(h.join().expect("slave thread"));
            }
            results.sort_by_key(|(rank, _)| *rank);
            results.into_iter().map(|(_, r)| r).collect()
        })
    }

    #[test]
    fn handshake_assigns_distinct_ranks() {
        let ranks = tcp_universe(4, |comm, _| (comm.rank(), comm.size()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_over_sockets() {
        let results = tcp_universe(3, |comm, _| {
            if comm.rank() == 0 {
                comm.send(1, 5, &vec![1.5f32, -2.5]);
                comm.send(2, 5, &vec![10.0f32]);
                0.0
            } else {
                let (v, src): (Vec<f32>, usize) = comm.recv(RecvFrom::Rank(0), 5);
                assert_eq!(src, 0);
                v.iter().sum::<f32>()
            }
        });
        assert_eq!(results, vec![0.0, -1.0, 10.0]);
    }

    #[test]
    fn slave_to_slave_mesh_traffic() {
        // Exercises the mesh links that bypass the master entirely (the
        // LOCAL communicator's allgather path).
        let results = tcp_universe(4, |comm, _| {
            let mut comm = comm;
            let local = comm.subgroup(&[1, 2, 3]);
            match local {
                Some(local) => local.allgather(&(comm.rank() as u32 * 11)),
                None => vec![],
            }
        });
        assert_eq!(results[0], Vec::<u32>::new());
        for r in &results[1..] {
            assert_eq!(r, &[11, 22, 33]);
        }
    }

    #[test]
    fn collectives_match_in_process_semantics() {
        let results = tcp_universe(3, |comm, _| {
            comm.barrier();
            let sum = comm.allreduce(&(comm.rank() as i64 + 1), |a, b| a + b);
            let all = comm.allgather(&format!("r{}", comm.rank()));
            (sum, all)
        });
        for (sum, all) in &results {
            assert_eq!(*sum, 6);
            assert_eq!(all, &["r0", "r1", "r2"]);
        }
    }

    #[test]
    fn large_payload_crosses_frame_chunks() {
        // Bigger than the 64 KiB reader chunk: forces split-frame reassembly.
        let big: Vec<f32> = (0..60_000).map(|i| i as f32 * 0.25).collect();
        let expect = big.clone();
        let results = tcp_universe(2, move |comm, _| {
            if comm.rank() == 0 {
                comm.send(1, 9, &big);
                true
            } else {
                let (v, _): (Vec<f32>, usize) = comm.recv(RecvFrom::Rank(0), 9);
                v == expect
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn bootstrap_survives_stray_and_hostile_clients() {
        // The --no-spawn master advertises an open port; whatever touches
        // it first must not kill the bootstrap. Throw the full rogue's
        // gallery at it — wrong magic, version skew, a hostile 1 GiB length
        // prefix (must be rejected before allocation), and a connect-and-
        // close probe — then connect a real slave and prove the universe
        // still forms.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let rogues = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            send_msg(&mut s, &Hello { magic: 0xDEAD_BEEF, version: VERSION, listen_port: 1 })
                .expect("bad magic");
            let mut s = TcpStream::connect(addr).expect("connect");
            send_msg(&mut s, &Hello { magic: MAGIC, version: VERSION + 1, listen_port: 1 })
                .expect("version skew");
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&0x4000_0000u32.to_le_bytes()).expect("hostile length prefix");
            drop(TcpStream::connect(addr).expect("connect-and-close probe"));
            // Only after the gallery: the one legitimate slave.
            let fabric = TcpFabric::slave(addr).expect("slave bootstrap");
            let comm = Comm::world(fabric.clone(), fabric.rank());
            let (v, _): (u8, usize) = comm.recv(RecvFrom::Rank(0), 4);
            fabric.shutdown_when_drained();
            v
        });
        let fabric = TcpFabric::master(listener, 2).expect("bootstrap survives rogues");
        let comm = Comm::world(fabric.clone(), 0);
        comm.send(1, 4, &42u8);
        // Close before joining: the slave's drained shutdown waits for the
        // master's FIN (queued data is still delivered after it).
        fabric.shutdown();
        assert_eq!(rogues.join().expect("rogue thread"), 42);
    }

    #[test]
    fn missing_peer_fails_bootstrap_within_deadline() {
        // A spawned slave that dies before connecting must fail the launch
        // loudly at the accept deadline — never hang it forever.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let start = Instant::now();
        let err = TcpFabric::master_with_timeout(listener, 2, Duration::from_millis(200))
            .expect_err("no slave ever connects");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(10), "deadline not bounded");
    }

    #[test]
    fn dead_peer_times_out_instead_of_hanging() {
        // Regression guard for the heartbeat path: once a peer vanishes, a
        // bounded receive must return None within its deadline — never
        // block forever, never panic on the send side.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let t = std::thread::spawn(move || {
            let fabric = TcpFabric::slave(addr).expect("slave bootstrap");
            let comm = Comm::world(fabric.clone(), fabric.rank());
            comm.send(0, 1, &7u8); // prove liveness, then vanish abruptly
            fabric.shutdown();
        });
        let fabric = TcpFabric::master(listener, 2).expect("master bootstrap");
        let comm = Comm::world(fabric.clone(), 0);
        let (v, _): (u8, usize) = comm.recv(RecvFrom::Rank(1), 1);
        assert_eq!(v, 7);
        t.join().expect("slave thread");
        // Peer is gone: a send must not panic, and a timed receive must
        // come back within (roughly) its deadline.
        comm.send(1, 2, &1u8);
        let start = Instant::now();
        let got = comm.recv_timeout::<u8>(RecvFrom::Rank(1), 3, Duration::from_millis(100));
        assert!(got.is_none());
        assert!(start.elapsed() < Duration::from_secs(5), "timeout not bounded");
        fabric.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let results = tcp_universe(2, |comm, fabric| {
            comm.barrier();
            fabric.shutdown();
            fabric.shutdown();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn connect_retry_reports_attempt_count() {
        // A port nothing listens on: the dial must exhaust its window on
        // the backoff schedule and surface how hard it tried.
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = probe.local_addr().expect("addr");
        drop(probe); // freed port: connects are refused
        let start = Instant::now();
        let err = connect_with_retry_window(addr, Duration::from_millis(120))
            .expect_err("nothing listens there");
        assert!(start.elapsed() < Duration::from_secs(10), "window not bounded");
        let msg = err.to_string();
        assert!(msg.contains("attempts"), "error must report the attempt count: {msg}");
    }

    #[test]
    fn rejoined_rank_restores_full_mesh_connectivity() {
        // The in-flight replacement choreography, straight through the
        // transport layer: a 3-rank universe forms, the slave holding rank
        // 2 dies abruptly, a replacement process (thread here) rejoins via
        // the master's retained listener, and afterwards *both* the master
        // link and the slave↔slave mesh link to rank 2 carry traffic again
        // — while rank 1 never left its mailbox loop.
        use std::sync::mpsc;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let (go_tx, go_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let fabric = TcpFabric::slave(addr).expect("slave bootstrap");
                    let comm = Comm::world(fabric.clone(), fabric.rank());
                    comm.send(0, 1, &(fabric.rank() as u8));
                    if fabric.rank() == 2 {
                        // Vanish abruptly, mid-run.
                        fabric.shutdown();
                        return;
                    }
                    // Survivor (rank 1): observe the death, then wait for
                    // traffic over the swapped-in link. A timed receive is
                    // used because the replacement may send and half-close
                    // faster than a liveness poll could observe the
                    // cleared flag — the frame arriving at all proves the
                    // rejoiner's dial swapped the dead link.
                    let mb = fabric.mailbox(1);
                    while !mb.peer_is_dead(2) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    let deadline = Instant::now() + Duration::from_secs(30);
                    let (v, src): (u8, usize) = loop {
                        if let Some(got) =
                            comm.recv_timeout(RecvFrom::Rank(2), 5, Duration::from_millis(50))
                        {
                            break got;
                        }
                        assert!(Instant::now() < deadline, "swapped link never delivered");
                    };
                    assert_eq!((v, src), (55, 2));
                    fabric.shutdown_when_drained();
                });
            }
            s.spawn(move || {
                // The replacement: waits until the universe is formed and
                // the victim convicted (the master's signal), then rejoins.
                go_rx.recv().expect("go signal");
                let fabric = TcpFabric::rejoin(addr).expect("rejoin bootstrap");
                assert_eq!(fabric.rank(), 2, "replacement inherits the victim's rank");
                let comm = Comm::world(fabric.clone(), 2);
                let (v, _): (u8, usize) = comm.recv(RecvFrom::Rank(0), 3);
                assert_eq!(v, 33);
                comm.send(1, 5, &55u8);
                comm.send(0, 4, &44u8);
                fabric.shutdown_when_drained();
            });
            let fabric = TcpFabric::master(listener, 3).expect("master bootstrap");
            let comm = Comm::world(fabric.clone(), 0);
            let _: (u8, usize) = comm.recv(RecvFrom::Rank(1), 1);
            let _: (u8, usize) = comm.recv(RecvFrom::Rank(2), 1);
            let mb = fabric.mailbox(0);
            while !mb.peer_is_dead(2) {
                std::thread::sleep(Duration::from_millis(5));
            }
            go_tx.send(()).expect("signal the replacement");
            fabric.accept_rejoin(2, Duration::from_secs(30)).expect("rejoin rendezvous");
            comm.send(2, 3, &33u8);
            let (v, _): (u8, usize) = comm.recv(RecvFrom::Rank(2), 4);
            assert_eq!(v, 44);
            fabric.shutdown();
        });
    }
}
