//! Per-rank mailbox with tag-selective blocking receive.
//!
//! A mailbox is shared by *all threads of one rank* (the paper's slaves run
//! a communication thread and an execution thread concurrently, §III-B).
//! Receives are selective on `(context, src, tag)`, so two threads can block
//! on different tags without stealing each other's messages — the property
//! a raw channel cannot provide.

use crate::message::{Envelope, Tag};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A matching message can no longer arrive: the peer's connection is gone
/// and nothing is queued. Returned by [`Mailbox::recv_from_live`] so a rank
/// blocked on a dead peer fails loudly instead of hanging forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerLost {
    /// World rank of the lost peer.
    pub world_rank: usize,
}

impl std::fmt::Display for PeerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "connection to world rank {} lost with a receive pending", self.world_rank)
    }
}

impl std::error::Error for PeerLost {}

/// A rank's incoming-message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
    /// World ranks whose transport connection is gone (multi-process
    /// backends mark these from their reader threads; the in-process fabric
    /// never does). Queued envelopes from a dead peer remain receivable —
    /// death only means nothing *new* can arrive.
    dead_peers: Mutex<HashSet<usize>>,
}

impl Mailbox {
    /// New empty mailbox behind an `Arc` (shared with the fabric).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Deliver an envelope (called by the *sending* rank's thread).
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        // Multiple threads may be waiting on different matches.
        self.arrived.notify_all();
    }

    /// Record that the transport connection to `world_rank` is gone and
    /// wake every blocked receiver so waits on that peer can fail loudly.
    pub fn mark_peer_dead(&self, world_rank: usize) {
        self.dead_peers.lock().insert(world_rank);
        // Waiters re-check their source's liveness on wake.
        let _q = self.queue.lock();
        self.arrived.notify_all();
    }

    /// Is `world_rank`'s connection known to be gone?
    pub fn peer_is_dead(&self, world_rank: usize) -> bool {
        self.dead_peers.lock().contains(&world_rank)
    }

    /// Forget a peer's death after its connection has been replaced (the
    /// in-flight rank-replacement link swap): waits pinned to `world_rank`
    /// block normally again. Wakes blocked receivers so anyone who observed
    /// the dead flag mid-wait re-evaluates.
    pub fn clear_peer_dead(&self, world_rank: usize) {
        self.dead_peers.lock().remove(&world_rank);
        let _q = self.queue.lock();
        self.arrived.notify_all();
    }

    /// Blocking selective receive: first queued envelope matching
    /// `(context, src, tag)`, in arrival order.
    pub fn recv(&self, context: u16, src: Option<usize>, tag: Tag) -> Envelope {
        self.recv_from_live(context, src, tag, None).expect("no liveness bound requested")
    }

    /// [`Mailbox::recv`] that additionally fails with [`PeerLost`] when the
    /// awaited source's connection (identified by its *world* rank, which
    /// is what transports track) dies with nothing matching queued. Pass
    /// `src_world = None` for sources whose liveness cannot be pinned
    /// (from-any receives) — then this blocks exactly like [`Mailbox::recv`].
    pub fn recv_from_live(
        &self,
        context: u16,
        src: Option<usize>,
        tag: Tag,
        src_world: Option<usize>,
    ) -> Result<Envelope, PeerLost> {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(context, src, tag)) {
                return Ok(q.remove(pos).expect("position valid under lock"));
            }
            if let Some(world_rank) = src_world {
                if self.peer_is_dead(world_rank) {
                    return Err(PeerLost { world_rank });
                }
            }
            self.arrived.wait(&mut q);
        }
    }

    /// Selective receive with a deadline. `None` on timeout.
    pub fn recv_timeout(
        &self,
        context: u16,
        src: Option<usize>,
        tag: Tag,
        timeout: Duration,
    ) -> Option<Envelope> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(context, src, tag)) {
                return Some(q.remove(pos).expect("position valid under lock"));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.arrived.wait_until(&mut q, deadline).timed_out() {
                // Check once more in case a message arrived exactly at the
                // deadline boundary.
                if let Some(pos) = q.iter().position(|e| e.matches(context, src, tag)) {
                    return Some(q.remove(pos).expect("position valid under lock"));
                }
                return None;
            }
        }
    }

    /// Non-blocking probe: is a matching message queued?
    pub fn probe(&self, context: u16, src: Option<usize>, tag: Tag) -> bool {
        self.queue.lock().iter().any(|e| e.matches(context, src, tag))
    }

    /// Number of queued envelopes (diagnostics).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no envelopes are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn env(src: usize, tag: Tag) -> Envelope {
        Envelope::new(0, src, tag, vec![src as u8, tag as u8])
    }

    #[test]
    fn fifo_per_matching_key() {
        let mb = Mailbox::new();
        mb.deliver(Envelope::new(0, 1, 5, vec![1]));
        mb.deliver(Envelope::new(0, 1, 5, vec![2]));
        assert_eq!(mb.recv(0, Some(1), 5).payload, vec![1]);
        assert_eq!(mb.recv(0, Some(1), 5).payload, vec![2]);
    }

    #[test]
    fn selective_receive_skips_other_tags() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10));
        mb.deliver(env(1, 20));
        // Receive the later tag first; the earlier one stays queued.
        assert_eq!(mb.recv(0, Some(1), 20).tag, 20);
        assert_eq!(mb.recv(0, Some(1), 10).tag, 10);
        assert!(mb.is_empty());
    }

    #[test]
    fn receive_from_any_source() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 7));
        let got = mb.recv(0, None, 7);
        assert_eq!(got.src, 3);
    }

    #[test]
    fn context_isolation() {
        let mb = Mailbox::new();
        mb.deliver(Envelope::new(1, 0, 5, vec![1]));
        mb.deliver(Envelope::new(2, 0, 5, vec![2]));
        assert_eq!(mb.recv(2, Some(0), 5).payload, vec![2]);
        assert_eq!(mb.recv(1, Some(0), 5).payload, vec![1]);
    }

    #[test]
    fn timeout_expires_without_message() {
        let mb = Mailbox::new();
        let got = mb.recv_timeout(0, None, 1, Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn timeout_returns_message_delivered_while_waiting() {
        let mb = Mailbox::new();
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            mb2.deliver(env(0, 9));
        });
        let got = mb.recv_timeout(0, Some(0), 9, Duration::from_secs(5));
        assert!(got.is_some());
        t.join().unwrap();
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Mailbox::new();
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || mb2.recv(0, Some(4), 2));
        thread::sleep(Duration::from_millis(20));
        mb.deliver(env(4, 2));
        let got = t.join().unwrap();
        assert_eq!(got.src, 4);
    }

    #[test]
    fn two_threads_blocking_on_different_tags() {
        // The core property a raw channel lacks: concurrent selective recvs.
        let mb = Mailbox::new();
        let mb_a = Arc::clone(&mb);
        let mb_b = Arc::clone(&mb);
        let ta = thread::spawn(move || mb_a.recv(0, None, 100));
        let tb = thread::spawn(move || mb_b.recv(0, None, 200));
        thread::sleep(Duration::from_millis(10));
        // Deliver in the "wrong" order; each thread must get its own tag.
        mb.deliver(env(0, 200));
        mb.deliver(env(1, 100));
        assert_eq!(ta.join().unwrap().tag, 100);
        assert_eq!(tb.join().unwrap().tag, 200);
    }

    #[test]
    fn recv_from_live_fails_when_peer_dies() {
        let mb = Mailbox::new();
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || mb2.recv_from_live(0, Some(3), 7, Some(3)));
        thread::sleep(Duration::from_millis(20));
        mb.mark_peer_dead(3);
        assert_eq!(t.join().unwrap(), Err(PeerLost { world_rank: 3 }));
    }

    #[test]
    fn recv_from_live_ignores_other_peers_deaths() {
        let mb = Mailbox::new();
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || mb2.recv_from_live(0, Some(3), 7, Some(3)));
        thread::sleep(Duration::from_millis(10));
        // A different peer dying must not fail a wait on rank 3.
        mb.mark_peer_dead(5);
        thread::sleep(Duration::from_millis(10));
        mb.deliver(env(3, 7));
        assert!(t.join().unwrap().is_ok());
    }

    #[test]
    fn queued_messages_from_a_dead_peer_remain_receivable() {
        // Death means nothing *new* arrives; a frame delivered before the
        // EOF must still be consumed (the final-result race on shutdown).
        let mb = Mailbox::new();
        mb.deliver(env(2, 9));
        mb.mark_peer_dead(2);
        assert!(mb.recv_from_live(0, Some(2), 9, Some(2)).is_ok());
        // Now the queue is empty and the peer is dead: fail.
        assert!(mb.recv_from_live(0, Some(2), 9, Some(2)).is_err());
    }

    #[test]
    fn cleared_peer_death_unblocks_future_receives() {
        let mb = Mailbox::new();
        mb.mark_peer_dead(4);
        assert!(mb.recv_from_live(0, Some(4), 1, Some(4)).is_err());
        // Replace the link: the peer is live again and deliveries flow.
        mb.clear_peer_dead(4);
        assert!(!mb.peer_is_dead(4));
        let mb2 = Arc::clone(&mb);
        let t = thread::spawn(move || mb2.recv_from_live(0, Some(4), 1, Some(4)));
        thread::sleep(Duration::from_millis(20));
        mb.deliver(env(4, 1));
        assert!(t.join().unwrap().is_ok());
    }

    #[test]
    fn probe_and_len() {
        let mb = Mailbox::new();
        assert!(!mb.probe(0, None, 1));
        mb.deliver(env(0, 1));
        assert!(mb.probe(0, None, 1));
        assert_eq!(mb.len(), 1);
        mb.recv(0, None, 1);
        assert!(mb.is_empty());
    }
}
