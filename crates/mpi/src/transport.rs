//! The delivery-substrate abstraction behind [`crate::comm::Comm`], plus the
//! stream framing shared by socket transports.
//!
//! A [`Transport`] moves [`Envelope`]s between world ranks and hands each
//! rank a [`Mailbox`] for selective receives. Two implementations exist:
//!
//! * [`crate::comm::Fabric`] — the in-process fabric (every rank is a thread
//!   of one OS process, one mailbox per rank);
//! * [`crate::tcp::TcpFabric`] — a real multi-process transport (every rank
//!   is an OS process, envelopes travel as length-prefixed frames over TCP).
//!
//! Everything above this layer — communicators, collectives, the master/
//! slave runtime — is transport-agnostic, which is what lets the
//! `driver_equivalence` and `distributed_process` suites prove the two
//! backends byte-identical.

use crate::endpoint::Mailbox;
use crate::fault::FaultState;
use crate::message::Envelope;
use crate::wire::{Wire, WireError};
use std::fmt;

/// An envelope-delivery substrate for one universe of world ranks.
///
/// Implementations must be safe to use from every thread of a rank
/// concurrently (the slave runtime sends from two threads at once).
pub trait Transport: fmt::Debug + Send + Sync {
    /// Number of world ranks in the universe.
    fn world_size(&self) -> usize;

    /// Deliver `env` to world rank `dst`. Delivery to an unreachable peer
    /// (e.g. a disconnected TCP slave) drops the envelope silently — the
    /// runtime's heartbeat deadline, not the transport, reports dead peers.
    fn deliver(&self, dst: usize, env: Envelope);

    /// The receive mailbox of world rank `r`.
    ///
    /// # Panics
    /// Socket transports host only their own rank and panic for any other
    /// `r`; the in-process fabric hosts all ranks.
    fn mailbox(&self, r: usize) -> &Mailbox;

    /// The installed fault-injection state, if this universe runs under a
    /// [`crate::fault::FaultPlan`]. The communicator consults it on every
    /// outgoing envelope; `None` (the default) means a fault-free universe
    /// with zero per-send overhead beyond this call.
    fn fault_state(&self) -> Option<&FaultState> {
        None
    }

    /// Transport hook fired when the fault layer severs the `src -> dst`
    /// direction: in-process fabrics mark the receiver's mailbox so blocked
    /// receives fail as [`crate::endpoint::PeerLost`], exactly like a torn
    /// TCP connection would on a socket transport. Default: no-op.
    fn note_severed(&self, _dst_world: usize, _src_world: usize) {}

    /// Arm fault injection after construction (no-op default). Ranks of a
    /// multi-process universe learn their [`crate::fault::FaultPlan`] from
    /// the wire configuration, which only arrives once the transport is
    /// already bootstrapped; implementations install the plan at most once
    /// and ignore empty plans.
    fn install_fault_plan(&self, _plan: crate::fault::FaultPlan) {}
}

/// Upper bound on a frame body, rejecting hostile length prefixes before
/// any allocation happens (a full Table-I genome snapshot is ~1 MiB; this
/// leaves three orders of magnitude of headroom).
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Append one length-prefixed frame carrying `env` to `out`:
/// `[u32-le body length][body = Envelope wire encoding]`.
pub fn encode_frame(env: &Envelope, out: &mut Vec<u8>) {
    let header_at = out.len();
    0u32.encode(out);
    let body_at = out.len();
    env.encode(out);
    let body_len = (out.len() - body_at) as u32;
    out[header_at..body_at].copy_from_slice(&body_len.to_le_bytes());
}

/// Incremental frame decoder: feed arbitrary stream chunks with
/// [`FrameDecoder::extend`], pop complete envelopes with
/// [`FrameDecoder::next_frame`]. Tolerates any chunking of the byte stream —
/// 1-byte reads, frames split across reads, many frames coalesced into one
/// read — which the property suite exercises adversarially.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the live tail.
    start: usize,
}

impl FrameDecoder {
    /// New empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the largest
        // in-flight frame rather than the whole stream history.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; an error means the stream is
    /// corrupt (bad length prefix or malformed envelope) and the connection
    /// must be torn down — frame boundaries cannot be re-synchronized.
    pub fn next_frame(&mut self) -> Result<Option<Envelope>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::new("frame length"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let env = Envelope::from_bytes(&avail[4..4 + len])?;
        self.start += 4 + len;
        Ok(Some(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u32, n: usize) -> Envelope {
        Envelope::new(2, src, tag, (0..n).map(|i| i as u8).collect())
    }

    #[test]
    fn frame_round_trips_whole() {
        let e = env(3, 42, 17);
        let mut stream = Vec::new();
        encode_frame(&e, &mut stream);
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap(), Some(e));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let envelopes = vec![env(0, 1, 0), env(1, 2, 33), env(2, 3, 5)];
        let mut stream = Vec::new();
        for e in &envelopes {
            encode_frame(e, &mut stream);
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            while let Some(e) = dec.next_frame().unwrap() {
                out.push(e);
            }
        }
        assert_eq!(out, envelopes);
    }

    #[test]
    fn coalesced_frames_in_one_chunk() {
        let envelopes: Vec<Envelope> = (0..8).map(|i| env(i, i as u32, i * 3)).collect();
        let mut stream = Vec::new();
        for e in &envelopes {
            encode_frame(e, &mut stream);
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        let mut out = Vec::new();
        while let Some(e) = dec.next_frame().unwrap() {
            out.push(e);
        }
        assert_eq!(out, envelopes);
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(u32::MAX).to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn corrupt_body_rejected() {
        // A frame whose body is one byte short of a valid envelope.
        let mut stream = Vec::new();
        encode_frame(&env(1, 2, 3), &mut stream);
        let last = stream.len() - 1;
        stream[0] -= 1; // shrink declared length by one byte
        let mut dec = FrameDecoder::new();
        dec.extend(&stream[..last]);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn compaction_keeps_decoding_correct() {
        // Interleave extend/next_frame so the consumed prefix gets compacted
        // mid-stream; every envelope must still come out intact and in order.
        let envelopes: Vec<Envelope> = (0..64).map(|i| env(i, 7, i % 19)).collect();
        let mut stream = Vec::new();
        for e in &envelopes {
            encode_frame(e, &mut stream);
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(13) {
            dec.extend(chunk);
            while let Some(e) = dec.next_frame().unwrap() {
                out.push(e);
            }
        }
        assert_eq!(out, envelopes);
    }
}
