//! In-process distributed-memory message passing with MPI-style semantics.
//!
//! The paper's implementation runs on MPI across cluster nodes (§III-D).
//! This crate reproduces the *programming model* on a single machine: every
//! rank is an OS thread, ranks share **no** data, and all exchange happens
//! through byte-serialized messages ([`wire::Wire`]) delivered to per-rank
//! mailboxes. That serialization boundary is deliberate — it makes it
//! impossible for rank code to accidentally share state, which keeps the
//! implementation honest as a distributed-memory program and portable to a
//! real MPI binding.
//!
//! Feature map to the paper:
//!
//! | paper (§III-D)                    | here                                   |
//! |-----------------------------------|----------------------------------------|
//! | `MPI_COMM_WORLD`                  | [`universe::Universe::run`]'s root [`comm::Comm`] |
//! | WORLD/LOCAL/GLOBAL communicators  | [`comm::Comm::subgroup`] context splits |
//! | p2p send/recv with tags           | [`comm::Comm::send`] / [`comm::Comm::recv`] |
//! | collective gather/allgather/bcast | [`comm::Comm`] collectives             |
//! | `MPI_CART_CREATE`                 | [`topology::CartGrid`]                 |
//!
//! Threading rules follow MPI: any thread of a rank may use a communicator
//! (clone the `Comm`), but collectives on one communicator must not be
//! called concurrently from two threads of the same rank.

//!
//! # Example
//!
//! ```
//! use lipiz_mpi::{Comm, Universe};
//!
//! // Three ranks, each contributing rank+1; allreduce sums across ranks.
//! let results = Universe::run(3, |comm: Comm| {
//!     comm.allreduce(&(comm.rank() as u64 + 1), |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6]);
//! ```

pub mod comm;
pub mod endpoint;
pub mod message;
pub mod topology;
pub mod universe;
pub mod wire;

pub use comm::{Comm, RecvFrom};
pub use message::{Envelope, Tag};
pub use topology::CartGrid;
pub use universe::Universe;
pub use wire::{Wire, WireError};
