//! Distributed-memory message passing with MPI-style semantics.
//!
//! The paper's implementation runs on MPI across cluster nodes (§III-D).
//! This crate reproduces the *programming model* behind a swappable
//! [`transport::Transport`]: every rank shares **no** data, and all
//! exchange happens through byte-serialized messages ([`wire::Wire`])
//! delivered to per-rank mailboxes. Two backends exist — the in-process
//! [`comm::Fabric`] (every rank an OS thread, used by the threaded driver
//! and all unit tests) and the multi-process [`tcp::TcpFabric`] (every
//! rank an OS process, envelopes framed over TCP sockets). The
//! serialization boundary is deliberate — it makes it impossible for rank
//! code to accidentally share state, which is exactly what lets the two
//! backends produce byte-identical training runs.
//!
//! Feature map to the paper:
//!
//! | paper (§III-D)                    | here                                   |
//! |-----------------------------------|----------------------------------------|
//! | `MPI_COMM_WORLD`                  | [`universe::Universe::run`]'s root [`comm::Comm`] |
//! | WORLD/LOCAL/GLOBAL communicators  | [`comm::Comm::subgroup`] context splits |
//! | p2p send/recv with tags           | [`comm::Comm::send`] / [`comm::Comm::recv`] |
//! | collective gather/allgather/bcast | [`comm::Comm`] collectives             |
//! | `MPI_CART_CREATE`                 | [`topology::CartGrid`]                 |
//!
//! Threading rules follow MPI: any thread of a rank may use a communicator
//! (clone the `Comm`), but collectives on one communicator must not be
//! called concurrently from two threads of the same rank.

//!
//! # Example
//!
//! ```
//! use lipiz_mpi::{Comm, Universe};
//!
//! // Three ranks, each contributing rank+1; allreduce sums across ranks.
//! let results = Universe::run(3, |comm: Comm| {
//!     comm.allreduce(&(comm.rank() as u64 + 1), |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6]);
//! ```

pub mod comm;
pub mod endpoint;
pub mod fault;
pub mod message;
pub mod tcp;
pub mod topology;
pub mod transport;
pub mod universe;
pub mod wire;

pub use comm::{Comm, DegradedGather, FrozenFrameHandle, PendingAllgather, RecvFrom};
pub use fault::{
    enable_process_faults, process_faults_enabled, replacement_schedule, FaultPlan, FaultState,
    ReplacementSchedule,
};
pub use message::{Envelope, Tag};
pub use tcp::TcpFabric;
pub use topology::CartGrid;
pub use transport::Transport;
pub use universe::Universe;
pub use wire::{Wire, WireError};
