//! Deterministic fault injection for the message-passing layer.
//!
//! A [`FaultPlan`] scripts failures against *world ranks* at *logical
//! iterations*: kill a rank's process at an iteration boundary, sever the
//! link between two ranks, delay or black-hole messages by tag. The plan is
//! a pure value — parseable from a compact spec string so it can ride in the
//! run config to every rank — and enforcement is driven by each rank's own
//! logical clock, not wall time. Replaying the same plan against the same
//! seed therefore reproduces the same degraded run, on the in-process
//! [`crate::comm::Fabric`] and the multi-process [`crate::tcp::TcpFabric`]
//! alike: both transports expose an installed [`FaultState`] through
//! [`crate::transport::Transport::fault_state`], and the communicator
//! consults it on every outgoing envelope.
//!
//! Spec grammar (`;`-separated, whitespace ignored):
//!
//! ```text
//! kill:R@I              kill world rank R at the start of iteration I
//! sever:A-B@I           drop all traffic between ranks A and B from iteration I
//! delay:A>B:T@I:MS      delay tag-T messages from A to B by MS ms from iteration I
//! drop:A>B:T@I..J       black-hole tag-T messages from A to B for iterations I..J
//! ```
//!
//! `T` is a decimal tag, `*` (any tag), or a collective name
//! (`barrier`/`bcast`/`gather`/`allgather`/`reduce`).

use crate::message::{ReservedTags, Tag};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Process-wide switch arming *process-level* fault actions (scripted
/// SIGKILL self-termination and the planned-absence bookkeeping that
/// assumes a real process death). Message-level faults (sever/delay/drop)
/// are always enforced once a plan is installed; killing the current
/// process is only sane when each rank IS a process — the CLI's slave
/// entry point flips this, the in-process (thread-per-rank) drivers never
/// do, so a threaded test run can carry a kill-bearing plan without
/// shooting the test binary.
static PROCESS_FAULTS: AtomicBool = AtomicBool::new(false);

/// Arm process-level fault actions for this process (one-way; called by
/// multi-process rank entry points only).
pub fn enable_process_faults() {
    PROCESS_FAULTS.store(true, Ordering::Release);
}

/// Are process-level fault actions armed in this process?
pub fn process_faults_enabled() -> bool {
    PROCESS_FAULTS.load(Ordering::Acquire)
}

/// Tag selector for message-level faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match every tag.
    Any,
    /// Match one tag exactly.
    Exact(Tag),
}

impl TagSel {
    fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Exact(t) => t == tag,
        }
    }

    fn parse(s: &str) -> Result<Self, FaultSpecError> {
        Ok(match s {
            "*" => TagSel::Any,
            "barrier" => TagSel::Exact(ReservedTags::BARRIER),
            "bcast" => TagSel::Exact(ReservedTags::BCAST),
            "gather" => TagSel::Exact(ReservedTags::GATHER),
            "allgather" => TagSel::Exact(ReservedTags::ALLGATHER),
            "reduce" => TagSel::Exact(ReservedTags::REDUCE),
            n => TagSel::Exact(n.parse().map_err(|_| FaultSpecError::bad("tag", n))?),
        })
    }

    fn spec(self) -> String {
        match self {
            TagSel::Any => "*".to_string(),
            TagSel::Exact(t) if t == ReservedTags::BARRIER => "barrier".to_string(),
            TagSel::Exact(t) if t == ReservedTags::BCAST => "bcast".to_string(),
            TagSel::Exact(t) if t == ReservedTags::GATHER => "gather".to_string(),
            TagSel::Exact(t) if t == ReservedTags::ALLGATHER => "allgather".to_string(),
            TagSel::Exact(t) if t == ReservedTags::REDUCE => "reduce".to_string(),
            TagSel::Exact(t) => t.to_string(),
        }
    }
}

/// One scripted failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// World rank `rank` dies at the start of iteration `at_iter` — before
    /// sending that iteration's exchange contribution, after committing any
    /// checkpoint due at the preceding boundary.
    Kill { rank: usize, at_iter: usize },
    /// All traffic between `a` and `b` (both directions) is dropped once
    /// the *sender's* clock reaches `at_iter`.
    Sever { a: usize, b: usize, at_iter: usize },
    /// Tag-matching messages from `src` to `dst` are held for `millis`
    /// before delivery once the sender's clock reaches `at_iter`. Delays
    /// stretch wall time but never change results in synchronous mode.
    Delay { src: usize, dst: usize, tag: TagSel, at_iter: usize, millis: u64 },
    /// Tag-matching messages from `src` to `dst` vanish while the sender's
    /// clock is in `[from_iter, until_iter)` (`until_iter == usize::MAX`
    /// for "forever").
    Blackhole { src: usize, dst: usize, tag: TagSel, from_iter: usize, until_iter: usize },
}

/// A malformed fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl FaultSpecError {
    fn bad(what: &str, got: &str) -> Self {
        Self(format!("bad {what}: {got:?}"))
    }
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

fn parse_num(what: &str, s: &str) -> Result<usize, FaultSpecError> {
    s.parse().map_err(|_| FaultSpecError::bad(what, s))
}

/// Split `s` at the single occurrence of `sep`, or error.
fn split2<'a>(s: &'a str, sep: char, what: &str) -> Result<(&'a str, &'a str), FaultSpecError> {
    s.split_once(sep).ok_or_else(|| FaultSpecError::bad(what, s))
}

/// A deterministic, replayable failure schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan with one fault appended (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The scripted faults, in spec order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse the spec grammar documented at module level.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = Self::new();
        for item in spec.split(';') {
            let item: String = item.chars().filter(|c| !c.is_whitespace()).collect();
            if item.is_empty() {
                continue;
            }
            let (kind, rest) = split2(&item, ':', "fault")?;
            let fault = match kind {
                "kill" => {
                    let (rank, iter) = split2(rest, '@', "kill")?;
                    Fault::Kill {
                        rank: parse_num("rank", rank)?,
                        at_iter: parse_num("iteration", iter)?,
                    }
                }
                "sever" => {
                    let (pair, iter) = split2(rest, '@', "sever")?;
                    let (a, b) = split2(pair, '-', "rank pair")?;
                    Fault::Sever {
                        a: parse_num("rank", a)?,
                        b: parse_num("rank", b)?,
                        at_iter: parse_num("iteration", iter)?,
                    }
                }
                "delay" => {
                    // delay:A>B:T@I:MS
                    let (pair, rest) = split2(rest, ':', "delay")?;
                    let (a, b) = split2(pair, '>', "rank pair")?;
                    let (tag, rest) = split2(rest, '@', "delay window")?;
                    let (iter, ms) = split2(rest, ':', "delay millis")?;
                    Fault::Delay {
                        src: parse_num("rank", a)?,
                        dst: parse_num("rank", b)?,
                        tag: TagSel::parse(tag)?,
                        at_iter: parse_num("iteration", iter)?,
                        millis: parse_num("millis", ms)? as u64,
                    }
                }
                "drop" => {
                    // drop:A>B:T@I..J  (or @I for "forever")
                    let (pair, rest) = split2(rest, ':', "drop")?;
                    let (a, b) = split2(pair, '>', "rank pair")?;
                    let (tag, window) = split2(rest, '@', "drop window")?;
                    let (from, until) = match window.split_once("..") {
                        Some((f, u)) => {
                            (parse_num("iteration", f)?, parse_num("iteration", u)?)
                        }
                        None => (parse_num("iteration", window)?, usize::MAX),
                    };
                    Fault::Blackhole {
                        src: parse_num("rank", a)?,
                        dst: parse_num("rank", b)?,
                        tag: TagSel::parse(tag)?,
                        from_iter: from,
                        until_iter: until,
                    }
                }
                other => return Err(FaultSpecError::bad("fault kind", other)),
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }

    /// Render back to the spec grammar (parse ∘ spec is identity).
    pub fn spec(&self) -> String {
        let items: Vec<String> = self
            .faults
            .iter()
            .map(|f| match *f {
                Fault::Kill { rank, at_iter } => format!("kill:{rank}@{at_iter}"),
                Fault::Sever { a, b, at_iter } => format!("sever:{a}-{b}@{at_iter}"),
                Fault::Delay { src, dst, tag, at_iter, millis } => {
                    format!("delay:{src}>{dst}:{}@{at_iter}:{millis}", tag.spec())
                }
                Fault::Blackhole { src, dst, tag, from_iter, until_iter } => {
                    if until_iter == usize::MAX {
                        format!("drop:{src}>{dst}:{}@{from_iter}", tag.spec())
                    } else {
                        format!("drop:{src}>{dst}:{}@{from_iter}..{until_iter}", tag.spec())
                    }
                }
            })
            .collect();
        items.join(";")
    }

    /// The iteration at which `rank` is scripted to die, if any (the
    /// earliest when several kills name the same rank).
    pub fn kill_iteration(&self, rank: usize) -> Option<usize> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Kill { rank: r, at_iter } if r == rank => Some(at_iter),
                _ => None,
            })
            .min()
    }

    /// Every scripted `(rank, at_iter)` kill, in spec order.
    pub fn kills(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::Kill { rank, at_iter } => Some((rank, at_iter)),
            _ => None,
        })
    }

    /// Is the `src -> dst` direction severed at the sender's iteration?
    pub fn severed(&self, src: usize, dst: usize, iter: usize) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Sever { a, b, at_iter } => {
                iter >= at_iter && ((a == src && b == dst) || (a == dst && b == src))
            }
            _ => false,
        })
    }

    /// Is a `src -> dst` message with `tag` black-holed at the sender's
    /// iteration (by a sever or an explicit drop window)?
    pub fn blackholed(&self, src: usize, dst: usize, tag: Tag, iter: usize) -> bool {
        self.severed(src, dst, iter)
            || self.faults.iter().any(|f| match *f {
                Fault::Blackhole { src: s, dst: d, tag: t, from_iter, until_iter } => {
                    s == src
                        && d == dst
                        && t.matches(tag)
                        && iter >= from_iter
                        && iter < until_iter
                }
                _ => false,
            })
    }

    /// Scripted delivery delay for a `src -> dst` message with `tag` at the
    /// sender's iteration (the longest when several match).
    pub fn delay(&self, src: usize, dst: usize, tag: Tag, iter: usize) -> Option<Duration> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Delay { src: s, dst: d, tag: t, at_iter, millis }
                    if s == src && d == dst && t.matches(tag) && iter >= at_iter =>
                {
                    Some(millis)
                }
                _ => None,
            })
            .max()
            .map(Duration::from_millis)
    }
}

/// The fully-determined in-flight replacement schedule implied by a plan:
/// which rank dies, when, where its replacement resumes, and the round at
/// which it rendezvouses with the survivors. Pure arithmetic over the plan
/// and the run shape, so every party — the master, the fan-in root, the
/// replacement rank, and the cluster simulator — computes the identical
/// schedule without exchanging a byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplacementSchedule {
    /// World rank of the scripted victim.
    pub victim_world: usize,
    /// Its grid cell (world rank − 1 under the runtime's workload map).
    pub cell: usize,
    /// The iteration at whose start the victim dies.
    pub kill_iter: usize,
    /// The round at which the replacement joins the exchange:
    /// `kill_iter + max_stale_iters`.
    pub rejoin_round: usize,
    /// The committed checkpoint iteration the replacement restores from —
    /// the newest cadence cut at or below `kill_iter` — or `None` (fresh
    /// engine, full catch-up) when no cut can exist.
    pub resume_cut: Option<usize>,
}

/// Compute the in-flight replacement schedule for `plan`, or `None` when
/// the plan's kills (if any) cannot be replaced in-flight and must fall
/// back to coordinated recovery. Only the *earliest* kill is scheduled;
/// additional kills degrade through the unplanned path and escalate.
///
/// Not replaceable: the master (world rank 0) and the fan-in root (world
/// rank 1, cell 0); kills at iteration 0 (no snapshot cached yet to
/// substitute); rejoin rounds at or past the end of the run; any kill when
/// `max_stale_iters` is 0 (degradation disabled).
pub fn replacement_schedule(
    plan: &FaultPlan,
    max_stale_iters: usize,
    checkpoint_every: usize,
    target_iterations: usize,
    cells: usize,
) -> Option<ReplacementSchedule> {
    if max_stale_iters == 0 {
        return None;
    }
    let (rank, at) = plan.kills().min_by_key(|&(r, i)| (i, r))?;
    if rank < 2 || rank > cells || at == 0 {
        return None;
    }
    let rejoin_round = at + max_stale_iters;
    if rejoin_round >= target_iterations {
        return None;
    }
    // The victim completed exactly `at` iterations and drained its writer
    // before dying, so every cadence cut <= `at` is durably committed.
    let cut = at.checked_div(checkpoint_every).map_or(0, |cadence| cadence * checkpoint_every);
    Some(ReplacementSchedule {
        victim_world: rank,
        cell: rank - 1,
        kill_iter: at,
        rejoin_round,
        resume_cut: (cut > 0).then_some(cut),
    })
}

/// What a transport should do with one outgoing envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFate {
    /// Deliver normally.
    Deliver,
    /// Drop silently (black-holed or severed link).
    Drop,
    /// Hold for the duration, then deliver.
    Delay(Duration),
}

/// A plan plus the per-rank logical clocks that drive enforcement.
///
/// One `FaultState` is installed per transport: the in-process fabric hosts
/// every rank's clock, a socket transport only ever ticks its own. Clocks
/// advance monotonically via [`FaultState::tick`], called by the training
/// loop at each iteration boundary — faults are scheduled in *logical* time,
/// so replays are exact.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    clocks: Vec<AtomicUsize>,
}

impl FaultState {
    /// Fault state for a universe of `world_size` ranks.
    pub fn new(plan: FaultPlan, world_size: usize) -> Self {
        Self { plan, clocks: (0..world_size).map(|_| AtomicUsize::new(0)).collect() }
    }

    /// The scripted plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance `rank`'s logical clock to `iter` (monotonic).
    pub fn tick(&self, rank: usize, iter: usize) {
        self.clocks[rank].fetch_max(iter, Ordering::Release);
    }

    /// `rank`'s current logical iteration.
    pub fn clock(&self, rank: usize) -> usize {
        self.clocks[rank].load(Ordering::Acquire)
    }

    /// Should `rank` die now, per its own clock? (The rank enforces its own
    /// kill — a process cannot be killed by a value, only told to die.)
    pub fn should_die(&self, rank: usize) -> bool {
        self.plan.kill_iteration(rank).is_some_and(|at| self.clock(rank) >= at)
    }

    /// Fate of an outgoing envelope, judged at the sender's clock.
    pub fn outgoing(&self, src: usize, dst: usize, tag: Tag) -> DeliveryFate {
        let iter = self.clock(src);
        if self.plan.blackholed(src, dst, tag, iter) {
            return DeliveryFate::Drop;
        }
        match self.plan.delay(src, dst, tag, iter) {
            Some(d) => DeliveryFate::Delay(d),
            None => DeliveryFate::Deliver,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = "kill:3@6;sever:1-2@4;delay:1>2:allgather@0:15;drop:2>3:*@5..9;drop:4>1:7@2";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.spec(), spec);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
    }

    #[test]
    fn whitespace_and_empty_items_tolerated() {
        let plan = FaultPlan::parse(" kill:1@2 ; ; sever:0-1@3 ").unwrap();
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.kill_iteration(1), Some(2));
    }

    #[test]
    fn malformed_specs_name_the_problem() {
        assert!(FaultPlan::parse("kill:1").is_err());
        assert!(FaultPlan::parse("explode:1@2").is_err());
        assert!(FaultPlan::parse("delay:1>2:bogus@0:5").is_err());
    }

    #[test]
    fn kill_is_per_rank_and_earliest_wins() {
        let plan = FaultPlan::parse("kill:2@9;kill:2@4").unwrap();
        assert_eq!(plan.kill_iteration(2), Some(4));
        assert_eq!(plan.kill_iteration(1), None);
        assert_eq!(plan.kills().count(), 2);
    }

    #[test]
    fn sever_is_bidirectional_and_iteration_gated() {
        let plan = FaultPlan::parse("sever:1-2@4").unwrap();
        assert!(!plan.severed(1, 2, 3));
        assert!(plan.severed(1, 2, 4));
        assert!(plan.severed(2, 1, 7));
        assert!(!plan.severed(1, 3, 9));
    }

    #[test]
    fn blackhole_window_and_tag_selector() {
        let plan = FaultPlan::parse("drop:0>1:allgather@2..5").unwrap();
        assert!(!plan.blackholed(0, 1, ReservedTags::ALLGATHER, 1));
        assert!(plan.blackholed(0, 1, ReservedTags::ALLGATHER, 2));
        assert!(plan.blackholed(0, 1, ReservedTags::ALLGATHER, 4));
        assert!(!plan.blackholed(0, 1, ReservedTags::ALLGATHER, 5));
        assert!(!plan.blackholed(0, 1, ReservedTags::BCAST, 3));
        assert!(!plan.blackholed(1, 0, ReservedTags::ALLGATHER, 3));
    }

    #[test]
    fn replacement_schedule_picks_earliest_replaceable_kill() {
        let plan = FaultPlan::parse("kill:3@6;kill:2@9").unwrap();
        let s = replacement_schedule(&plan, 3, 5, 20, 4).unwrap();
        assert_eq!(s.victim_world, 3);
        assert_eq!(s.cell, 2);
        assert_eq!(s.kill_iter, 6);
        assert_eq!(s.rejoin_round, 9);
        assert_eq!(s.resume_cut, Some(5));
    }

    #[test]
    fn replacement_schedule_refuses_unreplaceable_kills() {
        let kill = |s: &str| FaultPlan::parse(s).unwrap();
        // Degradation disabled.
        assert!(replacement_schedule(&kill("kill:3@6"), 0, 5, 20, 4).is_none());
        // Master and fan-in root.
        assert!(replacement_schedule(&kill("kill:0@6"), 3, 5, 20, 4).is_none());
        assert!(replacement_schedule(&kill("kill:1@6"), 3, 5, 20, 4).is_none());
        // Kill before anything was cached.
        assert!(replacement_schedule(&kill("kill:3@0"), 3, 5, 20, 4).is_none());
        // Rejoin would land past the end of the run.
        assert!(replacement_schedule(&kill("kill:3@18"), 3, 5, 20, 4).is_none());
        // Not a slave rank at all.
        assert!(replacement_schedule(&kill("kill:9@6"), 3, 5, 20, 4).is_none());
        // No kills scripted.
        assert!(replacement_schedule(&kill("sever:1-2@3"), 3, 5, 20, 4).is_none());
    }

    #[test]
    fn replacement_schedule_fresh_start_without_checkpoints() {
        let plan = FaultPlan::parse("kill:2@3").unwrap();
        let s = replacement_schedule(&plan, 2, 0, 10, 4).unwrap();
        assert_eq!(s.resume_cut, None);
        // A cadence with no cut yet at the kill iteration also falls back.
        let s = replacement_schedule(&plan, 2, 5, 10, 4).unwrap();
        assert_eq!(s.resume_cut, None);
    }

    #[test]
    fn fault_state_clocks_drive_fates() {
        let plan = FaultPlan::parse("drop:0>1:*@3;delay:1>0:*@0:25;kill:2@5").unwrap();
        let st = FaultState::new(plan, 3);
        assert_eq!(st.outgoing(0, 1, 9), DeliveryFate::Deliver);
        st.tick(0, 3);
        assert_eq!(st.outgoing(0, 1, 9), DeliveryFate::Drop);
        assert_eq!(st.outgoing(1, 0, 9), DeliveryFate::Delay(Duration::from_millis(25)));
        assert!(!st.should_die(2));
        st.tick(2, 5);
        assert!(st.should_die(2));
        // Clocks are monotonic: a stale tick cannot rewind.
        st.tick(2, 1);
        assert_eq!(st.clock(2), 5);
    }
}
