//! Communicators: point-to-point messaging and collectives.

use crate::endpoint::Mailbox;
use crate::fault::{DeliveryFate, FaultPlan, FaultState};
use crate::message::{Envelope, ReservedTags, Tag};
use crate::transport::Transport;
use crate::wire::Wire;
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Shared handle to a frozen death-frame (see [`DegradedGather::frozen_frame`]):
/// one encoded payload per group rank, `None` until a planned absence window
/// has opened.
pub type FrozenFrameHandle = Arc<Mutex<Option<Vec<Vec<u8>>>>>;

/// The in-process delivery fabric: one mailbox per world rank, delivery is
/// a queue push. The reference [`Transport`] implementation.
#[derive(Debug)]
pub struct Fabric {
    mailboxes: Vec<Arc<Mailbox>>,
    faults: OnceLock<FaultState>,
}

impl Fabric {
    /// Build a fabric for `n` world ranks.
    pub fn new(n: usize) -> Arc<Self> {
        Self::with_faults(n, FaultPlan::new())
    }

    /// Build a fabric for `n` world ranks running under a fault plan. An
    /// empty plan is identical to [`Fabric::new`].
    pub fn with_faults(n: usize, plan: FaultPlan) -> Arc<Self> {
        let fabric = Self {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            faults: OnceLock::new(),
        };
        if !plan.is_empty() {
            let _ = fabric.faults.set(FaultState::new(plan, n));
        }
        Arc::new(fabric)
    }
}

impl Transport for Fabric {
    fn world_size(&self) -> usize {
        self.mailboxes.len()
    }

    fn deliver(&self, dst: usize, env: Envelope) {
        self.mailboxes[dst].deliver(env);
    }

    fn mailbox(&self, r: usize) -> &Mailbox {
        &self.mailboxes[r]
    }

    fn fault_state(&self) -> Option<&FaultState> {
        self.faults.get()
    }

    fn install_fault_plan(&self, plan: FaultPlan) {
        if !plan.is_empty() {
            let _ = self.faults.set(FaultState::new(plan, self.world_size()));
        }
    }

    fn note_severed(&self, dst_world: usize, src_world: usize) {
        // Mirror a torn connection: the receiver's blocked waits on the
        // severed peer must fail as PeerLost, like a TCP reader would cause.
        self.mailboxes[dst_world].mark_peer_dead(src_world);
    }
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvFrom {
    /// Receive from any rank in the communicator (MPI_ANY_SOURCE).
    Any,
    /// Receive from the given group rank only.
    Rank(usize),
}

impl RecvFrom {
    fn as_option(self) -> Option<usize> {
        match self {
            RecvFrom::Any => None,
            RecvFrom::Rank(r) => Some(r),
        }
    }
}

/// A communication context over a group of ranks.
///
/// Clones share the same context (safe to hand to other threads of the same
/// rank, e.g. the slave's execution thread). Collectives must be called by
/// *every* member of the group in the same order, and must not be invoked
/// concurrently on the same communicator from two threads of one rank —
/// identical to the MPI rules.
#[derive(Debug, Clone)]
pub struct Comm {
    transport: Arc<dyn Transport>,
    context: u16,
    /// Group rank -> world rank.
    group: Arc<Vec<usize>>,
    my_rank: usize,
    /// Deterministic context-id allocator for subgroup creation.
    next_context: u16,
}

#[allow(clippy::needless_range_loop)] // loop indices are group ranks, not positions
impl Comm {
    /// The world communicator for `rank` over any [`Transport`] — the
    /// in-process [`Fabric`] or a socket transport like
    /// [`crate::tcp::TcpFabric`].
    pub fn world(transport: Arc<dyn Transport>, rank: usize) -> Self {
        let n = transport.world_size();
        assert!(rank < n, "rank out of range");
        Self {
            transport,
            context: 0,
            group: Arc::new((0..n).collect()),
            my_rank: rank,
            next_context: 1,
        }
    }

    /// My rank within this communicator's group.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// This communicator's context id (diagnostics).
    pub fn context(&self) -> u16 {
        self.context
    }

    /// World rank of group rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// Create a sub-communicator from `members` (ranks of *this* group, in
    /// the order they will be ranked in the new group).
    ///
    /// Every member of `self` must call `subgroup` with the identical list
    /// and in the same creation order (the MPI_Comm_create contract); ranks
    /// not in the list receive `None`. Create subgroups before cloning the
    /// communicator into helper threads so the deterministic context-id
    /// allocator stays aligned across ranks.
    pub fn subgroup(&mut self, members: &[usize]) -> Option<Comm> {
        let ctx = self.alloc_context();
        let pos = members.iter().position(|&m| m == self.my_rank)?;
        let group: Vec<usize> = members.iter().map(|&m| self.group[m]).collect();
        Some(Comm {
            transport: Arc::clone(&self.transport),
            context: ctx,
            group: Arc::new(group),
            my_rank: pos,
            next_context: 1,
        })
    }

    fn alloc_context(&mut self) -> u16 {
        // Derive child contexts deterministically from the parent context:
        // parent 0 hands out 1,2,3...; a nested split from context c hands
        // out c*64+1, c*64+2, ... — collision-free for our shallow trees.
        let ctx = self.context.wrapping_mul(64).wrapping_add(self.next_context);
        self.next_context += 1;
        ctx
    }

    // ---- point-to-point -------------------------------------------------

    /// Send `value` to group rank `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range or `tag` is in the reserved space.
    pub fn send<T: Wire>(&self, dst: usize, tag: Tag, value: &T) {
        assert!(tag < ReservedTags::RESERVED_BASE, "tag in reserved space");
        self.send_raw(dst, tag, value.to_bytes());
    }

    fn send_raw(&self, dst: usize, tag: Tag, payload: Vec<u8>) {
        let world_dst = self.group[dst];
        if let Some(faults) = self.transport.fault_state() {
            let world_src = self.group[self.my_rank];
            match faults.outgoing(world_src, world_dst, tag) {
                DeliveryFate::Drop => {
                    if faults.plan().severed(world_src, world_dst, faults.clock(world_src)) {
                        self.transport.note_severed(world_dst, world_src);
                    }
                    return;
                }
                // A scripted delay stretches the sender's wall time but
                // never reorders per-(src, tag) FIFO delivery, so results
                // are unchanged in synchronous mode.
                DeliveryFate::Delay(d) => std::thread::sleep(d),
                DeliveryFate::Deliver => {}
            }
        }
        let env = Envelope::new(self.context, self.my_rank, tag, payload);
        self.transport.deliver(world_dst, env);
    }

    /// Blocking receive; returns `(value, source group rank)`.
    ///
    /// # Panics
    /// Panics if the payload fails to decode as `T` (a protocol bug, not a
    /// runtime condition), or — on multi-process transports — if the
    /// awaited peer's connection dies with nothing matching queued: a rank
    /// whose counterpart is gone can never be satisfied, so it fails loudly
    /// instead of hanging the process forever (the elastic-recovery story
    /// needs doomed ranks to *exit*, not wedge).
    pub fn recv<T: Wire>(&self, src: RecvFrom, tag: Tag) -> (T, usize) {
        let env = match src {
            RecvFrom::Any => self.my_mailbox().recv(self.context, None, tag),
            RecvFrom::Rank(r) => self.recv_live(r, tag),
        };
        let value = T::from_bytes(&env.payload).expect("wire protocol mismatch");
        (value, env.src)
    }

    /// Untimed receive from group rank `src`, bounded by the peer's
    /// connection liveness (see [`Comm::recv`] on why death must panic).
    fn recv_live(&self, src: usize, tag: Tag) -> crate::message::Envelope {
        self.my_mailbox()
            .recv_from_live(self.context, Some(src), tag, Some(self.group[src]))
            .unwrap_or_else(|e| {
                panic!("rank {} (context {}) receive failed: {e}", self.my_rank, self.context)
            })
    }

    /// Receive with a timeout; `None` if the deadline passes.
    pub fn recv_timeout<T: Wire>(
        &self,
        src: RecvFrom,
        tag: Tag,
        timeout: Duration,
    ) -> Option<(T, usize)> {
        let env =
            self.my_mailbox().recv_timeout(self.context, src.as_option(), tag, timeout)?;
        let value = T::from_bytes(&env.payload).expect("wire protocol mismatch");
        Some((value, env.src))
    }

    /// Non-blocking probe for a matching message.
    pub fn probe(&self, src: RecvFrom, tag: Tag) -> bool {
        self.my_mailbox().probe(self.context, src.as_option(), tag)
    }

    /// Is group rank `r`'s transport connection known to be gone? Always
    /// `false` on in-process fabrics (which never mark peers dead). Lets a
    /// caller that abandoned a collective name the *actual* casualty
    /// instead of guessing from the pending set.
    pub fn peer_connection_dead(&self, r: usize) -> bool {
        self.my_mailbox().peer_is_dead(self.group[r])
    }

    fn my_mailbox(&self) -> &Mailbox {
        self.transport.mailbox(self.group[self.my_rank])
    }

    // ---- collectives ----------------------------------------------------

    /// Barrier: returns once every rank of the group has entered.
    ///
    /// All collective fan-ins receive from each source *individually* (in
    /// rank order) rather than from-any: non-root contributions are
    /// fire-and-forget, so a fast rank may already have sent its next
    /// collective's contribution — per-(src, tag) FIFO matching keeps the
    /// two collectives separated.
    pub fn barrier(&self) {
        // Flat fan-in to rank 0, then fan-out.
        if self.my_rank == 0 {
            for src in 1..self.size() {
                let _ = self.recv_live(src, ReservedTags::BARRIER);
            }
            for r in 1..self.size() {
                self.send_raw(r, ReservedTags::BARRIER, vec![]);
            }
        } else {
            self.send_raw(0, ReservedTags::BARRIER, vec![]);
            let _ = self.recv_live(0, ReservedTags::BARRIER);
        }
    }

    /// Broadcast from `root`. The root passes `Some(value)`; everyone
    /// (including the root) gets the value back.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn bcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        if self.my_rank == root {
            let v = value.expect("root must provide the broadcast value");
            let bytes = v.to_bytes();
            for r in 0..self.size() {
                if r != root {
                    self.send_raw(r, ReservedTags::BCAST, bytes.clone());
                }
            }
            v
        } else {
            assert!(value.is_none(), "non-root must pass None to bcast");
            let env = self.recv_live(root, ReservedTags::BCAST);
            T::from_bytes(&env.payload).expect("bcast decode")
        }
    }

    /// Gather one value per rank at `root` (group-rank order). Non-roots get
    /// `None`.
    pub fn gather<T: Wire>(&self, root: usize, value: &T) -> Option<Vec<T>> {
        if self.my_rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(T::from_bytes(&value.to_bytes()).expect("self gather"));
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let env = self.recv_live(src, ReservedTags::GATHER);
                let v = T::from_bytes(&env.payload).expect("gather decode");
                slots[src] = Some(v);
            }
            Some(slots.into_iter().map(|s| s.expect("gather slot")).collect())
        } else {
            self.send_raw(root, ReservedTags::GATHER, value.to_bytes());
            None
        }
    }

    /// [`Comm::gather`] whose *root side* can be abandoned: sources are
    /// drained with `poll`-long bounded waits, and `should_abort` is
    /// checked between polls **with the still-pending group ranks** — so a
    /// caller can ignore a stale verdict about a rank whose contribution
    /// already arrived (e.g. a slave that finished, delivered, and went
    /// quiet). Non-roots behave exactly like `gather` (their contribution
    /// is fire-and-forget), so the two are wire-compatible — a master may
    /// collect abortably while slaves call plain `gather`.
    ///
    /// Returns `Ok(None)` on non-roots, `Ok(Some(values))` on a completed
    /// root gather, and `Err(pending)` — the group ranks not yet received —
    /// when the root aborted. The runtime uses this for the final result
    /// gather so a dead slave (declared by the heartbeat deadline) aborts
    /// the collection instead of wedging the master forever.
    pub fn gather_abortable<T: Wire>(
        &self,
        root: usize,
        value: &T,
        poll: Duration,
        should_abort: &dyn Fn(&[usize]) -> bool,
    ) -> Result<Option<Vec<T>>, Vec<usize>> {
        if self.my_rank != root {
            self.send_raw(root, ReservedTags::GATHER, value.to_bytes());
            return Ok(None);
        }
        let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        slots[root] = Some(T::from_bytes(&value.to_bytes()).expect("self gather"));
        let mut pending: Vec<usize> = (0..self.size()).filter(|&r| r != root).collect();
        while !pending.is_empty() {
            // Drain whatever is queued from any pending source, then sleep
            // one poll interval at most before re-checking the abort flag.
            pending.retain(|&src| {
                match self.my_mailbox().recv_timeout(
                    self.context,
                    Some(src),
                    ReservedTags::GATHER,
                    Duration::ZERO,
                ) {
                    Some(env) => {
                        slots[src] = Some(T::from_bytes(&env.payload).expect("gather decode"));
                        false
                    }
                    None => true,
                }
            });
            if pending.is_empty() {
                break;
            }
            if should_abort(&pending) {
                return Err(pending);
            }
            // A pending source whose transport connection is gone (and has
            // nothing queued) cannot contribute *right now* — but whether
            // that dooms the gather is the caller's call: an elastic master
            // may be bringing a replacement process onto that very rank, in
            // which case the slot's link comes back to life and the
            // replacement still delivers. Re-consult the predicate so it
            // observes the doomed state promptly (well before any heartbeat
            // deadline can convict); a predicate with no replacement story
            // aborts here exactly as before. In-process fabrics never mark
            // peers dead, so this only fires on real transports.
            let doomed = pending.iter().any(|&src| {
                self.my_mailbox().peer_is_dead(self.group[src])
                    && !self.my_mailbox().probe(self.context, Some(src), ReservedTags::GATHER)
            });
            if doomed && should_abort(&pending) {
                return Err(pending);
            }
            // Block on the *first* pending source for the poll interval —
            // any delivery wakes the mailbox, so this is a bounded nap, not
            // a scheduling commitment to that source.
            if let Some(env) = self.my_mailbox().recv_timeout(
                self.context,
                Some(pending[0]),
                ReservedTags::GATHER,
                poll,
            ) {
                let src = pending[0];
                slots[src] = Some(T::from_bytes(&env.payload).expect("gather decode"));
                pending.retain(|&r| r != src);
            }
        }
        Ok(Some(slots.into_iter().map(|s| s.expect("gather slot")).collect()))
    }

    /// Allgather: every rank receives the vector of all ranks' values, in
    /// group-rank order. This is the §III-D "gather operations performed
    /// between slaves to collect partial results" primitive.
    pub fn allgather<T: Wire>(&self, value: &T) -> Vec<T> {
        self.allgather_bytes(&value.to_bytes())
            .iter()
            .map(|p| T::from_bytes(p).expect("allgather decode"))
            .collect()
    }

    /// Raw-payload allgather: every rank receives all ranks' payloads in
    /// group-rank order. Callers that maintain a reusable encode buffer
    /// (the per-iteration snapshot exchange) use this to skip the typed
    /// wrapper's per-exchange encode allocation; the transport itself still
    /// takes one owned copy of `payload`, since the mailbox keeps the bytes
    /// after the call returns.
    ///
    /// Implemented as [`Comm::allgather_bytes_split`] +
    /// [`Comm::allgather_bytes_complete`] back to back, so the synchronous
    /// path and the overlapped async-exchange path send byte-identical
    /// traffic.
    pub fn allgather_bytes(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let pending = self.allgather_bytes_split(payload);
        self.allgather_bytes_complete(pending)
    }

    /// The non-blocking *begin* half of a split allgather: a non-root posts
    /// its contribution toward the fan-in root and returns immediately; the
    /// root stashes its own contribution. The returned [`PendingAllgather`]
    /// must be finished with [`Comm::allgather_bytes_complete`] (or the
    /// degraded variant) before the next collective on this communicator
    /// completes — at most one split allgather may be outstanding at a time
    /// per rank, but the complete half may run on a *different thread* of
    /// the same rank holding a cloned `Comm` (the async exchange pipeline):
    /// per-(src, tag) FIFO mailbox matching keeps a begin posted for
    /// generation `i` from crossing a complete still draining generation
    /// `i-1`.
    pub fn allgather_bytes_split(&self, payload: &[u8]) -> PendingAllgather {
        if self.my_rank == 0 {
            PendingAllgather { payload: payload.to_vec() }
        } else {
            self.send_raw(0, ReservedTags::ALLGATHER, payload.to_vec());
            PendingAllgather { payload: Vec::new() }
        }
    }

    /// The blocking *complete* half of a split allgather: the root drains
    /// every contribution and broadcasts the concatenation; a non-root
    /// receives the broadcast. Byte-identical traffic to the second half of
    /// [`Comm::allgather_bytes`].
    pub fn allgather_bytes_complete(&self, pending: PendingAllgather) -> Vec<Vec<u8>> {
        // Gather at 0, then broadcast the concatenation.
        if self.my_rank == 0 {
            let mut slots: Vec<Option<Vec<u8>>> = vec![None; self.size()];
            slots[0] = Some(pending.payload);
            for src in 1..self.size() {
                let env = self.recv_live(src, ReservedTags::ALLGATHER);
                slots[src] = Some(env.payload);
            }
            let parts: Vec<Vec<u8>> =
                slots.into_iter().map(|s| s.expect("allgather slot")).collect();
            let bytes = parts.to_bytes();
            for r in 1..self.size() {
                self.send_raw(r, ReservedTags::ALLGATHER, bytes.clone());
            }
            parts
        } else {
            let env = self.recv_live(0, ReservedTags::ALLGATHER);
            Vec::<Vec<u8>>::from_bytes(&env.payload).expect("allgather parts")
        }
    }

    /// [`Comm::allgather_bytes`] whose fan-in root degrades gracefully when
    /// a contributor goes missing, instead of wedging or tearing the whole
    /// group down.
    ///
    /// The collective fans in at group rank 0 and fans out by broadcast, so
    /// only rank 0 ever receives from a non-root peer — degradation is
    /// therefore pure root-side logic, and every other rank transparently
    /// consumes whatever rank 0 places in the missing peer's slot. For each
    /// round (the caller's logical iteration, strictly increasing):
    ///
    /// * a rank inside a **planned absence window** (scripted by a
    ///   [`crate::fault::FaultPlan`] kill) is never awaited: its slot is
    ///   substituted from the per-peer stale cache, and the fan-out skips
    ///   it. Substitution is plan-driven, not timing-driven, so a degraded
    ///   run is a pure function of (seed, plan).
    /// * at a planned window's end the root blocks — up to
    ///   `rejoin_deadline` — for the replacement rank's contribution, then
    ///   resumes treating it as live.
    /// * an **unplanned** death (connection gone, nothing queued) degrades
    ///   the same way, bounded by `max_stale` consecutive substitutions
    ///   before the root escalates with a panic naming the world rank.
    ///   Queued pre-death contributions always drain first, preserving
    ///   round pairing; an alive-but-slow peer is never substituted.
    ///
    /// Fault-free rounds send byte-identical traffic to
    /// [`Comm::allgather_bytes`], which keeps synchronous-mode runs
    /// byte-identical across drivers.
    pub fn allgather_bytes_degraded(
        &self,
        payload: &[u8],
        round: usize,
        ctl: &mut DegradedGather,
    ) -> Vec<Vec<u8>> {
        let pending = self.allgather_bytes_split(payload);
        self.allgather_bytes_complete_degraded(pending, round, ctl)
    }

    /// Degraded-fan-in *complete* half of a split allgather (see
    /// [`Comm::allgather_bytes_split`] and
    /// [`Comm::allgather_bytes_degraded`]): root-side degradation logic over
    /// the stashed pending contribution; non-roots complete normally.
    pub fn allgather_bytes_complete_degraded(
        &self,
        pending: PendingAllgather,
        round: usize,
        ctl: &mut DegradedGather,
    ) -> Vec<Vec<u8>> {
        if self.my_rank != 0 {
            return self.allgather_bytes_complete(pending);
        }
        assert_eq!(ctl.cache.len(), self.size(), "DegradedGather sized for another group");
        // Freeze the death-frame — everyone's previous-round payload —
        // before any of this round's updates, the moment a planned window
        // opens. A replacement rank later streams this frame to replay its
        // catch-up deterministically.
        if ctl.planned_window_opens(round) {
            let frame: Option<Vec<Vec<u8>>> = ctl.cache.iter().cloned().collect();
            *ctl.frozen.lock() = Some(frame.expect("full cache at planned window open"));
        }
        ctl.cache[0] = Some(pending.payload.clone());
        let mut slots: Vec<Option<Vec<u8>>> = vec![None; self.size()];
        slots[0] = Some(pending.payload);
        for src in 1..self.size() {
            let part = match ctl.availability(src, round) {
                Availability::Live => match self.recv_or_detect_death(src, ctl, round) {
                    Some(part) => {
                        ctl.note_live(src, round);
                        ctl.cache[src] = Some(part.clone());
                        part
                    }
                    None => self.substitute_stale(src, ctl, round),
                },
                Availability::Absent => self.substitute_stale(src, ctl, round),
                Availability::Rejoining => {
                    let part = self.await_rejoin(src, ctl.rejoin_deadline, round);
                    ctl.note_live(src, round);
                    ctl.cache[src] = Some(part.clone());
                    part
                }
            };
            slots[src] = Some(part);
        }
        let parts: Vec<Vec<u8>> =
            slots.into_iter().map(|s| s.expect("allgather slot")).collect();
        let bytes = parts.to_bytes();
        for r in 1..self.size() {
            if ctl.skip_fanout(r, round) {
                continue;
            }
            self.send_raw(r, ReservedTags::ALLGATHER, bytes.clone());
        }
        parts
    }

    /// Root-side receive of one allgather contribution that detects an
    /// unplanned death instead of wedging: returns `None` once `src`'s
    /// connection is gone with nothing matching queued (and records the
    /// absence in `ctl`). Queued pre-death frames drain first.
    fn recv_or_detect_death(
        &self,
        src: usize,
        ctl: &mut DegradedGather,
        round: usize,
    ) -> Option<Vec<u8>> {
        loop {
            if let Some(env) = self.my_mailbox().recv_timeout(
                self.context,
                Some(src),
                ReservedTags::ALLGATHER,
                Duration::from_millis(25),
            ) {
                return Some(env.payload);
            }
            if self.peer_connection_dead(src)
                && !self.probe(RecvFrom::Rank(src), ReservedTags::ALLGATHER)
            {
                ctl.begin_unplanned(src, round);
                return None;
            }
        }
    }

    /// Substitute `src`'s slot from the stale cache, enforcing the bound.
    fn substitute_stale(&self, src: usize, ctl: &mut DegradedGather, round: usize) -> Vec<u8> {
        let world = self.group[src];
        ctl.note_stale(src, world, round);
        ctl.cache[src].clone().unwrap_or_else(|| {
            panic!(
                "world rank {world} went missing at round {round} with no cached \
                 snapshot to substitute"
            )
        })
    }

    /// Block — bounded by `deadline` — for the replacement of `src` to make
    /// its rendezvous contribution. Polls the raw mailbox so a dead-flag
    /// left set until the link swap cannot misfire as [`PeerLost`].
    ///
    /// [`PeerLost`]: crate::endpoint::PeerLost
    fn await_rejoin(&self, src: usize, deadline: Duration, round: usize) -> Vec<u8> {
        let give_up = Instant::now() + deadline;
        loop {
            if let Some(env) = self.my_mailbox().recv_timeout(
                self.context,
                Some(src),
                ReservedTags::ALLGATHER,
                Duration::from_millis(25),
            ) {
                return env.payload;
            }
            if Instant::now() >= give_up {
                panic!(
                    "replacement for world rank {} missed the rejoin rendezvous at round {round}",
                    self.group[src]
                );
            }
        }
    }

    /// Reduce all ranks' values at `root` with a binary combiner (applied in
    /// group-rank order, so non-commutative combiners are deterministic).
    pub fn reduce<T: Wire>(
        &self,
        root: usize,
        value: &T,
        combine: impl Fn(T, T) -> T,
    ) -> Option<T> {
        if self.my_rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(T::from_bytes(&value.to_bytes()).expect("self reduce"));
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let env = self.recv_live(src, ReservedTags::REDUCE);
                slots[src] = Some(T::from_bytes(&env.payload).expect("reduce decode"));
            }
            let mut it = slots.into_iter().map(|s| s.expect("reduce slot"));
            let first = it.next().expect("non-empty group");
            Some(it.fold(first, &combine))
        } else {
            self.send_raw(root, ReservedTags::REDUCE, value.to_bytes());
            None
        }
    }

    /// Allreduce = reduce at 0 + broadcast.
    pub fn allreduce<T: Wire>(&self, value: &T, combine: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, combine);
        self.bcast(0, reduced)
    }

    // ---- fault injection -------------------------------------------------

    /// Install a fault plan on the underlying transport, when none was
    /// installed at construction. Multi-process ranks learn their plan from
    /// the wire configuration *after* the transport exists, so this is how
    /// the runtime arms sever/delay/blackhole enforcement there; an empty
    /// plan or an already-armed transport is a no-op.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.transport.install_fault_plan(plan);
    }

    /// Advance this rank's fault-plan logical clock to `iter` (no-op on a
    /// fault-free transport). The training loop calls this once per
    /// iteration so scripted `@iteration` windows fire deterministically.
    pub fn tick_fault_clock(&self, iter: usize) {
        if let Some(faults) = self.transport.fault_state() {
            faults.tick(self.group[self.my_rank], iter);
        }
    }
}

/// The stashed local half of an in-flight split allgather: created by
/// [`Comm::allgather_bytes_split`], consumed by
/// [`Comm::allgather_bytes_complete`] (or the degraded variant). Carries no
/// borrow of the communicator, so it can cross to a background exchange
/// thread together with a cloned `Comm` of the same rank — which is how the
/// async exchange pipeline overlaps the blocking half with compute.
#[derive(Debug)]
#[must_use = "an in-flight split allgather must be completed"]
pub struct PendingAllgather {
    /// The root's own contribution (empty on non-root ranks, whose
    /// contribution was already posted to the root at begin).
    payload: Vec<u8>,
}

/// Why a contributor is (or is not) awaited this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Availability {
    /// Awaited normally.
    Live,
    /// Inside an absence window: substitute, don't wait.
    Absent,
    /// A planned window ends this round: block for the replacement.
    Rejoining,
}

/// One rank's absence bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Absence {
    /// Scripted by the fault plan: absent for rounds `from..until`, with a
    /// replacement expected to rendezvous at round `until`.
    Planned { from: usize, until: usize },
    /// Detected at runtime (connection death): no rendezvous is scheduled,
    /// so the substitution bound is the only exit.
    Unplanned,
}

/// Root-side controller for [`Comm::allgather_bytes_degraded`]: the per-peer
/// stale cache, absence windows, substitution bounds, and the frozen
/// death-frame a replacement rank streams for catch-up. Owned by the
/// exchange caller of the group's rank 0; other ranks never need one.
#[derive(Debug)]
pub struct DegradedGather {
    /// Last-known payload per group rank.
    cache: Vec<Option<Vec<u8>>>,
    /// Consecutive substitutions per group rank.
    stale_runs: Vec<usize>,
    absences: Vec<Option<Absence>>,
    /// Bound on consecutive substitutions for one rank before escalation.
    max_stale: usize,
    /// How long the root waits at a planned window's end for the
    /// replacement's rendezvous contribution.
    rejoin_deadline: Duration,
    /// The death-frame: every rank's payload from the round before the
    /// first planned window opened. Shared (`Arc`) so another thread — the
    /// slave's communication thread — can serve it to a catching-up
    /// replacement while this controller is mid-collective.
    frozen: Arc<Mutex<Option<Vec<Vec<u8>>>>>,
}

impl DegradedGather {
    /// Controller for a group of `size` ranks with the given substitution
    /// bound (`max_stale >= 1`).
    pub fn new(size: usize, max_stale: usize) -> Self {
        assert!(max_stale >= 1, "degraded gather needs a positive staleness bound");
        Self {
            cache: vec![None; size],
            stale_runs: vec![0; size],
            absences: vec![None; size],
            max_stale,
            rejoin_deadline: Duration::from_secs(90),
            frozen: Arc::new(Mutex::new(None)),
        }
    }

    /// Override the rendezvous deadline (tests shrink it).
    pub fn set_rejoin_deadline(&mut self, d: Duration) {
        self.rejoin_deadline = d;
    }

    /// Script a planned absence: group rank `r` contributes nothing for
    /// rounds `from..until`, and its replacement rendezvouses at `until`.
    pub fn plan_absence(&mut self, r: usize, from: usize, until: usize) {
        assert!(from < until, "empty absence window");
        assert!(
            until - from <= self.max_stale,
            "planned window longer than the staleness bound"
        );
        self.absences[r] = Some(Absence::Planned { from, until });
    }

    /// Handle to the frozen death-frame, for the thread that serves
    /// catch-up requests.
    pub fn frozen_frame(&self) -> FrozenFrameHandle {
        Arc::clone(&self.frozen)
    }

    /// Consecutive substitutions currently standing against group rank `r`.
    pub fn stale_run(&self, r: usize) -> usize {
        self.stale_runs[r]
    }

    fn availability(&self, r: usize, round: usize) -> Availability {
        match self.absences[r] {
            Some(Absence::Planned { from, until }) => {
                if round < from {
                    Availability::Live
                } else if round < until {
                    Availability::Absent
                } else {
                    Availability::Rejoining
                }
            }
            Some(Absence::Unplanned) => Availability::Absent,
            None => Availability::Live,
        }
    }

    /// Does a planned window open exactly at `round` (freeze point)?
    fn planned_window_opens(&self, round: usize) -> bool {
        self.absences
            .iter()
            .any(|a| matches!(a, Some(Absence::Planned { from, .. }) if *from == round))
    }

    /// Skip the fan-out to an absent rank (nothing is listening).
    fn skip_fanout(&self, r: usize, round: usize) -> bool {
        self.availability(r, round) == Availability::Absent
    }

    fn begin_unplanned(&mut self, r: usize, _round: usize) {
        if self.absences[r].is_none() {
            self.absences[r] = Some(Absence::Unplanned);
        }
    }

    fn note_live(&mut self, r: usize, round: usize) {
        self.stale_runs[r] = 0;
        // A planned window is cleared only once the replacement has made its
        // rendezvous — contributions *before* the window opens must not
        // erase the script.
        if matches!(self.absences[r], Some(Absence::Planned { until, .. }) if round >= until) {
            self.absences[r] = None;
        }
    }

    fn note_stale(&mut self, r: usize, world: usize, round: usize) {
        self.stale_runs[r] += 1;
        if self.stale_runs[r] > self.max_stale {
            panic!(
                "world rank {world} stale-substituted {} consecutive rounds at round {round}, \
                 exceeding max_stale_iters={}",
                self.stale_runs[r], self.max_stale
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn send_recv_pair() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &vec![1.5f32, -2.5]);
                0.0f32
            } else {
                let (v, src): (Vec<f32>, usize) = comm.recv(RecvFrom::Rank(0), 7);
                assert_eq!(src, 0);
                v[0] + v[1]
            }
        });
        assert_eq!(results[1], -1.0);
    }

    #[test]
    fn recv_from_any_reports_source() {
        let results = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut sources = vec![];
                for _ in 0..2 {
                    let (v, src): (u32, usize) = comm.recv(RecvFrom::Any, 1);
                    assert_eq!(v as usize, src);
                    sources.push(src);
                }
                sources.sort_unstable();
                sources
            } else {
                comm.send(0, 1, &(comm.rank() as u32));
                vec![]
            }
        });
        assert_eq!(results[0], vec![1, 2]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Universe::run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, everyone must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn bcast_distributes_root_value() {
        let results = Universe::run(4, |comm| {
            let v = if comm.rank() == 2 { Some("hello".to_string()) } else { None };
            comm.bcast(2, v)
        });
        assert!(results.iter().all(|r| r == "hello"));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = Universe::run(4, |comm| comm.gather(0, &(comm.rank() as u64 * 10)));
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn abortable_gather_completes_when_all_send() {
        let results = Universe::run(4, |comm| {
            comm.gather_abortable(
                0,
                &(comm.rank() as u64 * 10),
                Duration::from_millis(20),
                &|_| false,
            )
        });
        assert_eq!(results[0], Ok(Some(vec![0, 10, 20, 30])));
        assert!(results[1..].iter().all(|r| *r == Ok(None)));
    }

    #[test]
    fn abortable_gather_names_the_silent_ranks() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let abort = AtomicBool::new(false);
        let results = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                // Abort after the first poll round comes up short.
                let got = comm.gather_abortable(0, &0u64, Duration::from_millis(10), &|_| {
                    abort.swap(true, Ordering::SeqCst) // false once, then true
                });
                Some(got)
            } else if comm.rank() == 1 {
                let _ = comm.gather_abortable(0, &11u64, Duration::from_millis(10), &|_| false);
                None
            } else {
                // Rank 2 never contributes (the dead slave).
                std::thread::sleep(Duration::from_millis(100));
                None
            }
        });
        match results[0].as_ref().unwrap() {
            Err(pending) => assert!(pending.contains(&2), "dead rank not named: {pending:?}"),
            other => panic!("gather did not abort: {other:?}"),
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let results = Universe::run(5, |comm| comm.allgather(&format!("r{}", comm.rank())));
        for r in &results {
            assert_eq!(r, &["r0", "r1", "r2", "r3", "r4"]);
        }
    }

    #[test]
    fn split_allgather_matches_the_plain_one() {
        let results = Universe::run(4, |comm| {
            let payload = vec![comm.rank() as u8; 3];
            let pending = comm.allgather_bytes_split(&payload);
            let split = comm.allgather_bytes_complete(pending);
            let plain = comm.allgather_bytes(&payload);
            (split, plain)
        });
        for (split, plain) in &results {
            assert_eq!(split, plain);
            assert_eq!(split.len(), 4);
        }
    }

    #[test]
    fn split_allgather_pipelines_one_generation_ahead() {
        // The async-exchange shape: begin generation i, then complete
        // generation i-1 — with the begin for the *next* generation posted
        // before the previous complete has drained. Per-(src, tag) FIFO
        // keeps the generations ordered.
        let results = Universe::run(3, |comm| {
            let rounds = 5usize;
            let mut seen = Vec::new();
            let mut pending = comm.allgather_bytes_split(&[comm.rank() as u8, 0]);
            for gen in 1..rounds {
                let next = comm.allgather_bytes_split(&[comm.rank() as u8, gen as u8]);
                seen.push(comm.allgather_bytes_complete(pending));
                pending = next;
            }
            seen.push(comm.allgather_bytes_complete(pending));
            seen
        });
        for per_rank in &results {
            for (gen, parts) in per_rank.iter().enumerate() {
                for (src, part) in parts.iter().enumerate() {
                    assert_eq!(part, &vec![src as u8, gen as u8], "generation crossed");
                }
            }
        }
    }

    #[test]
    fn split_allgather_completes_on_a_second_thread() {
        // The complete half may run on a cloned comm in another thread of
        // the same rank — the exchange-thread topology of async mode.
        let results = Universe::run(3, |comm| {
            let pending = comm.allgather_bytes_split(&[comm.rank() as u8 + 10]);
            let comm2 = comm.clone();
            std::thread::spawn(move || comm2.allgather_bytes_complete(pending)).join().unwrap()
        });
        for parts in &results {
            assert_eq!(parts, &vec![vec![10u8], vec![11], vec![12]]);
        }
    }

    #[test]
    fn consecutive_allgathers_do_not_cross_talk() {
        let results = Universe::run(3, |comm| {
            let a = comm.allgather(&(comm.rank() as u32));
            let b = comm.allgather(&(comm.rank() as u32 + 100));
            (a, b)
        });
        for (a, b) in &results {
            assert_eq!(a, &[0, 1, 2]);
            assert_eq!(b, &[100, 101, 102]);
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let results = Universe::run(4, |comm| {
            let sum = comm.reduce(0, &(comm.rank() as i64 + 1), |a, b| a + b);
            let max = comm.allreduce(&(comm.rank() as i64), i64::max);
            (sum, max)
        });
        assert_eq!(results[0].0, Some(10));
        assert!(results.iter().all(|(_, m)| *m == 3));
    }

    #[test]
    fn subgroup_isolates_traffic_and_reranks() {
        let results = Universe::run(4, |comm| {
            let mut comm = comm;
            // Split off ranks 1..4 as a "slaves" group (the paper's LOCAL).
            let local = comm.subgroup(&[1, 2, 3]);
            match (comm.rank(), local) {
                (0, None) => vec![],
                (wr, Some(local)) => {
                    assert_eq!(local.size(), 3);
                    assert_eq!(local.rank(), wr - 1);
                    local.allgather(&(wr as u32))
                }
                _ => unreachable!(),
            }
        });
        assert_eq!(results[0], Vec::<u32>::new());
        for r in results.iter().skip(1) {
            assert_eq!(r, &vec![1, 2, 3]);
        }
    }

    #[test]
    fn world_and_subgroup_same_tag_do_not_collide() {
        let results = Universe::run(3, |comm| {
            let mut comm = comm;
            let sub = comm.subgroup(&[0, 1]);
            if comm.rank() == 0 {
                // Send on WORLD tag 5 to rank 1, and on SUB tag 5 to sub-rank 1.
                comm.send(1, 5, &11u32);
                sub.as_ref().unwrap().send(1, 5, &22u32);
                (0, 0)
            } else if comm.rank() == 1 {
                // Receive sub first even though world arrived first.
                let (s, _) = sub.as_ref().unwrap().recv::<u32>(RecvFrom::Rank(0), 5);
                let (w, _) = comm.recv::<u32>(RecvFrom::Rank(0), 5);
                (w, s)
            } else {
                (0, 0)
            }
        });
        assert_eq!(results[1], (11, 22));
    }

    #[test]
    #[should_panic(expected = "reserved space")]
    fn reserved_tag_rejected() {
        Universe::run(1, |comm| {
            comm.send(0, ReservedTags::BARRIER, &0u8);
        });
    }

    #[test]
    fn degraded_allgather_substitutes_stale_and_takes_the_rejoin() {
        use crate::fault::FaultPlan;
        // Rank 2 is scripted dead for rounds 2..4 and "replaced" (here: the
        // same thread coming back) at round 4. The fabric carries the plan
        // so the test also exercises the transport-level kill bookkeeping.
        let fabric = Fabric::with_faults(3, FaultPlan::parse("kill:2@2").unwrap());
        let payload = |r: usize, round: usize| vec![r as u8, round as u8];
        let results = Universe::run_on(fabric, |comm| {
            let rounds = 6usize;
            match comm.rank() {
                0 => {
                    let mut ctl = DegradedGather::new(3, 2);
                    ctl.plan_absence(2, 2, 4);
                    let frozen = ctl.frozen_frame();
                    let mut seen = Vec::new();
                    for round in 0..rounds {
                        let parts =
                            comm.allgather_bytes_degraded(&payload(0, round), round, &mut ctl);
                        seen.push(parts[2].clone());
                        assert_eq!(parts[1], payload(1, round), "live rank must stay fresh");
                    }
                    // Substituted rounds carried rank 2's round-1 payload.
                    assert_eq!(seen[2], payload(2, 1));
                    assert_eq!(seen[3], payload(2, 1));
                    assert_eq!(seen[4], payload(2, 4), "rejoin contribution taken");
                    assert_eq!(seen[5], payload(2, 5));
                    assert_eq!(ctl.stale_run(2), 0, "rejoin resets the stale run");
                    // The frozen death-frame is everyone's round-1 payload.
                    let frame = frozen.lock().clone().expect("frame frozen at window open");
                    assert_eq!(frame, vec![payload(0, 1), payload(1, 1), payload(2, 1)]);
                }
                1 => {
                    for round in 0..rounds {
                        let parts = comm.allgather_bytes(&payload(1, round));
                        // Survivors transparently consume the substituted slot.
                        let expect2 = if round == 2 || round == 3 { 1 } else { round as u8 };
                        assert_eq!(parts[2], vec![2u8, expect2]);
                    }
                }
                2 => {
                    for round in [0usize, 1, 4, 5] {
                        let parts = comm.allgather_bytes(&payload(2, round));
                        assert_eq!(parts[0], payload(0, round));
                    }
                }
                _ => unreachable!(),
            }
        });
        assert_eq!(results.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeding max_stale_iters")]
    fn degraded_allgather_escalates_after_the_staleness_bound() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut ctl = DegradedGather::new(2, 2);
                for round in 0..5 {
                    let parts =
                        comm.allgather_bytes_degraded(&[0, round], round as usize, &mut ctl);
                    assert_eq!(parts.len(), 2);
                }
            } else {
                // Contribute twice, then die unannounced.
                let _ = comm.allgather_bytes(&[1, 0]);
                let _ = comm.allgather_bytes(&[1, 1]);
                // Simulate the transport reader noticing the death.
                std::thread::sleep(Duration::from_millis(30));
                comm.transport.mailbox(0).mark_peer_dead(1);
            }
        });
        drop(results);
    }

    #[test]
    fn degraded_allgather_drains_queued_frames_before_substituting() {
        // An alive-but-already-sent rank that dies must have its queued
        // contribution consumed, not substituted — round pairing depends
        // on it.
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(40));
                let mut ctl = DegradedGather::new(2, 3);
                let mut got = Vec::new();
                for round in 0..4usize {
                    let parts = comm.allgather_bytes_degraded(&[0], round, &mut ctl);
                    got.push(parts[1].clone());
                }
                // Rounds 0..2 drain the queued pre-death frames; round 3
                // substitutes the last one.
                assert_eq!(got, vec![vec![10], vec![11], vec![12], vec![12]]);
                ctl.stale_run(1)
            } else {
                for v in [10u8, 11, 12] {
                    comm.send_raw(0, ReservedTags::ALLGATHER, vec![v]);
                }
                comm.transport.mailbox(0).mark_peer_dead(1);
                0
            }
        });
        assert_eq!(results[0], 1);
    }

    #[test]
    #[should_panic(expected = "world rank 0 lost")]
    fn severed_link_fails_receives_like_a_torn_connection() {
        use crate::fault::FaultPlan;
        let fabric = Fabric::with_faults(2, FaultPlan::parse("sever:0-1@1").unwrap());
        Universe::run_on(fabric, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &1u32); // clock 0: delivered
                comm.transport.fault_state().unwrap().tick(0, 1);
                comm.send(1, 5, &2u32); // clock 1: dropped, link marked dead
            } else {
                let (v, _) = comm.recv::<u32>(RecvFrom::Rank(0), 5);
                assert_eq!(v, 1);
                let _ = comm.recv::<u32>(RecvFrom::Rank(0), 5); // panics: PeerLost
            }
        });
    }

    #[test]
    fn scripted_delay_stretches_wall_time_not_values() {
        use crate::fault::FaultPlan;
        let fabric = Fabric::with_faults(2, FaultPlan::parse("delay:0>1:*@0:40").unwrap());
        let results = Universe::run_on(fabric, |comm| {
            if comm.rank() == 0 {
                let t0 = std::time::Instant::now();
                comm.send(1, 7, &99u32);
                t0.elapsed() >= Duration::from_millis(30)
            } else {
                let (v, _) = comm.recv::<u32>(RecvFrom::Rank(0), 7);
                v == 99
            }
        });
        assert!(results[0], "sender pays the scripted delay");
        assert!(results[1], "value arrives unchanged");
    }

    #[test]
    #[should_panic(expected = "world rank 2 lost")]
    fn stranded_subgroup_collective_names_the_dead_world_rank() {
        // A subgroup member that dies after subgroup creation must fail the
        // waiting rank loudly, with the *world* rank named — the subgroup's
        // local-rank translation (world_rank_of) is what recv_from_live
        // pins liveness to.
        let fabric = Fabric::new(3);
        let mut comm = Comm::world(fabric.clone(), 1);
        let local = comm.subgroup(&[1, 2]).expect("member of the subgroup");
        assert_eq!(local.world_rank_of(1), 2);
        // The transport reader notices world rank 2's death.
        fabric.mailbox(1).mark_peer_dead(2);
        assert!(local.peer_connection_dead(1));
        // Subgroup-local rank 1 is world rank 2: the receive must panic
        // naming world rank 2, not wedge and not misreport local rank 1.
        let _ = local.recv::<u32>(RecvFrom::Rank(1), 5);
    }

    #[test]
    fn clone_shares_context_for_second_thread() {
        // A rank's second thread (execution thread) can use a cloned comm.
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let comm2 = comm.clone();
                let t = std::thread::spawn(move || {
                    let (v, _) = comm2.recv::<u32>(RecvFrom::Rank(1), 42);
                    v
                });
                let (w, _) = comm.recv::<u32>(RecvFrom::Rank(1), 43);
                t.join().unwrap() + w
            } else {
                comm.send(0, 43, &1u32);
                comm.send(0, 42, &2u32);
                0
            }
        });
        assert_eq!(results[0], 3);
    }
}
