//! Cartesian (toroidal grid) topology helper — the `MPI_CART_CREATE`
//! analogue mentioned in §III-A for optimizing communications.

/// A periodic 2-D process grid mapping ranks ↔ coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CartGrid {
    rows: usize,
    cols: usize,
}

impl CartGrid {
    /// Build a `rows × cols` periodic grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Self { rows, cols }
    }

    /// Square `m × m` grid.
    pub fn square(m: usize) -> Self {
        Self::new(m, m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of grid positions.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinates of `rank` (row-major).
    ///
    /// # Panics
    /// Panics if `rank >= size()`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size(), "rank out of grid");
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at `(row, col)` with toroidal wrap-around.
    pub fn rank_of(&self, row: isize, col: isize) -> usize {
        let r = row.rem_euclid(self.rows as isize) as usize;
        let c = col.rem_euclid(self.cols as isize) as usize;
        r * self.cols + c
    }

    /// Rank reached from `rank` by moving `(dr, dc)` with wrap-around
    /// (the `MPI_Cart_shift` analogue).
    pub fn shift(&self, rank: usize, dr: isize, dc: isize) -> usize {
        let (r, c) = self.coords_of(rank);
        self.rank_of(r as isize + dr, c as isize + dc)
    }

    /// The four von-Neumann neighbors `[north, south, west, east]` of a
    /// rank on the torus.
    pub fn neighbors4(&self, rank: usize) -> [usize; 4] {
        [
            self.shift(rank, -1, 0),
            self.shift(rank, 1, 0),
            self.shift(rank, 0, -1),
            self.shift(rank, 0, 1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = CartGrid::new(3, 4);
        for rank in 0..g.size() {
            let (r, c) = g.coords_of(rank);
            assert_eq!(g.rank_of(r as isize, c as isize), rank);
        }
    }

    #[test]
    fn wraparound_is_toroidal() {
        let g = CartGrid::square(4);
        // North of row 0 is row 3.
        assert_eq!(g.shift(1, -1, 0), g.rank_of(3, 1));
        // East of the last column is column 0.
        assert_eq!(g.shift(3, 0, 1), g.rank_of(0, 0));
        // Negative wrap of several steps.
        assert_eq!(g.rank_of(-5, -5), g.rank_of(3, 3));
    }

    #[test]
    fn neighbors_of_2x2_grid() {
        // On a 2×2 torus every cell's N and S coincide, as do W and E.
        let g = CartGrid::square(2);
        let n = g.neighbors4(0);
        assert_eq!(n, [2, 2, 1, 1]);
    }

    #[test]
    fn neighbors_match_figure1() {
        // Fig. 1: a 4×4 grid; the neighborhood of cell (1,1) is itself plus
        // (0,1) N, (2,1) S, (1,0) W, (1,2) E.
        let g = CartGrid::square(4);
        let center = g.rank_of(1, 1);
        let n = g.neighbors4(center);
        assert_eq!(n, [g.rank_of(0, 1), g.rank_of(2, 1), g.rank_of(1, 0), g.rank_of(1, 2)]);
    }

    #[test]
    fn one_by_one_grid_neighbors_self() {
        let g = CartGrid::new(1, 1);
        assert_eq!(g.neighbors4(0), [0, 0, 0, 0]);
    }

    #[test]
    fn single_row_grid_wraps_only_horizontally() {
        // 1×5: N and S collapse onto the cell itself; W/E wrap the row.
        let g = CartGrid::new(1, 5);
        for rank in 0..5 {
            let [n, s, w, e] = g.neighbors4(rank);
            assert_eq!(n, rank, "north of a 1-row torus is self");
            assert_eq!(s, rank, "south of a 1-row torus is self");
            assert_eq!(w, (rank + 4) % 5);
            assert_eq!(e, (rank + 1) % 5);
        }
    }

    #[test]
    fn single_column_grid_wraps_only_vertically() {
        let g = CartGrid::new(4, 1);
        for rank in 0..4 {
            let [n, s, w, e] = g.neighbors4(rank);
            assert_eq!(n, (rank + 3) % 4);
            assert_eq!(s, (rank + 1) % 4);
            assert_eq!(w, rank, "west of a 1-col torus is self");
            assert_eq!(e, rank, "east of a 1-col torus is self");
        }
    }

    #[test]
    fn rectangular_2x5_coords_and_shifts() {
        let g = CartGrid::new(2, 5);
        assert_eq!(g.size(), 10);
        // Row-major layout: rank 7 sits at (1, 2).
        assert_eq!(g.coords_of(7), (1, 2));
        assert_eq!(g.rank_of(1, 2), 7);
        // Vertical wrap on 2 rows: N and S of any rank coincide.
        assert_eq!(g.shift(7, -1, 0), g.shift(7, 1, 0));
        assert_eq!(g.shift(7, -1, 0), 2);
        // Horizontal wrap crosses the 5-wide row.
        assert_eq!(g.shift(5, 0, -1), 9);
        assert_eq!(g.shift(9, 0, 1), 5);
    }

    #[test]
    fn coords_round_trip_on_degenerate_shapes() {
        for (rows, cols) in [(1, 1), (1, 7), (7, 1), (2, 5), (5, 2), (3, 4)] {
            let g = CartGrid::new(rows, cols);
            for rank in 0..g.size() {
                let (r, c) = g.coords_of(rank);
                assert!(r < rows && c < cols);
                assert_eq!(g.rank_of(r as isize, c as isize), rank, "{rows}x{cols}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        CartGrid::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn rank_out_of_grid_panics() {
        CartGrid::square(2).coords_of(4);
    }
}
