//! Launching a set of ranks.

use crate::comm::{Comm, Fabric};
use crate::transport::Transport;
use std::sync::Arc;

/// Entry point: runs `n` ranks as threads, each receiving its WORLD
/// communicator (the analogue of `mpiexec -n <n>`).
pub struct Universe;

impl Universe {
    /// Join an externally-bootstrapped universe as world rank `rank` over
    /// `transport` — the multi-process analogue of [`Universe::run`], where
    /// each OS process calls `attach` once with its end of a socket
    /// transport (see [`crate::tcp::TcpFabric`]) instead of one process
    /// spawning every rank as a thread.
    pub fn attach(transport: Arc<dyn Transport>, rank: usize) -> Comm {
        Comm::world(transport, rank)
    }
    /// Run `f` on `n` ranks and return their results in rank order.
    ///
    /// Panics in any rank are propagated (with the rank number) after all
    /// other ranks have been joined, so a failing test names the guilty
    /// rank instead of deadlocking.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::run_on(Fabric::new(n), f)
    }

    /// [`Universe::run`] over a caller-built fabric — the way to run an
    /// in-process universe under a [`crate::fault::FaultPlan`]
    /// (see [`Fabric::with_faults`]).
    pub fn run_on<R, F>(fabric: std::sync::Arc<Fabric>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let n = fabric.world_size();
        assert!(n > 0, "need at least one rank");
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let comm = Comm::world(fabric.clone(), rank);
                    s.spawn(move || f(comm))
                })
                .collect();
            let mut results = Vec::with_capacity(n);
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some((rank, p));
                        }
                    }
                }
            }
            if let Some((rank, p)) = first_panic {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                panic!("rank {rank} panicked: {msg}");
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let results = Universe::run(6, |comm| comm.rank() * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn single_rank_universe() {
        let results = Universe::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier(); // degenerate barrier must not hang
            comm.allgather(&7u8)
        });
        assert_eq!(results[0], vec![7]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn panic_is_propagated_with_rank() {
        Universe::run(4, |comm| {
            if comm.rank() == 2 {
                panic!("deliberate failure");
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_comm| ());
    }

    #[test]
    fn ranks_see_consistent_world() {
        let results = Universe::run(5, |comm| (comm.rank(), comm.size()));
        for (i, (rank, size)) in results.iter().enumerate() {
            assert_eq!(*rank, i);
            assert_eq!(*size, 5);
        }
    }
}
