//! Binary wire codec.
//!
//! Every payload that crosses a rank boundary implements [`Wire`]. The
//! format is little-endian, length-prefixed, and self-contained — the moral
//! equivalent of an MPI derived datatype. Implementations exist for the
//! primitives and containers the runtime needs; composite protocol structs
//! implement `Wire` field-by-field (see `lipiz-runtime`).

use bytes::{Buf, BufMut};
use std::fmt;

/// Decoding error: truncated or malformed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was being decoded.
    pub what: &'static str,
}

impl WireError {
    /// Construct an error for the given context.
    pub fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// Types that can be serialized to / deserialized from a byte stream.
pub trait Wire: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Encode into a reusable scratch buffer: clears `buf` but keeps its
    /// capacity. The scratch-reuse counterpart of [`Wire::to_bytes`] for
    /// callers that encode the same message type repeatedly (the snapshot
    /// allgather goes one step further and encodes straight from the core
    /// type — see `SnapshotMsg::encode_snapshot` in `lipiz-runtime`).
    fn to_bytes_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        self.encode(buf);
    }

    /// Decode from a complete buffer, requiring full consumption.
    fn from_bytes(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError::new("trailing bytes"));
        }
        Ok(v)
    }
}

macro_rules! impl_wire_primitive {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Wire for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.$put(*self);
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                if buf.remaining() < $size {
                    return Err(WireError::new(stringify!($ty)));
                }
                Ok(buf.$get())
            }
        }
    };
}

impl_wire_primitive!(u8, put_u8, get_u8, 1);
impl_wire_primitive!(u16, put_u16_le, get_u16_le, 2);
impl_wire_primitive!(u32, put_u32_le, get_u32_le, 4);
impl_wire_primitive!(u64, put_u64_le, get_u64_le, 8);
impl_wire_primitive!(i32, put_i32_le, get_i32_le, 4);
impl_wire_primitive!(i64, put_i64_le, get_i64_le, 8);
impl_wire_primitive!(f32, put_f32_le, get_f32_le, 4);
impl_wire_primitive!(f64, put_f64_le, get_f64_le, 8);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::new("bool")),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| WireError::new("usize overflow"))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return Err(WireError::new("string body"));
        }
        let bytes = buf[..len].to_vec();
        buf.advance(len);
        String::from_utf8(bytes).map_err(|_| WireError::new("string utf8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        // Guard against hostile lengths: each element needs ≥ 1 byte.
        if len > buf.remaining() {
            return Err(WireError::new("vec length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::new("option discriminant")),
        }
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// Implement [`Wire`] for a plain struct by encoding fields in order.
///
/// ```
/// use lipiz_mpi::wire::Wire;
/// use lipiz_mpi::wire_struct;
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f32, y: f32 }
/// wire_struct!(Point { x, y });
///
/// let p = Point { x: 1.0, y: -2.0 };
/// assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$field.encode(buf);)+
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, $crate::wire::WireError> {
                Ok(Self {
                    $($field: $crate::wire::Wire::decode(buf)?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-7i32);
        round_trip(i64::MIN);
        round_trip(std::f32::consts::PI);
        round_trip(std::f64::consts::E);
        round_trip(true);
        round_trip(false);
        round_trip(123usize);
        round_trip(());
    }

    #[test]
    fn containers_round_trip() {
        round_trip("hello MPI".to_string());
        round_trip(String::new());
        round_trip(vec![1.0f32, -2.5, 3.25]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((1u32, 2.5f64));
        round_trip((1u8, "x".to_string(), vec![3u64]));
        round_trip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = 0xDEAD_BEEFu32.to_bytes();
        assert!(u32::from_bytes(&bytes[..3]).is_err());
        let s = "hello".to_string().to_bytes();
        assert!(String::from_bytes(&s[..6]).is_err());
        let v = vec![1u64, 2, 3].to_bytes();
        assert!(Vec::<u64>::from_bytes(&v[..10]).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 1u8.to_bytes();
        bytes.push(0);
        assert!(u8::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Claims 2^31 elements with a 4-byte body.
        let mut bytes = Vec::new();
        (0x8000_0000u32).encode(&mut bytes);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Vec::<u8>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_discriminants_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9]).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        (2u32).encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_bytes(&bytes).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: Vec<f32>,
        c: String,
    }
    wire_struct!(Demo { a, b, c });

    #[test]
    fn wire_struct_macro_round_trips() {
        round_trip(Demo { a: 5, b: vec![1.5, -2.5], c: "demo".into() });
    }

    #[test]
    fn to_bytes_into_reuses_capacity() {
        let v = vec![1.5f32; 256];
        let mut scratch = Vec::new();
        v.to_bytes_into(&mut scratch);
        assert_eq!(scratch, v.to_bytes());
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        v.to_bytes_into(&mut scratch);
        assert_eq!(scratch, v.to_bytes());
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(scratch.as_ptr(), ptr, "scratch was reallocated");
    }

    #[test]
    fn f32_vec_is_compact() {
        // 4-byte length prefix + 4 bytes per element: genomes ship tight.
        let v = vec![0.0f32; 1000];
        assert_eq!(v.to_bytes().len(), 4 + 4000);
    }
}
