//! Benchmarks of the run-telemetry hot path: the per-phase span record
//! (two ring pushes + a histogram observe), the disabled recorder (the
//! cost every non-`--telemetry` run pays — it must be nothing), instants,
//! and the cold-path artifacts (summary merge, trace render).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipiz_telemetry::{
    chrome_trace, EventKind, RankJournal, SpanKind, Telemetry, TelemetrySummary,
};

/// One full iteration's worth of span records, as the slave loop emits
/// them: the four Table IV routines, begin + end each.
fn record_iteration(tel: &mut Telemetry, iter: u32) {
    for kind in [SpanKind::Gather, SpanKind::Mutate, SpanKind::Train, SpanKind::Update] {
        let start = tel.begin(kind, 0, iter);
        let _ = tel.end(kind, 0, iter, start);
    }
}

fn bench_span_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_record");
    // The gate everyone pays: a disabled recorder must be a branch, not a
    // clock read.
    group.bench_function("disabled", |b| {
        let mut tel = Telemetry::disabled();
        let mut iter = 0u32;
        b.iter(|| {
            record_iteration(&mut tel, iter);
            iter = iter.wrapping_add(1);
        })
    });
    // Enabled: two monotonic clock reads, two ring pushes, one histogram
    // observe per span; the ring wraps continuously at this capacity.
    group.bench_function("enabled", |b| {
        let mut tel = Telemetry::enabled(1, 1024);
        let mut iter = 0u32;
        b.iter(|| {
            record_iteration(&mut tel, iter);
            iter = iter.wrapping_add(1);
        })
    });
    group.finish();
}

fn bench_instant(c: &mut Criterion) {
    c.bench_function("instant_enabled", |b| {
        let mut tel = Telemetry::enabled(1, 1024);
        let mut iter = 0u32;
        b.iter(|| {
            tel.instant(EventKind::CheckpointCommit, 0, iter, 0);
            iter = iter.wrapping_add(1);
        })
    });
}

fn bench_summary_merge(c: &mut Criterion) {
    // Master-side fold at a commit boundary: one merge per reporting slave.
    let mut tel = Telemetry::enabled(2, 1024);
    for i in 0..64 {
        record_iteration(&mut tel, i);
    }
    let rank = tel.summary(1);
    c.bench_function("summary_merge", |b| {
        b.iter(|| {
            let mut merged = TelemetrySummary::empty();
            for _ in 0..16 {
                merged.merge(&rank);
            }
            merged
        })
    });
}

fn bench_trace_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_render");
    for &iters in &[64u32, 1024] {
        let mut tel = Telemetry::enabled(3, 4 * 1024);
        for i in 0..iters {
            record_iteration(&mut tel, i);
        }
        let journal = RankJournal {
            rank: 3,
            dropped: tel.dropped(),
            events: tel.events().copied().collect(),
        };
        group.bench_with_input(BenchmarkId::new("iterations", iters), &journal, |b, j| {
            b.iter(|| chrome_trace(std::slice::from_ref(j)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_span_record, bench_instant, bench_summary_merge, bench_trace_render
}
criterion_main!(benches);
