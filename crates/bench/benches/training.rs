//! Meso-benchmarks of the four profiled routines (the rows of Table IV)
//! on a single cell, at a reduced network size so Criterion sampling stays
//! tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use lipiz_core::{CellEngine, CellSnapshot, Profiler, TrainConfig};
use lipiz_tensor::{Matrix, Rng64};

/// A mid-size config: realistic layer structure, ~1/16 of Table I FLOPs.
fn bench_config() -> TrainConfig {
    let mut cfg = TrainConfig::smoke(2);
    cfg.network.latent_dim = 16;
    cfg.network.hidden_layers = 2;
    cfg.network.hidden_units = 64;
    cfg.network.data_dim = 196; // 14x14
    cfg.training.batch_size = 50;
    cfg.training.batches_per_iteration = 1;
    cfg.training.dataset_size = 200;
    cfg.training.eval_batch = 25;
    cfg
}

fn data_for(cfg: &TrainConfig) -> Matrix {
    let mut rng = Rng64::seed_from(cfg.training.data_seed);
    rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
}

fn engine() -> (CellEngine, Vec<CellSnapshot>) {
    let cfg = bench_config();
    let mut e = CellEngine::new(0, &cfg, data_for(&cfg));
    let snaps: Vec<CellSnapshot> = (0..4).map(|_| e.snapshot()).collect();
    (e, snaps)
}

fn bench_gather_phase(c: &mut Criterion) {
    let (mut e, snaps) = engine();
    c.bench_function("routine_gather_ingest", |b| b.iter(|| e.ingest_neighbors(&snaps)));
}

fn bench_mutate_phase(c: &mut Criterion) {
    let (mut e, _) = engine();
    c.bench_function("routine_mutate", |b| b.iter(|| e.mutate_phase()));
}

fn bench_train_phase(c: &mut Criterion) {
    let (mut e, snaps) = engine();
    e.ingest_neighbors(&snaps);
    c.bench_function("routine_train_one_batch", |b| b.iter(|| e.train_phase()));
}

fn bench_update_phase(c: &mut Criterion) {
    let (mut e, snaps) = engine();
    e.ingest_neighbors(&snaps);
    c.bench_function("routine_update_genomes", |b| b.iter(|| e.update_phase()));
}

fn bench_full_iteration(c: &mut Criterion) {
    let (mut e, snaps) = engine();
    c.bench_function("cell_full_iteration", |b| {
        b.iter(|| {
            let mut p = Profiler::new();
            e.run_iteration(&snaps, &mut p);
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let (mut e, _) = engine();
    c.bench_function("center_snapshot", |b| b.iter(|| e.snapshot()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gather_phase,
        bench_mutate_phase,
        bench_train_phase,
        bench_update_phase,
        bench_full_iteration,
        bench_snapshot
}
criterion_main!(benches);
