//! The Table III shape at bench scale: sequential grid training vs the
//! virtual-cluster distributed run, across grid sizes.
//!
//! Criterion measures *host* time here (tiny smoke networks keep samples
//! fast); the `repro table3` binary produces the actual Table III artifact
//! with Table-I-scale networks and virtual wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipiz_bench::workload::{digits_data, scaled_config, Scale};
use lipiz_cluster::{SimulatedCluster, SimulationOptions};
use lipiz_core::sequential::SequentialTrainer;

fn bench_sequential_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_grid");
    for &m in &[2usize, 3, 4] {
        let cfg = scaled_config(m, Scale::Smoke);
        let data = digits_data(&cfg);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| {
                let mut t = SequentialTrainer::new(&cfg, |_| data.clone());
                t.run()
            })
        });
    }
    group.finish();
}

fn bench_simulated_cluster_grids(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_cluster_grid");
    for &m in &[2usize, 3, 4] {
        let cfg = scaled_config(m, Scale::Smoke);
        let data = digits_data(&cfg);
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            b.iter(|| {
                let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
                sim.run(&cfg, |_| data.clone())
            })
        });
    }
    group.finish();
}

fn bench_threaded_distributed(c: &mut Criterion) {
    // The real threaded master/slave runtime (protocol overhead included).
    let mut group = c.benchmark_group("threaded_distributed");
    group.sample_size(10);
    let m = 2usize;
    let cfg = scaled_config(m, Scale::Smoke);
    group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
        b.iter(|| {
            lipiz_runtime::driver::run_distributed_report(&cfg, |_, cfg| digits_data(cfg))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sequential_grids, bench_simulated_cluster_grids, bench_threaded_distributed
}
criterion_main!(benches);
