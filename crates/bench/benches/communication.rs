//! Benchmarks of the message-passing substrate: p2p latency, the
//! per-iteration allgather at the three paper grid sizes, and mailbox
//! selective-receive under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lipiz_mpi::{Comm, RecvFrom, Universe};

fn bench_p2p_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2p_round_trip");
    for &bytes in &[64usize, 4096, 1 << 20] {
        group.throughput(Throughput::Bytes(bytes as u64 * 2));
        group.bench_with_input(BenchmarkId::new("bytes", bytes), &bytes, |b, &bytes| {
            b.iter(|| {
                Universe::run(2, |comm: Comm| {
                    let payload: Vec<u8> = vec![7u8; bytes];
                    if comm.rank() == 0 {
                        comm.send(1, 1, &payload);
                        let (_echo, _): (Vec<u8>, usize) = comm.recv(RecvFrom::Rank(1), 2);
                    } else {
                        let (got, _): (Vec<u8>, usize) = comm.recv(RecvFrom::Rank(0), 1);
                        comm.send(0, 2, &got);
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_allgather_grid_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather_snapshot");
    // Genome-shaped payload, scaled down 100x from the paper for sampling.
    let floats = 2840usize;
    for &slaves in &[4usize, 9, 16] {
        group.bench_with_input(BenchmarkId::new("slaves", slaves), &slaves, |b, &slaves| {
            b.iter(|| {
                Universe::run(slaves, |comm: Comm| {
                    let genome = vec![comm.rank() as f32; floats];
                    let all = comm.allgather(&genome);
                    assert_eq!(all.len(), slaves);
                })
            })
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    for &ranks in &[5usize, 17] {
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Universe::run(ranks, |comm: Comm| {
                    for _ in 0..4 {
                        comm.barrier();
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_selective_receive_under_backlog(c: &mut Criterion) {
    // The slave main thread scans past unrelated messages: measure matching
    // cost with a backlog of foreign-tag envelopes queued.
    c.bench_function("selective_recv_with_backlog", |b| {
        b.iter(|| {
            Universe::run(2, |comm: Comm| {
                if comm.rank() == 0 {
                    // 64 messages on tag 1, then the one we want on tag 2.
                    let (v, _): (u32, usize) = comm.recv(RecvFrom::Rank(1), 2);
                    for _ in 0..64 {
                        let (_, _): (u32, usize) = comm.recv(RecvFrom::Rank(1), 1);
                    }
                    v
                } else {
                    for i in 0..64u32 {
                        comm.send(0, 1, &i);
                    }
                    comm.send(0, 2, &99u32);
                    0
                }
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_p2p_round_trip,
        bench_allgather_grid_sizes,
        bench_barrier,
        bench_selective_receive_under_backlog
}
criterion_main!(benches);
