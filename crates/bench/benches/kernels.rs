//! Micro-benchmarks of the numerical substrate: the matrix products the
//! training loop is built from, the metric eigensolver and the wire codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lipiz_metrics::eigen::{sqrtm_psd, SymMat};
use lipiz_mpi::wire::Wire;
use lipiz_tensor::{ops, Matrix, Pool, Rng64};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    // The three shapes of one Table I generator forward pass (batch 100).
    for &(m, k, n) in &[(100usize, 64usize, 256usize), (100, 256, 256), (100, 256, 784)] {
        let mut rng = Rng64::seed_from(1);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| ops::matmul(a, b)),
        );
    }
    group.finish();
}

fn bench_matmul_transposed_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_backprop_shapes");
    let mut rng = Rng64::seed_from(2);
    // Weight-gradient shape: xᵀ·δ for the 256→784 layer.
    let x = rng.uniform_matrix(100, 256, -1.0, 1.0);
    let delta = rng.uniform_matrix(100, 784, -1.0, 1.0);
    group.bench_function("at_b_256x784", |b| b.iter(|| ops::matmul_at_b(&x, &delta)));
    // Input-gradient shape: δ·Wᵀ.
    let w = rng.uniform_matrix(256, 784, -1.0, 1.0);
    group.bench_function("a_bt_100x256", |b| b.iter(|| ops::matmul_a_bt(&delta, &w)));
    group.finish();
}

fn bench_pooled_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_level_parallelism");
    let mut rng = Rng64::seed_from(3);
    let a = rng.uniform_matrix(256, 256, -1.0, 1.0);
    let b = rng.uniform_matrix(256, 784, -1.0, 1.0);
    for workers in [1usize, 2, 4, 8] {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("workers", workers), &pool, |bench, pool| {
            bench.iter(|| ops::matmul_pooled(&a, &b, pool))
        });
    }
    group.finish();
}

fn bench_pooled_backprop_shapes(c: &mut Criterion) {
    // The two transposed gradient products at the paper's heaviest layer
    // (256→784, batch 100), across pool widths — the ROADMAP "parallel
    // scaling of Pool beyond 2 workers" measurement.
    let mut group = c.benchmark_group("pooled_backprop_shapes");
    let mut rng = Rng64::seed_from(5);
    let x = rng.uniform_matrix(100, 256, -1.0, 1.0);
    let delta = rng.uniform_matrix(100, 784, -1.0, 1.0);
    let w = rng.uniform_matrix(256, 784, -1.0, 1.0);
    for workers in [1usize, 2, 4, 8] {
        let pool = Pool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("at_b_256x784_workers", workers),
            &pool,
            |bench, pool| bench.iter(|| ops::matmul_at_b_pooled(&x, &delta, pool)),
        );
        group.bench_with_input(
            BenchmarkId::new("a_bt_100x256_workers", workers),
            &pool,
            |bench, pool| bench.iter(|| ops::matmul_a_bt_pooled(&delta, &w, pool)),
        );
    }
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fid_eigensolver");
    for &d in &[16usize, 64] {
        let mut m = SymMat::zeros(d);
        for i in 0..d {
            for j in 0..=i {
                let v = ((i * 31 + j * 17) as f64 * 0.1).sin();
                m.set(i, j, v);
                m.set(j, i, v);
            }
            m.set(i, i, m.get(i, i) + d as f64); // well-conditioned PSD-ish
        }
        group.bench_with_input(BenchmarkId::new("sqrtm_psd", d), &m, |b, m| {
            b.iter(|| sqrtm_psd(m))
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    // A paper-scale generator genome (~284k parameters).
    let genome: Vec<f32> = (0..283_920).map(|i| i as f32 * 1e-6).collect();
    group.throughput(Throughput::Bytes((genome.len() * 4) as u64));
    group.bench_function("encode_genome", |b| b.iter(|| genome.to_bytes()));
    let bytes = genome.to_bytes();
    group.bench_function("decode_genome", |b| {
        b.iter(|| Vec::<f32>::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

fn bench_batch_gather(c: &mut Criterion) {
    // Row gathering (the batch loader hot path).
    let mut rng = Rng64::seed_from(4);
    let data = rng.uniform_matrix(2000, 784, -1.0, 1.0);
    let idx: Vec<usize> = (0..100).map(|i| (i * 13) % 2000).collect();
    c.bench_function("gather_rows_batch100", |b| b.iter(|| Matrix::gather_rows(&data, &idx)));
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_transposed_variants,
    bench_pooled_matmul,
    bench_pooled_backprop_shapes,
    bench_eigensolver,
    bench_wire_codec,
    bench_batch_gather
);
criterion_main!(benches);
