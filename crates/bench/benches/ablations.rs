//! Ablation benches for the design choices DESIGN.md calls out:
//! loss-mutation mode (Lipizzaner vs Mustangs), neighborhood pattern
//! (the dynamic-grid feature of §III-C), adversary selection strategy,
//! and the communication cost model's sensitivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipiz_bench::workload::{digits_data, scaled_config, Scale};
use lipiz_cluster::CommCost;
use lipiz_core::{
    AdversaryStrategy, CellEngine, CellSnapshot, LossMode, NeighborhoodPattern, Profiler,
};

fn engine_with(cfg: &lipiz_core::TrainConfig) -> (CellEngine, Vec<CellSnapshot>) {
    let mut e = CellEngine::new(0, cfg, digits_data(cfg));
    let n = cfg.subpopulation_size() - 1;
    let snaps: Vec<CellSnapshot> = (0..n).map(|_| e.snapshot()).collect();
    (e, snaps)
}

fn bench_loss_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_loss_mutation");
    for (label, mode) in [
        ("lipizzaner_fixed", LossMode::Fixed(lipiz_core::config::WireGanLoss::Heuristic)),
        ("mustangs_mutate", LossMode::Mutate),
    ] {
        let mut cfg = scaled_config(2, Scale::Smoke);
        cfg.mutation.loss_mode = mode;
        let (mut e, snaps) = engine_with(&cfg);
        group.bench_function(BenchmarkId::new("mode", label), |b| {
            b.iter(|| {
                let mut p = Profiler::new();
                e.run_iteration(&snaps, &mut p);
            })
        });
    }
    group.finish();
}

fn bench_neighborhood_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_neighborhood");
    for (label, pattern) in [
        ("isolated_s1", NeighborhoodPattern::Isolated),
        ("cross_s5", NeighborhoodPattern::Cross5),
        ("moore_s9", NeighborhoodPattern::Moore9),
    ] {
        let mut cfg = scaled_config(2, Scale::Smoke);
        cfg.grid.pattern = pattern;
        let (mut e, snaps) = engine_with(&cfg);
        group.bench_function(BenchmarkId::new("pattern", label), |b| {
            b.iter(|| {
                let mut p = Profiler::new();
                e.run_iteration(&snaps, &mut p);
            })
        });
    }
    group.finish();
}

fn bench_adversary_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_adversary");
    for (label, strategy) in [
        ("tournament2", AdversaryStrategy::Tournament(2)),
        ("all_pairs", AdversaryStrategy::All),
    ] {
        let mut cfg = scaled_config(2, Scale::Smoke);
        cfg.coevolution.adversary = strategy;
        let (mut e, snaps) = engine_with(&cfg);
        group.bench_function(BenchmarkId::new("strategy", label), |b| {
            b.iter(|| {
                let mut p = Profiler::new();
                e.run_iteration(&snaps, &mut p);
            })
        });
    }
    group.finish();
}

fn bench_comm_cost_sensitivity(c: &mut Criterion) {
    // Pure cost-model evaluation: how the allgather estimate scales across
    // latency/bandwidth assumptions (paper-scale snapshot, 16 ranks).
    let mut group = c.benchmark_group("ablation_comm_cost");
    let bytes = 2_200_000usize;
    for (label, cost) in [
        ("cluster_uy", CommCost::cluster_uy()),
        ("10x_latency", CommCost { alpha: 600e-6, beta: CommCost::cluster_uy().beta }),
        (
            "tenth_bandwidth",
            CommCost { alpha: 60e-6, beta: CommCost::cluster_uy().beta * 10.0 },
        ),
    ] {
        group.bench_function(BenchmarkId::new("model", label), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for p in 2..=17 {
                    acc += cost.allgather(p, bytes);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_loss_modes,
        bench_neighborhood_patterns,
        bench_adversary_strategies,
        bench_comm_cost_sensitivity
}
criterion_main!(benches);
