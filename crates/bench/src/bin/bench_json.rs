//! Machine-readable kernel + communication microbenchmarks.
//!
//! Runs the hot-path kernels (the three Table-I matmul shapes, the two
//! backprop products, the pooled variants across worker counts) plus the
//! snapshot-exchange micro-costs, and writes `BENCH_kernels.json` with
//! ns/op per entry. CI runs `--smoke` on every PR and uploads the file as
//! an artifact, so kernel regressions are visible per-change; full runs
//! seed the repo's perf trajectory in the committed JSON.
//!
//! ```text
//! cargo run --release -p lipiz-bench --bin bench-json            # full
//! cargo run --release -p lipiz-bench --bin bench-json -- --smoke
//! cargo run --release -p lipiz-bench --bin bench-json -- --out my.json
//! ```

use lipiz_core::CellSnapshot;
use lipiz_mpi::wire::Wire;
use lipiz_mpi::{Comm, Universe};
use lipiz_nn::mlp::Grads;
use lipiz_nn::{gan, Adam, Discriminator, GanLoss, Generator, NetworkConfig, TrainWorkspace};
use lipiz_runtime::protocol::SnapshotMsg;
use lipiz_tensor::{ops, Pool, Rng64};
use std::hint::black_box;
use std::time::Instant;

/// One measured entry.
struct Entry {
    group: &'static str,
    name: String,
    ns_per_op: f64,
    reps: usize,
}

/// How many timed batches per entry (the reported figure is the *minimum*
/// batch mean, which filters scheduler noise on shared hosts — a single
/// mean can be inflated 2× by a noisy neighbor on a one-core container).
const BATCHES: usize = 5;

/// ns per call of `f`: minimum over [`BATCHES`] batches of `reps` calls
/// each, after one warmup call.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn push(
    entries: &mut Vec<Entry>,
    group: &'static str,
    name: impl Into<String>,
    reps: usize,
    f: impl FnMut(),
) {
    let name = name.into();
    let ns = time_ns(reps, f);
    println!("bench {group}/{name:<40} {:>12.0} ns/op (best of {BATCHES}x{reps})", ns);
    entries.push(Entry { group, name, ns_per_op: ns, reps });
}

fn kernel_benches(entries: &mut Vec<Entry>, reps: usize) {
    let mut rng = Rng64::seed_from(1);
    // The three shapes of one Table I generator forward pass (batch 100).
    for &(m, k, n) in &[(100usize, 64usize, 256usize), (100, 256, 256), (100, 256, 784)] {
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        push(entries, "matmul_serial", format!("{m}x{k}x{n}"), reps, || {
            black_box(ops::matmul(black_box(&a), black_box(&b)));
        });
    }
    // Backprop shapes at the heaviest layer (256→784, batch 100).
    let x = rng.uniform_matrix(100, 256, -1.0, 1.0);
    let delta = rng.uniform_matrix(100, 784, -1.0, 1.0);
    let w = rng.uniform_matrix(256, 784, -1.0, 1.0);
    push(entries, "backprop_serial", "at_b_100x256x784", reps, || {
        black_box(ops::matmul_at_b(black_box(&x), black_box(&delta)));
    });
    push(entries, "backprop_serial", "a_bt_100x784x256", reps, || {
        black_box(ops::matmul_a_bt(black_box(&delta), black_box(&w)));
    });

    // Pooled scaling on the discriminator-sized product (256×256×784) and
    // the two backprop shapes.
    let pa = rng.uniform_matrix(256, 256, -1.0, 1.0);
    let pb = rng.uniform_matrix(256, 784, -1.0, 1.0);
    for workers in [1usize, 2, 4, 8] {
        let pool = Pool::new(workers);
        push(entries, "matmul_pooled_256x256x784", format!("workers_{workers}"), reps, || {
            black_box(ops::matmul_pooled(black_box(&pa), black_box(&pb), &pool));
        });
        push(entries, "at_b_pooled_100x256x784", format!("workers_{workers}"), reps, || {
            black_box(ops::matmul_at_b_pooled(black_box(&x), black_box(&delta), &pool));
        });
        push(entries, "a_bt_pooled_100x784x256", format!("workers_{workers}"), reps, || {
            black_box(ops::matmul_a_bt_pooled(black_box(&delta), black_box(&w), &pool));
        });
    }
}

/// Step-level benchmarks: one full generator / discriminator Adam step at
/// the paper's Table I shapes (batch 100), through the workspace-reusing
/// path the training loop actually runs (zero allocations in steady
/// state), plus the bare Adam update on paper-sized parameter vectors.
/// These shapes are identical in smoke and full mode (only the repetition
/// count differs) so `--check` can compare a smoke run against the
/// committed full-mode baseline.
fn train_step_benches(entries: &mut Vec<Entry>, reps: usize) {
    let cfg = NetworkConfig::paper_mnist();
    let batch = 100usize;
    let mut rng = Rng64::seed_from(3);
    let mut g = Generator::new(&cfg, &mut rng);
    let mut d = Discriminator::new(&cfg, &mut rng);
    let mut adam_g = Adam::new(g.net.param_count());
    let mut adam_d = Adam::new(d.net.param_count());
    let real = rng.uniform_matrix(batch, cfg.data_dim, -0.9, 0.9);
    let fake = rng.uniform_matrix(batch, cfg.data_dim, -0.9, 0.9);
    let z = gan::latent_batch(&mut rng, batch, cfg.latent_dim);
    let mut ws = TrainWorkspace::default();
    let pool = Pool::serial();

    push(entries, "train_step_serial", format!("generator_b{batch}"), reps, || {
        black_box(gan::train_generator_step_ws(
            &mut g,
            &d,
            &mut adam_g,
            black_box(&z),
            2e-4,
            GanLoss::Heuristic,
            &mut ws,
            &pool,
        ));
    });
    push(entries, "train_step_serial", format!("discriminator_b{batch}"), reps, || {
        black_box(gan::train_discriminator_step_ws(
            &mut d,
            &mut adam_d,
            black_box(&real),
            black_box(&fake),
            2e-4,
            &mut ws,
            &pool,
        ));
    });

    // Bare Adam update at both paper parameter widths (G: 64→256→256→784,
    // D: 784→256→256→1). The gradient is fixed; only the update is timed.
    for (name, n) in [
        ("generator_params", g.net.param_count()),
        ("discriminator_params", d.net.param_count()),
    ] {
        let mut net_rng = Rng64::seed_from(5);
        let mut net = if name.starts_with("gen") {
            Generator::new(&cfg, &mut net_rng).net
        } else {
            Discriminator::new(&cfg, &mut net_rng).net
        };
        let mut adam = Adam::new(n);
        let mut grads = Grads::zeros(n);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 17) as f32 - 8.0) * 1e-3;
        }
        push(entries, "adam_step", format!("{name}_{n}"), reps.max(4), || {
            adam.step(&mut net, black_box(&grads), 2e-4);
        });
    }
}

fn communication_benches(entries: &mut Vec<Entry>, reps: usize, smoke: bool) {
    // Paper-scale generator genome unless smoking.
    let genome_len = if smoke { 2_840 } else { 283_920 };
    let snap = CellSnapshot {
        cell: 0,
        gen_genome: vec![0.5; genome_len],
        gen_lr: 2e-4,
        gen_loss: lipiz_nn::GanLoss::Heuristic,
        gen_fitness: 0.0,
        disc_genome: vec![-0.5; genome_len],
        disc_lr: 2e-4,
        disc_fitness: 0.0,
    };
    let mut scratch = Vec::new();
    push(entries, "snapshot", "encode_scratch_reuse", reps.max(10), || {
        scratch.clear();
        SnapshotMsg::encode_snapshot(black_box(&snap), &mut scratch);
        black_box(scratch.len());
    });
    push(entries, "snapshot", "encode_fresh_alloc", reps.max(10), || {
        black_box(SnapshotMsg::from(black_box(&snap)).to_bytes());
    });

    // Generic Wire scratch reuse on a genome-sized payload.
    let genome = vec![0.25f32; genome_len];
    let mut wire_scratch = Vec::new();
    push(entries, "wire", "genome_to_bytes_into", reps.max(10), || {
        black_box(&genome).to_bytes_into(&mut wire_scratch);
        black_box(wire_scratch.len());
    });
    push(entries, "wire", "genome_to_bytes", reps.max(10), || {
        black_box(black_box(&genome).to_bytes());
    });

    // The per-iteration LOCAL allgather at the paper's 3×3 grid size,
    // timed *inside* a resident universe so thread spawn/join cost stays
    // out of the figure (the whole point is catching collective-path
    // regressions, not measuring `Universe::run` setup).
    let slaves = 9usize;
    let floats = if smoke { 284 } else { 28_392 };
    let inner_reps = reps.max(4);
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let per_rank_ns = Universe::run(slaves, move |comm: Comm| {
            let genome = vec![comm.rank() as f32; floats];
            // Warmup round doubles as a barrier so every rank starts hot.
            black_box(comm.allgather(&genome).len());
            let start = Instant::now();
            for _ in 0..inner_reps {
                black_box(comm.allgather(&genome).len());
            }
            start.elapsed().as_nanos() as f64 / inner_reps as f64
        });
        best = best.min(per_rank_ns[0]);
    }
    let name = format!("slaves_{slaves}_floats_{floats}");
    println!("bench allgather/{name:<40} {best:>12.0} ns/op (best of {BATCHES}x{inner_reps})");
    entries.push(Entry { group: "allgather", name, ns_per_op: best, reps: inner_reps });

    overlap_benches(entries, reps);
}

/// `--exchange async` overlap at paper scale: one full iteration — a
/// 9-rank allgather of a paper-sized snapshot plus a ~7 ms train step —
/// with the exchange either *ahead* of the compute (sync: blocking gather,
/// then train) or *behind* it (async: begin the gather, train, then
/// complete it). The gap between the two rows is the exchange time the
/// overlap hides. Same workload in smoke and full mode (only the rep count
/// differs), so `--check` gates this group against the committed baseline.
fn overlap_benches(entries: &mut Vec<Entry>, reps: usize) {
    let slaves = 9usize;
    let floats = 28_392usize;
    // Stand-in for the measured ~7 ms Table-I train step: sleeping (rather
    // than burning the ALU) keeps the figure stable on small CI hosts where
    // nine busy ranks would contend for two cores — the overlap being
    // measured is wait-vs-wait, not FLOPs.
    let train_step = std::time::Duration::from_millis(7);
    let inner_reps = reps.max(2);
    for asynchronous in [false, true] {
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let per_rank_ns = Universe::run(slaves, move |comm: Comm| {
                let payload = vec![comm.rank() as f32; floats].to_bytes();
                // Warmup round doubles as a barrier so every rank starts hot.
                black_box(comm.allgather_bytes(&payload).len());
                if asynchronous {
                    // The runtime's exchange-thread shape: begin on the main
                    // thread, complete on a background thread while the
                    // train step runs.
                    let (job_tx, job_rx) = std::sync::mpsc::channel();
                    let (done_tx, done_rx) = std::sync::mpsc::channel();
                    let worker = comm.clone();
                    let thread = std::thread::spawn(move || {
                        for pending in job_rx {
                            if done_tx.send(worker.allgather_bytes_complete(pending)).is_err() {
                                break;
                            }
                        }
                    });
                    let start = Instant::now();
                    for _ in 0..inner_reps {
                        job_tx
                            .send(comm.allgather_bytes_split(&payload))
                            .expect("worker alive");
                        std::thread::sleep(train_step);
                        black_box(done_rx.recv().expect("worker alive").len());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / inner_reps as f64;
                    drop(job_tx);
                    thread.join().expect("exchange worker");
                    ns
                } else {
                    let start = Instant::now();
                    for _ in 0..inner_reps {
                        black_box(comm.allgather_bytes(&payload).len());
                        std::thread::sleep(train_step);
                    }
                    start.elapsed().as_nanos() as f64 / inner_reps as f64
                }
            });
            best = best.min(per_rank_ns[0]);
        }
        let name = format!(
            "slaves_{slaves}_floats_{floats}_iter_{}",
            if asynchronous { "async" } else { "sync" }
        );
        println!(
            "bench allgather_overlap/{name:<32} {best:>12.0} ns/op (best of {BATCHES}x{inner_reps})"
        );
        entries.push(Entry {
            group: "allgather_overlap",
            name,
            ns_per_op: best,
            reps: inner_reps,
        });
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Groups whose workload depends on `--smoke` (payload sizes differ between
/// modes), so a smoke run cannot be compared against the committed
/// full-mode baseline.
const MODE_DEPENDENT_GROUPS: &[&str] = &["snapshot", "wire", "allgather"];

/// Regression gate: any baseline group slower by more than this factor
/// (geometric mean over matching entries) fails the check.
const CHECK_TOLERANCE: f64 = 1.5;

/// Minimal parser for the file this binary writes (the offline crate set
/// has no serde_json): extracts `(group, name, ns_per_op)` triples from the
/// `results` array.
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"group\":") {
            continue;
        }
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\": ");
            let start = line.find(&tag)? + tag.len();
            let rest = &line[start..];
            if let Some(stripped) = rest.strip_prefix('"') {
                stripped.find('"').map(|end| &stripped[..end])
            } else {
                let end = rest.find([',', '}'])?;
                Some(&rest[..end])
            }
        };
        if let (Some(group), Some(name), Some(ns)) =
            (field("group"), field("name"), field("ns_per_op"))
        {
            if let Ok(ns) = ns.parse::<f64>() {
                out.push((group.to_string(), name.to_string(), ns));
            }
        }
    }
    out
}

/// Compare this run against a committed baseline: for every baseline group
/// with matching `(group, name)` entries and a mode-independent workload,
/// the geometric mean ratio `current / baseline` must stay under
/// [`CHECK_TOLERANCE`]. Returns the offending groups.
fn check_against_baseline(entries: &[Entry], baseline_path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("reading baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    assert!(!baseline.is_empty(), "baseline {baseline_path} holds no entries");
    // group -> (sum of log ratios, count)
    let mut per_group: Vec<(String, f64, usize)> = Vec::new();
    let mut unmatched = 0usize;
    for (group, name, base_ns) in &baseline {
        if MODE_DEPENDENT_GROUPS.contains(&group.as_str()) || *base_ns <= 0.0 {
            continue;
        }
        let Some(cur) = entries.iter().find(|e| e.group == group.as_str() && &e.name == name)
        else {
            // A renamed or deleted entry silently dropping out of the gate
            // would be invisible coverage loss — surface it loudly.
            println!("check WARNING: baseline entry {group}/{name} has no match in this run");
            unmatched += 1;
            continue;
        };
        let ratio = cur.ns_per_op / base_ns;
        match per_group.iter_mut().find(|(g, _, _)| g == group) {
            Some((_, sum, n)) => {
                *sum += ratio.ln();
                *n += 1;
            }
            None => per_group.push((group.clone(), ratio.ln(), 1)),
        }
    }
    let mut offenders = Vec::new();
    for (group, log_sum, n) in per_group {
        let geomean = (log_sum / n as f64).exp();
        let verdict = if geomean > CHECK_TOLERANCE { "REGRESSED" } else { "ok" };
        println!("check {group:<28} {geomean:>6.2}x vs baseline ({n} entries) {verdict}");
        if geomean > CHECK_TOLERANCE {
            offenders.push(format!("{group} ({geomean:.2}x)"));
        }
    }
    if unmatched > 0 {
        offenders.push(format!(
            "{unmatched} baseline entr{} without a match — regenerate BENCH_kernels.json",
            if unmatched == 1 { "y" } else { "ies" }
        ));
    }
    offenders
}

fn write_json(path: &str, entries: &[Entry], smoke: bool) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"lipiz-bench-kernels/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"ns_per_op\": {:.1}, \"reps\": {}}}{}\n",
            json_escape(e.group),
            json_escape(&e.name),
            e.ns_per_op,
            e.reps,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {path} ({} entries)", entries.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let check_path =
        args.iter().position(|a| a == "--check").and_then(|i| args.get(i + 1)).cloned();
    let reps = if smoke { 2 } else { 8 };

    let mut entries = Vec::new();
    kernel_benches(&mut entries, reps);
    train_step_benches(&mut entries, reps);
    communication_benches(&mut entries, reps, smoke);
    write_json(&out_path, &entries, smoke);

    if let Some(baseline) = check_path {
        let offenders = check_against_baseline(&entries, &baseline);
        if !offenders.is_empty() {
            eprintln!(
                "kernel regression vs {baseline}: {} (tolerance {CHECK_TOLERANCE}x)",
                offenders.join(", ")
            );
            std::process::exit(1);
        }
        println!("check passed: no group regressed more than {CHECK_TOLERANCE}x vs {baseline}");
    }
}
