//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # every artifact at Quick scale
//! repro table3 --runs 10    # Table III with ten distributed runs
//! repro table4 --full       # Table IV at Full scale
//! repro scaling --max 6     # beyond-the-paper grids
//! ```

use lipiz_bench::experiments;
use lipiz_bench::workload::Scale;

struct Args {
    target: String,
    scale: Scale,
    runs: usize,
    max_m: usize,
}

fn parse_args() -> Args {
    let mut target = "all".to_string();
    let mut scale = Scale::Quick;
    let mut runs = 3usize;
    let mut max_m = 6usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--full" => scale = Scale::Full,
            "--smoke" => scale = Scale::Smoke,
            "--runs" => {
                i += 1;
                runs = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(runs);
            }
            "--max" => {
                i += 1;
                max_m = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(max_m);
            }
            other if !other.starts_with('-') => target = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    Args { target, scale, runs, max_m }
}

fn main() {
    let args = parse_args();
    let run = |name: &str| args.target == name || args.target == "all";

    println!("lipizzaner-rs reproduction harness (scale: {:?})\n", args.scale);
    if run("table1") {
        println!("{}", experiments::table1());
    }
    if run("table2") {
        println!("{}", experiments::table2());
    }
    if run("fig1") {
        println!("{}", experiments::fig1());
    }
    if run("fig2") {
        println!("{}", experiments::fig2());
    }
    if run("fig3") {
        println!("{}", experiments::fig3());
    }
    if run("table3") {
        println!("{}", experiments::table3(args.scale, args.runs));
    }
    if run("table4") {
        println!("{}", experiments::table4(args.scale));
    }
    if run("fig4") {
        println!("FIG. 4 — ROUTINE TIME COMPARISON (CSV)\n{}", experiments::fig4(args.scale));
    }
    if run("checkpoint") {
        println!("{}", experiments::checkpoint_resume(args.scale));
    }
    if run("faults") {
        println!("{}", experiments::fault_staleness(args.scale));
    }
    if run("async") {
        println!("{}", experiments::async_exchange(args.scale));
    }
    if run("scaling") {
        println!("{}", experiments::scaling_extension(args.scale, args.max_m));
    }
}
