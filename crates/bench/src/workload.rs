//! Experiment workload definitions.

use lipiz_core::{GridConfig, TrainConfig};
use lipiz_data::SynthDigits;
use lipiz_tensor::Matrix;

/// How much of the paper's full workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: Table I networks and batch size, few
    /// iterations/batches, small dataset. Default for `repro`.
    Quick,
    /// Closer to the paper (still hours below the 96-hour budget).
    Full,
    /// Seconds-scale networks for CI smoke tests of the harness itself.
    Smoke,
}

/// The experiment configuration for an `m × m` grid at the given scale.
///
/// At every scale the *algorithm* is identical (same phases, same operator
/// schedule); only iteration counts, batches per iteration and dataset size
/// shrink. The Table I network topology and batch size are preserved for
/// `Quick` and `Full`.
pub fn scaled_config(m: usize, scale: Scale) -> TrainConfig {
    let mut cfg = TrainConfig::paper_table1();
    cfg.grid = GridConfig::square(m);
    match scale {
        Scale::Quick => {
            cfg.coevolution.iterations = 2;
            cfg.coevolution.mixture_every = 2;
            cfg.training.batches_per_iteration = 3;
            cfg.training.dataset_size = 400;
            cfg.training.eval_batch = 50;
        }
        Scale::Full => {
            cfg.coevolution.iterations = 10;
            cfg.coevolution.mixture_every = 5;
            cfg.training.batches_per_iteration = 10;
            cfg.training.dataset_size = 2000;
            cfg.training.eval_batch = 100;
        }
        Scale::Smoke => {
            cfg = TrainConfig::smoke(m);
        }
    }
    cfg
}

/// Build the per-cell dataset for a config: synthetic digit images
/// (deterministic from the config's data seed).
pub fn digits_data(cfg: &TrainConfig) -> Matrix {
    if cfg.network.data_dim == lipiz_data::IMAGE_DIM {
        SynthDigits::generate(cfg.training.dataset_size, cfg.training.data_seed).images
    } else {
        // Non-image dims (smoke scale): deterministic uniform surrogate.
        let mut rng = lipiz_tensor::Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_keeps_table1_networks() {
        let cfg = scaled_config(4, Scale::Quick);
        assert_eq!(cfg.network.latent_dim, 64);
        assert_eq!(cfg.network.hidden_units, 256);
        assert_eq!(cfg.network.data_dim, 784);
        assert_eq!(cfg.training.batch_size, 100);
        assert_eq!(cfg.grid.cells(), 16);
        assert!(cfg.coevolution.iterations < 200);
    }

    #[test]
    fn scales_are_ordered_by_work() {
        let quick = scaled_config(2, Scale::Quick);
        let full = scaled_config(2, Scale::Full);
        assert!(
            full.coevolution.iterations * full.training.batches_per_iteration
                > quick.coevolution.iterations * quick.training.batches_per_iteration
        );
    }

    #[test]
    fn digits_data_matches_config_dim() {
        let cfg = scaled_config(2, Scale::Quick);
        let data = digits_data(&cfg);
        assert_eq!(data.shape(), (400, 784));
        let smoke = scaled_config(2, Scale::Smoke);
        let sdata = digits_data(&smoke);
        assert_eq!(sdata.cols(), smoke.network.data_dim);
    }
}
