//! Plain-text table rendering for the repro harness.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String =
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        out.push_str(&sep);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| format!(" {:<width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Format seconds as minutes with two decimals (the paper reports minutes).
pub fn minutes(seconds: f64) -> String {
    format!("{:.2}", seconds / 60.0)
}

/// Format a float with the given precision.
pub fn fixed(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rows share the same width
        assert_eq!(lines[2].len(), lines[4].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_row_panics() {
        TextTable::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(minutes(90.0), "1.50");
        assert_eq!(fixed(2.4689, 2), "2.47");
    }
}
