//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section (§IV).
//!
//! The `repro` binary is the entry point:
//!
//! ```text
//! cargo run --release -p lipiz-bench --bin repro -- all
//! cargo run --release -p lipiz-bench --bin repro -- table3 --full --runs 10
//! ```
//!
//! | target   | paper artifact | what runs |
//! |----------|----------------|-----------|
//! | `table1` | Table I        | prints the active Table I configuration |
//! | `table2` | Table II       | cores + memory model per grid size |
//! | `table3` | Table III      | sequential baseline vs virtual-cluster distributed runs, speedups |
//! | `table4` | Table IV       | per-routine profile, single-core vs distributed |
//! | `fig1`   | Fig. 1         | toroidal grid + overlapping neighborhoods (ASCII) |
//! | `fig2`   | Fig. 2         | slave state machine |
//! | `fig3`   | Fig. 3         | live master/slave protocol trace (real threaded run) |
//! | `fig4`   | Fig. 4         | routine-time comparison series (CSV) |
//! | `scaling`| extension      | 5×5 and 6×6 beyond the paper |
//!
//! Workload scaling: the paper's full runs take hundreds of single-core
//! *minutes*; [`workload::Scale::Quick`] keeps the exact Table I networks,
//! batch size and algorithm but runs fewer iterations/batches so the whole
//! suite finishes in minutes. Because per-iteration cost is constant across
//! iterations, scaling shape is preserved (see EXPERIMENTS.md).
//!
//! # Example
//!
//! ```
//! use lipiz_bench::workload::{scaled_config, Scale};
//!
//! // Smoke scale keeps the paper's grid shape but shrinks the workload.
//! let cfg = scaled_config(2, Scale::Smoke);
//! assert_eq!(cfg.cells(), 4);
//! let full = scaled_config(3, Scale::Full);
//! assert!(full.coevolution.iterations > cfg.coevolution.iterations);
//! ```

pub mod experiments;
pub mod table;
pub mod workload;
