//! The experiment runners behind each `repro` target.

use crate::table::{fixed, minutes, TextTable};
use crate::workload::{digits_data, scaled_config, Scale};
use lipiz_cluster::{allocation, SimulatedCluster, SimulationOptions};
use lipiz_core::{Grid, Routine, TrainConfig};
use lipiz_runtime::SlaveState;

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

// ---------------------------------------------------------------- Table I

/// Render the Table I parameter settings from the live configuration
/// (asserting the defaults actually carry the paper's values).
pub fn table1() -> String {
    let cfg = TrainConfig::paper_table1();
    let mut t = TextTable::new(
        "TABLE I — PARAMETERS SETTINGS OF THE TRAINED GANS",
        &["parameter", "value"],
    );
    let rows: Vec<(String, String)> = vec![
        ("Network type".into(), "MLP".into()),
        ("Input neurons".into(), cfg.network.latent_dim.to_string()),
        ("Number of hidden layers".into(), cfg.network.hidden_layers.to_string()),
        ("Neurons per hidden layer".into(), cfg.network.hidden_units.to_string()),
        ("Output neurons".into(), cfg.network.data_dim.to_string()),
        ("Activation function".into(), "tanh".into()),
        ("Iterations".into(), cfg.coevolution.iterations.to_string()),
        ("Population size per cell".into(), cfg.coevolution.population_per_cell.to_string()),
        ("Tournament size".into(), cfg.coevolution.tournament_size.to_string()),
        ("Grid size".into(), "2x2 to 4x4".into()),
        ("Mixture mutation scale".into(), format!("{}", cfg.coevolution.mixture_sigma)),
        ("Optimizer".into(), "Adam".into()),
        ("Initial learning rate".into(), format!("{}", cfg.mutation.initial_lr)),
        ("Mutation rate".into(), format!("{}", cfg.mutation.rate)),
        ("Mutation probability".into(), format!("{}", cfg.mutation.probability)),
        ("Batch size".into(), cfg.training.batch_size.to_string()),
        ("Skip N disc. steps".into(), cfg.training.skip_disc_steps.to_string()),
    ];
    for (k, v) in rows {
        t.row(&[k, v]);
    }
    t.render()
}

// --------------------------------------------------------------- Table II

/// One Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Grid side m.
    pub m: usize,
    /// Cores = m² + 1.
    pub cores: usize,
    /// Modeled job memory (MB) at paper scale (60k-sample dataset).
    pub memory_mb: usize,
}

/// Compute the Table II resource rows from the allocation model.
pub fn table2_rows() -> Vec<Table2Row> {
    (2..=4)
        .map(|m| {
            let mut cfg = TrainConfig::paper_table1();
            cfg.grid = lipiz_core::GridConfig::square(m);
            Table2Row {
                m,
                cores: cfg.cells() + 1,
                memory_mb: allocation::estimate_job_memory_mb(&cfg),
            }
        })
        .collect()
}

/// Render Table II.
pub fn table2() -> String {
    let mut t = TextTable::new(
        "TABLE II — RESOURCES USED ON EACH EXECUTION (modeled)",
        &["parameter", "2x2", "3x3", "4x4"],
    );
    let rows = table2_rows();
    t.row(&[
        "# cores".into(),
        rows[0].cores.to_string(),
        rows[1].cores.to_string(),
        rows[2].cores.to_string(),
    ]);
    t.row(&[
        "memory (MB)".into(),
        rows[0].memory_mb.to_string(),
        rows[1].memory_mb.to_string(),
        rows[2].memory_mb.to_string(),
    ]);
    t.render()
}

// -------------------------------------------------------------- Table III

/// One Table III row: sequential vs distributed execution time + speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Grid side m.
    pub m: usize,
    /// Sequential (single-core) seconds.
    pub seq_seconds: f64,
    /// Mean distributed (virtual-cluster) seconds over the runs.
    pub dist_mean: f64,
    /// Std-dev across runs.
    pub dist_std: f64,
    /// `seq / dist_mean`.
    pub speedup: f64,
}

/// Warm up the allocator/caches so the first timed run is not penalized
/// by one-time process costs (page faults, allocator growth).
fn warm_up() {
    let cfg = scaled_config(2, Scale::Smoke);
    let data = digits_data(&cfg);
    let mut t = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| data.clone());
    t.run_one_iteration();
}

/// Run the Table III experiment: for each grid size, one sequential
/// baseline and `runs` virtual-cluster executions with different
/// best-effort seeds (the paper runs ten).
pub fn run_table3(scale: Scale, runs: usize, grids: &[usize]) -> Vec<Table3Row> {
    warm_up();
    grids
        .iter()
        .map(|&m| {
            let cfg = scaled_config(m, scale);
            let data = digits_data(&cfg);
            // Sequential baseline (real single-core wall time).
            let mut seq =
                lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| data.clone());
            let seq_report = seq.run();
            // Distributed runs on the virtual cluster.
            let walls: Vec<f64> = (0..runs)
                .map(|r| {
                    let sim = SimulatedCluster::cluster_uy(SimulationOptions {
                        run_seed: 1 + r as u64,
                        ..Default::default()
                    });
                    sim.run(&cfg, |_| data.clone()).virtual_wall()
                })
                .collect();
            let (dist_mean, dist_std) = mean_std(&walls);
            Table3Row {
                m,
                seq_seconds: seq_report.wall_seconds,
                dist_mean,
                dist_std,
                speedup: seq_report.wall_seconds / dist_mean.max(1e-12),
            }
        })
        .collect()
}

/// Render Table III.
pub fn table3(scale: Scale, runs: usize) -> String {
    let rows = run_table3(scale, runs, &[2, 3, 4]);
    let mut t = TextTable::new(
        &format!(
            "TABLE III — EXECUTION TIMES OF GAN TRAINING (minutes, scaled workload, {runs} runs)"
        ),
        &["grid size", "single core (min)", "distributed (min)", "speedup"],
    );
    for r in &rows {
        t.row(&[
            format!("{0}x{0}", r.m),
            minutes(r.seq_seconds),
            format!("{}±{}", minutes(r.dist_mean), minutes(r.dist_std)),
            fixed(r.speedup, 2),
        ]);
    }
    t.render()
}

// --------------------------------------------------------------- Table IV

/// One Table IV row: per-routine single-core vs distributed time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Routine name.
    pub routine: String,
    /// Single-core seconds (whole grid).
    pub single: f64,
    /// Distributed per-rank mean seconds.
    pub distributed: f64,
    /// Acceleration: reduction w.r.t. single core, percent.
    pub acceleration_pct: f64,
    /// Speedup: `single / distributed`.
    pub speedup: f64,
}

/// Profile data for Table IV / Fig. 4 at grid size `m`.
pub fn run_table4(scale: Scale, m: usize) -> Vec<Table4Row> {
    warm_up();
    let cfg = scaled_config(m, scale);
    let data = digits_data(&cfg);
    let mut seq = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| data.clone());
    let seq_report = seq.run();
    let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());
    let sim_outcome = sim.run(&cfg, |_| data.clone());

    let mut rows: Vec<Table4Row> =
        [Routine::Gather, Routine::Train, Routine::UpdateGenomes, Routine::Mutate]
            .iter()
            .map(|r| {
                let single = seq_report.profile.seconds(*r);
                let dist = sim_outcome.report.profile.seconds(*r);
                Table4Row {
                    routine: r.name().to_string(),
                    single,
                    distributed: dist,
                    acceleration_pct: if single > 0.0 {
                        (1.0 - dist / single) * 100.0
                    } else {
                        0.0
                    },
                    speedup: single / dist.max(1e-12),
                }
            })
            .collect();
    let single_total: f64 = rows.iter().map(|r| r.single).sum();
    let dist_total: f64 = rows.iter().map(|r| r.distributed).sum();
    rows.push(Table4Row {
        routine: "overall".into(),
        single: single_total,
        distributed: dist_total,
        acceleration_pct: (1.0 - dist_total / single_total.max(1e-12)) * 100.0,
        speedup: single_total / dist_total.max(1e-12),
    });
    rows
}

/// Render Table IV.
pub fn table4(scale: Scale) -> String {
    let rows = run_table4(scale, 4);
    let mut t = TextTable::new(
        "TABLE IV — PROFILING OF EXECUTION TIMES (4x4 grid, scaled workload, minutes)",
        &["routine", "single core", "distributed", "acceleration", "speedup"],
    );
    for r in &rows {
        t.row(&[
            r.routine.clone(),
            minutes(r.single),
            minutes(r.distributed),
            format!("{:.1}%", r.acceleration_pct),
            fixed(r.speedup, 2),
        ]);
    }
    t.render()
}

/// Fig. 4 as a CSV series (one bar group per routine).
pub fn fig4(scale: Scale) -> String {
    let rows = run_table4(scale, 4);
    let mut out = String::from("routine,single_core_seconds,distributed_seconds\n");
    for r in rows.iter().filter(|r| r.routine != "overall") {
        out.push_str(&format!("{},{:.4},{:.4}\n", r.routine, r.single, r.distributed));
    }
    out
}

// ----------------------------------------------------------- Figures 1–3

/// Fig. 1: the toroidal grid with two overlapping neighborhoods.
pub fn fig1() -> String {
    let grid = Grid::square(4);
    let mut out =
        String::from("FIG. 1 — 4x4 toroidal grid; C = center, n = neighborhood member\n\n");
    let n11 = grid.index(1, 1);
    out.push_str(&format!("Neighborhood N(1,1) (cell {n11}):\n"));
    out.push_str(&grid.render_neighborhood(n11));
    let n13 = grid.index(1, 3);
    out.push_str(&format!("\nNeighborhood N(1,3) (cell {n13}, wraps the torus):\n"));
    out.push_str(&grid.render_neighborhood(n13));
    out.push_str(&format!(
        "\nOverlap: updates to cell {} propagate to cells {:?}\n",
        grid.index(1, 2),
        grid.overlapping(grid.index(1, 2))
    ));
    out
}

/// Fig. 2: slave state machine.
pub fn fig2() -> String {
    format!("FIG. 2 — SLAVE STATES AND TRANSITIONS\n\n{}", SlaveState::render_machine())
}

/// Fig. 3: live protocol trace from a real threaded master/slave run.
pub fn fig3() -> String {
    let cfg = scaled_config(2, Scale::Smoke);
    let outcome = lipiz_runtime::driver::run_distributed(
        &cfg,
        |cell, cfg| {
            let _ = cell;
            let mut rng = lipiz_tensor::Rng64::seed_from(cfg.training.data_seed);
            rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
        },
        lipiz_runtime::DistributedOptions {
            heartbeat_interval: std::time::Duration::from_millis(5),
            ..lipiz_runtime::DistributedOptions::default()
        },
    );
    let mut out =
        String::from("FIG. 3 — MASTER/SLAVE FLOW (live trace of a real threaded run)\n\n");
    out.push_str("1. slaves -> master: node announcements\n");
    for a in &outcome.announcements {
        out.push_str(&format!("   rank {} on {}\n", a.rank, a.node_name));
    }
    out.push_str("2. master -> slaves: run-task messages (config + cell assignment)\n");
    out.push_str(&format!(
        "3. heartbeat thread: {} monitoring rounds, any delayed: {}\n",
        outcome.heartbeat.len(),
        outcome.heartbeat.any_delayed()
    ));
    out.push_str(&format!(
        "4. training: {} iterations per slave, LOCAL allgather each iteration\n",
        outcome.report.iterations
    ));
    out.push_str("5. final gather on GLOBAL + reduction at master\n");
    out.push_str(&format!(
        "   best cell: {} (generator fitness {:.4})\n",
        outcome.report.best().cell,
        outcome.report.best().gen_fitness
    ));
    out
}

// ------------------------------------------------------------- Extension

/// Scaling beyond the paper: grids up to `max_m`.
/// Beyond the paper: the checkpoint/restore proof obligation at smoke
/// scale. A sequential run is interrupted at the halfway iteration (its
/// state committed through the async checkpoint writer), restored from the
/// on-disk files, and run to completion — the final ensembles must be
/// bit-identical to the uninterrupted run's, and every per-cell commit
/// must have landed.
pub fn checkpoint_resume(scale: Scale) -> String {
    use lipiz_runtime::checkpoint::{self, CheckpointWriter};

    let mut cfg = scaled_config(2, scale);
    cfg.coevolution.iterations = cfg.coevolution.iterations.max(4);
    let pause_at = cfg.coevolution.iterations / 2;
    let data = digits_data(&cfg);

    let dir = std::env::temp_dir()
        .join("lipiz_repro_checkpoint")
        .join(format!("{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");

    // Uninterrupted reference.
    let mut reference = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| data.clone());
    reference.run();
    let ref_ensembles = reference.ensembles();

    // Interrupted run: checkpoint every iteration, stop at the pause point.
    checkpoint::write_manifest(&dir, &cfg).expect("write manifest");
    let writer = CheckpointWriter::to_dir(&dir, cfg.cells());
    let mut first = lipiz_core::sequential::SequentialTrainer::new(&cfg, |_| data.clone());
    while first.iterations_done() < pause_at {
        first.run_one_iteration();
        for state in first.capture_states() {
            writer.submit(state);
        }
    }
    let commits = writer.finish().expect("checkpoint commits");
    drop(first);

    // Restore from disk and finish.
    let (cut, states) = checkpoint::load_grid_states(&dir, &cfg).expect("load cut");
    let mut resumed =
        lipiz_core::sequential::SequentialTrainer::from_states(&cfg, |_| data.clone(), &states);
    resumed.run();
    let identical = resumed.ensembles() == ref_ensembles;
    let _ = std::fs::remove_dir_all(&dir);

    let mut out =
        String::from("CHECKPOINT/RESUME — deterministic restore proof (beyond paper)\n\n");
    out.push_str(&format!(
        "  grid 2x2, {} iterations, interrupted after {pause_at} (cut restored at {cut})\n",
        cfg.coevolution.iterations
    ));
    out.push_str(&format!(
        "  async writer commits: {commits} (4 cells x {pause_at} iterations)\n"
    ));
    out.push_str(&format!(
        "  resumed ensembles vs uninterrupted: {}\n",
        if identical { "BIT-IDENTICAL" } else { "MISMATCH" }
    ));
    assert!(identical, "resumed ensembles diverged from the uninterrupted run");
    assert_eq!(commits as usize, 4 * pause_at, "missing checkpoint commits");
    out
}

/// Beyond the paper: staleness vs quality under in-flight rank
/// replacement. One rank is scripted to die halfway through training; the
/// run is replayed at increasing staleness bounds (the replacement rejoins
/// the exchange `max_stale` rounds after the kill, catching up solo
/// against the frozen death-frame). Each degraded run is a pure function
/// of (seed, fault plan): every row is produced twice and must replay to
/// byte-identical ensembles.
pub fn fault_staleness(scale: Scale) -> String {
    let mut cfg = scaled_config(2, scale);
    cfg.coevolution.iterations = cfg.coevolution.iterations.max(6);
    let data = digits_data(&cfg);
    let kill = cfg.coevolution.iterations / 2;
    let victim_cell = 2usize; // world rank 3
    let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());

    let healthy = sim.run(&cfg, |_| data.clone());
    let mut t = TextTable::new(
        &format!(
            "FAULT TOLERANCE — STALENESS vs QUALITY (2x2 grid, rank {} killed at iteration {kill})",
            victim_cell + 1
        ),
        &["max stale", "rejoin round", "victim G fitness", "best G fitness", "replay"],
    );
    t.row(&[
        "0 (no fault)".into(),
        "-".into(),
        fixed(healthy.report.cells[victim_cell].gen_fitness, 4),
        fixed(healthy.report.best().gen_fitness, 4),
        "identical".into(),
    ]);
    for max_stale in 1..=3usize {
        let faulted =
            cfg.clone().with_fault_plan(format!("kill:{}@{kill}", victim_cell + 1), max_stale);
        let a = sim.run(&faulted, |_| data.clone());
        let b = sim.run(&faulted, |_| data.clone());
        let replay = if a.ensembles == b.ensembles { "identical" } else { "DIVERGED" };
        t.row(&[
            max_stale.to_string(),
            (kill + max_stale).to_string(),
            fixed(a.report.cells[victim_cell].gen_fitness, 4),
            fixed(a.report.best().gen_fitness, 4),
            replay.into(),
        ]);
    }
    t.render()
}

/// Beyond the paper: the overlapped (`--exchange async`) neighbor exchange
/// vs the paper's synchronous gather. Async trains iteration `i` against
/// the completed generation-`i-1` frame, so the exchange hides behind
/// compute: the virtual cluster reports how much gather time the overlap
/// removes, and every configuration is run twice and must replay to
/// byte-identical ensembles (the relaxation is structural, not a race). A
/// final row composes async with an in-flight rank replacement — the dead
/// rank's staleness budget counts on top of the pipeline's structural lag
/// of one round.
pub fn async_exchange(scale: Scale) -> String {
    let mut cfg = scaled_config(2, scale);
    cfg.coevolution.iterations = cfg.coevolution.iterations.max(6);
    let data = digits_data(&cfg);
    let kill = cfg.coevolution.iterations / 2;
    let sim = SimulatedCluster::cluster_uy(SimulationOptions::default());

    let mut t = TextTable::new(
        "ASYNC EXCHANGE — OVERLAP vs QUALITY (2x2 grid)",
        &["exchange", "fault", "gather (s)", "virtual wall (s)", "best G fitness", "replay"],
    );
    let async_cfg = cfg.clone().with_exchange(lipiz_core::ExchangeMode::Async);
    let fault_plan = format!("kill:3@{kill}");
    let faulted_async = async_cfg.clone().with_fault_plan(&fault_plan, 1);
    let runs: [(&str, &str, &TrainConfig); 3] = [
        ("sync", "none", &cfg),
        ("async", "none", &async_cfg),
        ("async", &format!("kill rank 3 @ {kill}"), &faulted_async),
    ];
    let mut gather = [0.0f64; 3];
    for (i, (exchange, fault, run_cfg)) in runs.iter().enumerate() {
        let a = sim.run(run_cfg, |_| data.clone());
        let b = sim.run(run_cfg, |_| data.clone());
        let replay = if a.ensembles == b.ensembles { "identical" } else { "DIVERGED" };
        assert_eq!(replay, "identical", "{exchange}/{fault} run failed to replay");
        gather[i] = a.comm.allgather_seconds;
        t.row(&[
            (*exchange).into(),
            (*fault).into(),
            fixed(a.comm.allgather_seconds, 3),
            fixed(a.virtual_wall(), 3),
            fixed(a.report.best().gen_fitness, 4),
            replay.into(),
        ]);
    }
    assert!(gather[1] < gather[0], "async gather {} not below sync {}", gather[1], gather[0]);
    t.render()
}

pub fn scaling_extension(scale: Scale, max_m: usize) -> String {
    let grids: Vec<usize> = (2..=max_m).collect();
    let rows = run_table3(scale, 3, &grids);
    let mut t = TextTable::new(
        "SCALING EXTENSION — beyond the paper's 4x4",
        &["grid", "cells", "seq (min)", "dist (min)", "speedup", "efficiency"],
    );
    for r in &rows {
        let p = r.m * r.m;
        t.row(&[
            format!("{0}x{0}", r.m),
            p.to_string(),
            minutes(r.seq_seconds),
            minutes(r.dist_mean),
            fixed(r.speedup, 2),
            fixed(r.speedup / p as f64, 2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_paper_values() {
        let s = table1();
        for needle in ["256", "784", "tanh", "Adam", "0.0002", "0.0001", "100", "200"] {
            assert!(s.contains(needle), "Table I missing {needle}:\n{s}");
        }
    }

    #[test]
    fn table2_rows_match_paper_cores() {
        let rows = table2_rows();
        assert_eq!(rows[0].cores, 5);
        assert_eq!(rows[1].cores, 10);
        assert_eq!(rows[2].cores, 17);
        // Memory grows with the grid and sits in Table II's order of
        // magnitude (thousands of MB at paper scale).
        assert!(rows[0].memory_mb > 500);
        assert!(rows[2].memory_mb > rows[0].memory_mb * 3);
    }

    // NOTE: these two tests validate plumbing (row structure, positive
    // timings), not timing *shape* — at smoke scale with the test harness
    // saturating both host cores, µs-level measurements are too noisy for
    // strict speedup assertions. The shape claims are validated by the
    // serially-run `repro` harness (see EXPERIMENTS.md).
    #[test]
    fn table3_smoke_shape() {
        let rows = run_table3(Scale::Smoke, 2, &[2]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.seq_seconds > 0.0);
        assert!(r.dist_mean > 0.0);
        assert!(r.dist_std >= 0.0);
        assert!(
            r.speedup.is_finite() && r.speedup > 0.3,
            "implausible speedup even under contention: {}",
            r.speedup
        );
    }

    #[test]
    fn table4_smoke_shape() {
        let rows = run_table4(Scale::Smoke, 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.single >= 0.0 && r.distributed >= 0.0, "{}: negative time", r.routine);
            assert!(r.speedup.is_finite(), "{}: bad speedup", r.routine);
        }
        let train = rows.iter().find(|r| r.routine == "train").unwrap();
        assert!(train.single > 0.0, "train must consume time");
        let overall = rows.iter().find(|r| r.routine == "overall").unwrap();
        assert!(overall.single >= rows[1].single, "overall must include train");
    }

    #[test]
    fn figures_render() {
        let f1 = fig1();
        assert!(f1.contains('C') && f1.contains('n'));
        let f2 = fig2();
        assert!(f2.contains("inactive") && f2.contains("finished"));
    }

    #[test]
    fn fig3_runs_live_protocol() {
        let s = fig3();
        assert!(s.contains("node announcements"));
        assert!(s.contains("best cell"));
    }

    #[test]
    fn fault_staleness_rows_replay_identically() {
        let s = fault_staleness(Scale::Smoke);
        assert!(s.contains("no fault"), "missing healthy baseline row:\n{s}");
        assert!(s.contains("identical"), "missing replay verdicts:\n{s}");
        assert!(!s.contains("DIVERGED"), "degraded replay diverged:\n{s}");
    }

    #[test]
    fn mean_std_math() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
