//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (weight init, latent samples,
//! batch shuffles, hyperparameter mutation, tournament draws) pulls from an
//! [`Rng64`] seeded from the experiment seed and the cell's grid coordinates.
//! Determinism is what lets the integration tests assert that the sequential
//! driver, the threaded distributed runtime, and the virtual-time cluster
//! simulator all produce *bit-identical* trained genomes.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Seeded RNG wrapper with the sampling helpers the trainer needs.
///
/// Wraps `rand`'s `StdRng` and adds Box–Muller Gaussian sampling (the offline
/// crate set does not include `rand_distr`).
#[derive(Debug, Clone)]
pub struct Rng64 {
    inner: StdRng,
    /// Cached second output of the last Box–Muller draw.
    spare_gauss: Option<f64>,
}

/// The complete, explicit state of an [`Rng64`] stream.
///
/// Captures the generator words *and* the cached Box–Muller spare — the
/// spare is real state: dropping it would shift every Gaussian draw after a
/// restore by one half-pair. `Rng64::from_state(rng.state())` therefore
/// continues the stream bit-exactly, with no reconstruct-by-replay
/// assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rng64State {
    /// xoshiro256++ state words of the underlying generator.
    pub words: [u64; 4],
    /// Cached second output of the last Box–Muller draw, if any.
    pub spare_gauss: Option<f64>,
}

impl Rng64 {
    /// Construct from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), spare_gauss: None }
    }

    /// Capture the stream's full state (see [`Rng64State`]).
    pub fn state(&self) -> Rng64State {
        Rng64State { words: self.inner.state(), spare_gauss: self.spare_gauss }
    }

    /// Rebuild a stream from a captured [`Rng64::state`]. The restored
    /// stream produces exactly the draws the captured one would have.
    pub fn from_state(state: Rng64State) -> Self {
        Self { inner: StdRng::from_state(state.words), spare_gauss: state.spare_gauss }
    }

    /// Derive a child RNG from this one plus a stream id.
    ///
    /// Used to give each cell / each purpose (init vs. batching vs. mutation)
    /// its own independent stream so adding draws to one does not perturb the
    /// others.
    pub fn derive(&mut self, stream: u64) -> Rng64 {
        // Mix the stream id with fresh entropy from the parent stream using
        // splitmix64 so that nearby stream ids give unrelated child seeds.
        let base = self.inner.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng64::seed_from(splitmix64(base))
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.random_range(lo..hi)
    }

    /// Raw 64-bit draw (for deriving seeds of sub-components).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below(0)");
        self.inner.random_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random::<f64>() < p
    }

    /// Standard normal draw via Box–Muller (mean 0, std 1).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gauss.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln finite.
        let u1 = 1.0 - self.inner.random::<f64>();
        let u2 = self.inner.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation, as `f32`.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        (mean as f64 + std as f64 * self.gaussian()) as f32
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.uniform(lo, hi);
        }
        m
    }

    /// Matrix with i.i.d. normal entries.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        self.fill_normal(&mut m, rows, cols, mean, std);
        m
    }

    /// Fill `m` (reshaped to `rows × cols`, reusing its allocation) with
    /// i.i.d. normal entries — the allocation-free path of
    /// [`Rng64::normal_matrix`], consuming exactly the same draws.
    pub fn fill_normal(
        &mut self,
        m: &mut Matrix,
        rows: usize,
        cols: usize,
        mean: f32,
        std: f32,
    ) {
        m.resize_buffer(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.normal(mean, std);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A shuffled permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// `k` distinct indices drawn uniformly from `0..n` (k ≤ n).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx = Vec::new();
        self.sample_distinct_with(n, k, &mut idx);
        idx
    }

    /// [`Rng64::sample_distinct`] into a recycled buffer (same draws, no
    /// allocation once `out` has capacity `n`). The training loop's
    /// tournament selection calls this every batch.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct_with(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "sample_distinct k > n");
        // Partial Fisher-Yates: O(n) setup is fine at our sizes (n ≤ 25).
        out.clear();
        out.extend(0..n);
        for i in 0..k {
            let j = i + self.below(n - i);
            out.swap(i, j);
        }
        out.truncate(k);
    }
}

/// splitmix64 finalizer: decorrelates sequential seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let va: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_continues_identical_stream() {
        // Snapshot/restore of trainer state relies on cloned RNGs resuming
        // exactly where the original would have.
        let mut a = Rng64::seed_from(77);
        for _ in 0..10 {
            a.gaussian();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.gaussian().to_bits(), b.gaussian().to_bits());
        }
    }

    #[test]
    fn state_round_trip_is_bit_exact() {
        // The checkpoint path: capture mid-stream (with a Box–Muller spare
        // pending) and restore; every subsequent draw must agree bit-for-bit.
        let mut a = Rng64::seed_from(2024);
        for _ in 0..7 {
            a.gaussian(); // odd count leaves a spare cached
        }
        let state = a.state();
        assert!(state.spare_gauss.is_some(), "test must capture a pending spare");
        let mut b = Rng64::from_state(state);
        for _ in 0..64 {
            assert_eq!(a.gaussian().to_bits(), b.gaussian().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.uniform(-1.0, 1.0).to_bits(), b.uniform(-1.0, 1.0).to_bits());
        }
    }

    #[test]
    fn state_without_spare_round_trips() {
        let mut a = Rng64::seed_from(5);
        a.next_u64();
        let mut b = Rng64::from_state(a.state());
        assert_eq!(a.state(), b.state());
        assert_eq!(a.gaussian().to_bits(), b.gaussian().to_bits());
        // Both now carry the same spare.
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn restored_stream_diverges_from_fresh_seed() {
        // A restored stream is *not* a reseed: it continues mid-stream.
        let mut a = Rng64::seed_from(9);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut restored = Rng64::from_state(a.state());
        let mut fresh = Rng64::seed_from(9);
        assert_ne!(restored.next_u64(), fresh.next_u64());
    }

    #[test]
    fn matrix_helpers_are_reproducible() {
        let mut a = Rng64::seed_from(31);
        let mut b = Rng64::seed_from(31);
        let ma = a.uniform_matrix(7, 5, -2.0, 2.0);
        let mb = b.uniform_matrix(7, 5, -2.0, 2.0);
        assert_eq!(ma.as_slice(), mb.as_slice());
        let na = a.normal_matrix(4, 6, 0.5, 0.1);
        let nb = b.normal_matrix(4, 6, 0.5, 0.1);
        assert_eq!(na.as_slice(), nb.as_slice());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng64::seed_from(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Rng64::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Rng64::seed_from(7);
        let mut p = rng.permutation(20);
        p.sort_unstable();
        assert_eq!(p, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_unique_and_bounded() {
        let mut rng = Rng64::seed_from(8);
        let s = rng.sample_distinct(10, 5);
        assert_eq!(s.len(), 5);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 5);
        assert!(s.iter().all(|&i| i < 10));
    }

    #[test]
    fn derive_streams_are_independent() {
        let mut parent1 = Rng64::seed_from(99);
        let mut parent2 = Rng64::seed_from(99);
        let mut c1 = parent1.derive(0);
        let mut c2 = parent2.derive(0);
        // Identical derivations agree...
        assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        // ...but different stream ids diverge.
        let mut parent3 = Rng64::seed_from(99);
        let mut c3 = parent3.derive(1);
        let a: Vec<f32> = (0..8).map(|_| c1.uniform(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..8).map(|_| c3.uniform(0.0, 1.0)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn normal_matrix_shape_and_spread() {
        let mut rng = Rng64::seed_from(10);
        let m = rng.normal_matrix(10, 10, 0.0, 0.5);
        assert_eq!(m.shape(), (10, 10));
        assert!(m.all_finite());
        let spread = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(spread > 0.1 && spread < 4.0);
    }
}
