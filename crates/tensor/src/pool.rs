//! Resident worker pool for intra-rank parallelism.
//!
//! The paper's implementation is two-level parallel: MPI across ranks plus
//! multithreading inside each process (§III-A). [`Pool`] is that inner level.
//! Workers are spawned once and parked on a condvar between jobs, so the
//! per-call cost of a parallel section is one mutex hand-off instead of a
//! `thread::scope` spawn/join cycle — the training loop issues thousands of
//! pooled matrix products per iteration, which made the per-call spawn the
//! dominant overhead.
//!
//! A job is split into chunks that the submitting thread *and* the resident
//! workers claim from a shared counter, so the caller is always one of the
//! workers and `Pool::new(1)` spawns no threads at all and runs everything
//! inline (single-threaded baselines pay zero synchronization cost).
//! Chunks are disjoint, and every kernel built on the pool accumulates
//! per-element in a fixed order, so results are bit-identical for every
//! worker count.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A fixed-width fork/join helper backed by resident threads.
///
/// `Pool::new(1)` (or [`Pool::serial`]) makes every `run_*` call execute
/// inline. Cloning a pool shares the same resident workers; the threads shut
/// down when the last clone is dropped.
///
/// # Fan-out cap
///
/// Splitting a compute-bound kernel across more threads than the host has
/// cores is pure loss: the chunks time-slice on the same cores and pay the
/// hand-off latency on top. [`Pool::new`] therefore caps the *dispatch*
/// fan-out at the host's available parallelism and only spawns as many
/// resident threads as that cap can ever dispatch to (the cap is fixed at
/// construction, so extra threads could never be used). The determinism
/// suites use [`Pool::uncapped`] to exercise the chunked code paths
/// regardless of the host they run on — results are bit-identical either
/// way, only wall-clock differs.
pub struct Pool {
    workers: usize,
    /// Upper bound on chunks per dispatch (host cores for [`Pool::new`],
    /// `workers` for [`Pool::uncapped`]).
    fanout_cap: usize,
    registry: Option<Arc<Registry>>,
}

/// Lifetime-erased fat pointer to the caller's job closure.
///
/// Only ever dereferenced while the submitting call is blocked in
/// [`Pool::execute`], which keeps the closure alive.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));

impl RawJob {
    /// Erase the closure's borrow lifetime. Sound because the pointer is
    /// only dereferenced while the submitting [`Pool::execute`] call (which
    /// borrows the closure) is blocked waiting for the job to retire.
    fn erase(f: &(dyn Fn(usize) + Sync)) -> Self {
        // SAFETY: reference-to-reference transmute only changes the
        // lifetime; layout is identical.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        Self(erased)
    }
}

// SAFETY: the pointee is `Sync` (the bound on every job closure), and the
// submitting thread outlives every dereference (it blocks until the job is
// retired), so sending the pointer to worker threads is sound.
unsafe impl Send for RawJob {}

/// One in-flight job: a chunked closure plus claim/completion bookkeeping.
/// All fields are only touched under the pool mutex.
struct Job {
    func: RawJob,
    next: usize,
    nchunks: usize,
    running: usize,
}

struct State {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitting thread parks here while straggler chunks finish.
    done_cv: Condvar,
}

/// Owns the worker handles; joining happens when the last [`Pool`] clone
/// drops this registry.
struct Registry {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Registry {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock();
    loop {
        if st.shutdown {
            return;
        }
        let claimed = match st.job.as_mut() {
            Some(job) if job.next < job.nchunks => {
                let c = job.next;
                job.next += 1;
                job.running += 1;
                Some((c, job.func))
            }
            _ => None,
        };
        match claimed {
            Some((chunk, func)) => {
                drop(st);
                // SAFETY: see `RawJob` — the submitter keeps the closure
                // alive until the job slot is cleared below.
                unsafe { (*func.0)(chunk) };
                st = shared.state.lock();
                let job = st.job.as_mut().expect("job retired while chunks were running");
                job.running -= 1;
                if job.next == job.nchunks && job.running == 0 {
                    st.job = None;
                    shared.done_cv.notify_all();
                }
            }
            None => shared.work_cv.wait(&mut st),
        }
    }
}

impl Pool {
    /// Create a pool that splits work across `workers` threads (min 1),
    /// with the dispatch fan-out capped at the host's core count.
    ///
    /// Spawns `workers - 1` resident threads; the calling thread is always
    /// the remaining worker.
    pub fn new(workers: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_fanout_cap(workers, cores)
    }

    /// Like [`Pool::new`] but without the host-core fan-out cap: every
    /// dispatch splits into up to `workers` chunks even on a smaller host.
    /// Used by the determinism tests (the chunked code paths must be
    /// exercised on any CI machine) and by cross-host benchmarks.
    pub fn uncapped(workers: usize) -> Self {
        Self::with_fanout_cap(workers, workers.max(1))
    }

    fn with_fanout_cap(workers: usize, fanout_cap: usize) -> Self {
        let workers = workers.max(1);
        let fanout_cap = fanout_cap.max(1);
        // Resident threads beyond the fan-out cap could never be handed a
        // chunk (the cap is fixed at construction), so don't spawn them —
        // a Pool::new(8) on a 1-core host runs fully inline with zero
        // threads instead of parking seven forever.
        let spawnable = workers.min(fanout_cap);
        if spawnable == 1 {
            return Self { workers, fanout_cap, registry: None };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..spawnable - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lipiz-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        let registry = Registry { shared, handles: Mutex::new(handles) };
        Self { workers, fanout_cap, registry: Some(Arc::new(registry)) }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(n)
    }

    /// Number of worker threads this pool fans out to.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Effective dispatch width: `workers` clamped to the fan-out cap (the
    /// host's core count for pools built by [`Pool::new`]).
    #[inline]
    pub fn fanout(&self) -> usize {
        self.workers.min(self.fanout_cap)
    }

    /// Run `f(chunk_index)` for every chunk in `0..nchunks`, fanning out to
    /// the resident workers and returning when all chunks are done.
    ///
    /// Runs inline when the pool is serial, the job is a single chunk, or a
    /// job is already in flight on this pool (nested or concurrent submit),
    /// so re-entrant use is safe — just not additionally parallel.
    fn execute(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        let run_inline = || {
            for c in 0..nchunks {
                f(c);
            }
        };
        let Some(registry) = &self.registry else {
            return run_inline();
        };
        if nchunks <= 1 {
            return run_inline();
        }
        let shared = &registry.shared;
        let mut st = shared.state.lock();
        if st.job.is_some() {
            drop(st);
            return run_inline();
        }
        st.job = Some(Job { func: RawJob::erase(f), next: 0, nchunks, running: 0 });
        drop(st);
        shared.work_cv.notify_all();
        // Participate as a worker, then wait out straggler chunks.
        let mut st = shared.state.lock();
        loop {
            let claimed = match st.job.as_mut() {
                Some(job) if job.next < job.nchunks => {
                    let c = job.next;
                    job.next += 1;
                    job.running += 1;
                    Some((c, job.func))
                }
                Some(_) => None,
                None => break,
            };
            match claimed {
                Some((chunk, func)) => {
                    drop(st);
                    // SAFETY: `func` is the closure `f` borrowed above; it
                    // outlives this call frame.
                    unsafe { (*func.0)(chunk) };
                    st = shared.state.lock();
                    let job = st.job.as_mut().expect("job retired while chunks were running");
                    job.running -= 1;
                    if job.next == job.nchunks && job.running == 0 {
                        st.job = None;
                        shared.done_cv.notify_all();
                        break;
                    }
                }
                None => shared.done_cv.wait(&mut st),
            }
        }
    }

    /// Split `rows` rows of a `row_width`-wide output buffer across workers.
    ///
    /// `f(start_row, n_rows, chunk)` receives a disjoint mutable chunk of
    /// `out` covering rows `[start_row, start_row + n_rows)`.
    ///
    /// # Panics
    /// Panics if `out.len() != rows * row_width`.
    pub fn run_rows(
        &self,
        rows: usize,
        row_width: usize,
        out: &mut [f32],
        f: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
    ) {
        self.run_rows_limited(rows, row_width, out, usize::MAX, f);
    }

    /// [`Pool::run_rows`] with an additional ceiling on the number of
    /// chunks — the work-size gate of the pooled kernels: a caller that
    /// knows the job is only worth `max_chunks` ways of parallelism (e.g.
    /// from a flop count) passes it here, and a ceiling of one runs the
    /// whole job inline with zero synchronization.
    pub fn run_rows_limited(
        &self,
        rows: usize,
        row_width: usize,
        out: &mut [f32],
        max_chunks: usize,
        f: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
    ) {
        assert_eq!(out.len(), rows * row_width, "run_rows buffer size");
        let nchunks = self.fanout().min(rows).min(max_chunks.max(1));
        if nchunks <= 1 {
            f(0, rows, out);
            return;
        }
        let bounds = chunk_bounds(rows, nchunks);
        let base = SyncPtr(out.as_mut_ptr());
        self.execute(nchunks, &|c| {
            let (start, take) = bounds(c);
            // SAFETY: chunk row ranges are disjoint and within `out`, so
            // each chunk index maps to a non-overlapping sub-slice.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(
                    base.get().add(start * row_width),
                    take * row_width,
                )
            };
            f(start, take, chunk);
        });
    }

    /// Run `f` over disjoint index ranges covering `0..n` in parallel.
    ///
    /// Useful for read-only sweeps (e.g. evaluating several adversaries).
    pub fn run_ranges(&self, n: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
        let nchunks = self.fanout().min(n);
        if nchunks <= 1 {
            f(0..n);
            return;
        }
        let bounds = chunk_bounds(n, nchunks);
        self.execute(nchunks, &|c| {
            let (start, take) = bounds(c);
            f(start..start + take);
        });
    }
}

/// Shared mutable base pointer for disjoint row chunks.
struct SyncPtr(*mut f32);

impl SyncPtr {
    /// The base pointer (method access keeps closures capturing the whole
    /// `Sync` wrapper rather than the raw field).
    fn get(&self) -> *mut f32 {
        self.0
    }
}
// SAFETY: only used to derive non-overlapping sub-slices (one per chunk
// index), so concurrent access never aliases.
unsafe impl Sync for SyncPtr {}

/// Balanced partition of `n` items into `nchunks` chunks: returns a
/// `chunk_index -> (start, len)` map with the remainder spread over the
/// leading chunks (same layout the scoped pool used).
fn chunk_bounds(n: usize, nchunks: usize) -> impl Fn(usize) -> (usize, usize) + Sync {
    let base = n / nchunks;
    let extra = n % nchunks;
    move |c: usize| {
        let start = c * base + c.min(extra);
        let take = base + usize::from(c < extra);
        (start, take)
    }
}

impl Clone for Pool {
    fn clone(&self) -> Self {
        Self {
            workers: self.workers,
            fanout_cap: self.fanout_cap,
            registry: self.registry.clone(),
        }
    }
}

impl PartialEq for Pool {
    fn eq(&self, other: &Self) -> bool {
        self.workers == other.workers
    }
}

impl Eq for Pool {}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.workers).finish()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        let mut out = vec![0.0; 6];
        pool.run_rows(3, 2, &mut out, &|r0, rows, chunk| {
            for (i, row) in chunk.chunks_exact_mut(2).enumerate() {
                row[0] = (r0 + i) as f32;
                row[1] = rows as f32;
            }
        });
        assert_eq!(out, vec![0.0, 3.0, 1.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn parallel_rows_cover_everything_once() {
        let pool = Pool::uncapped(4);
        let rows = 13;
        let width = 3;
        let mut out = vec![0.0; rows * width];
        pool.run_rows(rows, width, &mut out, &|r0, _rows, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(out[r * width + c], (r + 1) as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn run_ranges_partitions_exactly() {
        let pool = Pool::uncapped(3);
        let hits = AtomicUsize::new(0);
        pool.run_ranges(10, &|range| {
            hits.fetch_add(range.len(), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn more_workers_than_rows() {
        let pool = Pool::uncapped(8);
        let mut out = vec![0.0; 2];
        pool.run_rows(2, 1, &mut out, &|r0, _n, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (r0 + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn zero_rows_is_noop() {
        let pool = Pool::uncapped(2);
        let mut out: Vec<f32> = vec![];
        pool.run_rows(0, 4, &mut out, &|_, _, _| {});
        pool.run_ranges(0, &|r| assert!(r.is_empty()));
    }

    #[test]
    fn resident_workers_survive_many_jobs() {
        // The resident pool must hand off thousands of consecutive jobs
        // without deadlock or lost chunks (the whole point of residency).
        let pool = Pool::uncapped(3);
        let hits = AtomicUsize::new(0);
        for _ in 0..2000 {
            pool.run_ranges(7, &|range| {
                hits.fetch_add(range.len(), Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 7 * 2000);
    }

    #[test]
    fn nested_jobs_run_inline_without_deadlock() {
        let pool = Pool::uncapped(2);
        let hits = AtomicUsize::new(0);
        pool.run_ranges(4, &|outer| {
            // A pooled call from inside a pooled call must not deadlock.
            pool.run_ranges(3, &|inner| {
                hits.fetch_add(outer.len() * inner.len(), Ordering::SeqCst);
            });
        });
        // Σ over outer chunks of (outer_len * 3) = 4 * 3.
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let pool = Pool::uncapped(4);
        let clone = pool.clone();
        assert_eq!(pool, clone);
        let hits = AtomicUsize::new(0);
        clone.run_ranges(9, &|r| {
            hits.fetch_add(r.len(), Ordering::SeqCst);
        });
        drop(clone);
        // Original still works after a clone is dropped.
        pool.run_ranges(9, &|r| {
            hits.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 18);
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in 0..40usize {
            for nchunks in 1..=8usize.min(n.max(1)) {
                let bounds = chunk_bounds(n, nchunks);
                let mut next = 0;
                for c in 0..nchunks {
                    let (start, take) = bounds(c);
                    assert_eq!(start, next, "n={n} nchunks={nchunks} c={c}");
                    next += take;
                }
                assert_eq!(next, n);
            }
        }
    }
}
