//! Scoped worker pool for intra-rank parallelism.
//!
//! The paper's implementation is two-level parallel: MPI across ranks plus
//! multithreading inside each process (§III-A). [`Pool`] is that inner level.
//! It deliberately uses `std::thread::scope` per call instead of a resident
//! pool: the parallel sections here are coarse (whole matrix products), the
//! spawn cost is negligible against them, and scoped threads let us borrow
//! the operands without any `Arc`/channel machinery or unsafe code.

use std::ops::Range;

/// A fixed-width fork/join helper.
///
/// `Pool::new(1)` (or [`Pool::serial`]) makes every `run_*` call execute
/// inline, which keeps single-threaded baselines honest: they pay zero
/// synchronization cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// Create a pool that splits work across `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// Pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(n)
    }

    /// Number of worker threads this pool fans out to.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Split `rows` rows of a `row_width`-wide output buffer across workers.
    ///
    /// `f(start_row, n_rows, chunk)` receives a disjoint mutable chunk of
    /// `out` covering rows `[start_row, start_row + n_rows)`.
    ///
    /// # Panics
    /// Panics if `out.len() != rows * row_width`.
    pub fn run_rows(
        &self,
        rows: usize,
        row_width: usize,
        out: &mut [f32],
        f: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
    ) {
        assert_eq!(out.len(), rows * row_width, "run_rows buffer size");
        if self.workers == 1 || rows <= 1 {
            f(0, rows, out);
            return;
        }
        let nchunks = self.workers.min(rows);
        let base = rows / nchunks;
        let extra = rows % nchunks;
        std::thread::scope(|s| {
            let mut rest = out;
            let mut row0 = 0;
            for c in 0..nchunks {
                let take = base + usize::from(c < extra);
                let (chunk, tail) = rest.split_at_mut(take * row_width);
                rest = tail;
                let start = row0;
                row0 += take;
                s.spawn(move || f(start, take, chunk));
            }
            debug_assert!(rest.is_empty());
        });
    }

    /// Run `f` over disjoint index ranges covering `0..n` in parallel.
    ///
    /// Useful for read-only sweeps (e.g. evaluating several adversaries).
    pub fn run_ranges(&self, n: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
        if self.workers == 1 || n <= 1 {
            f(0..n);
            return;
        }
        let nchunks = self.workers.min(n);
        let base = n / nchunks;
        let extra = n % nchunks;
        std::thread::scope(|s| {
            let mut start = 0;
            for c in 0..nchunks {
                let take = base + usize::from(c < extra);
                let range = start..start + take;
                start += take;
                s.spawn(move || f(range));
            }
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        let mut out = vec![0.0; 6];
        pool.run_rows(3, 2, &mut out, &|r0, rows, chunk| {
            for (i, row) in chunk.chunks_exact_mut(2).enumerate() {
                row[0] = (r0 + i) as f32;
                row[1] = rows as f32;
            }
        });
        assert_eq!(out, vec![0.0, 3.0, 1.0, 3.0, 2.0, 3.0]);
    }

    #[test]
    fn parallel_rows_cover_everything_once() {
        let pool = Pool::new(4);
        let rows = 13;
        let width = 3;
        let mut out = vec![0.0; rows * width];
        pool.run_rows(rows, width, &mut out, &|r0, _rows, chunk| {
            for (i, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                assert_eq!(out[r * width + c], (r + 1) as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn run_ranges_partitions_exactly() {
        let pool = Pool::new(3);
        let hits = AtomicUsize::new(0);
        pool.run_ranges(10, &|range| {
            hits.fetch_add(range.len(), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn more_workers_than_rows() {
        let pool = Pool::new(8);
        let mut out = vec![0.0; 2];
        pool.run_rows(2, 1, &mut out, &|r0, _n, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (r0 + i) as f32;
            }
        });
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn zero_rows_is_noop() {
        let pool = Pool::new(2);
        let mut out: Vec<f32> = vec![];
        pool.run_rows(0, 4, &mut out, &|_, _, _| {});
        pool.run_ranges(0, &|r| assert!(r.is_empty()));
    }
}
