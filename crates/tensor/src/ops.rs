//! Matrix products and elementwise kernels.
//!
//! The three product variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) are exactly the shapes
//! dense-layer backpropagation needs; providing them directly avoids
//! materializing transposed copies in the training hot loop.
//!
//! # Kernel design
//!
//! All three products funnel into one register-blocked kernel over a common
//! canonical form `out[i][j] = Σ_p A'[p][i] · B'[p][j]`, where `A'` is a
//! `k×m` panel and `B'` a `k×n` panel:
//!
//! * `A·B`   — `A'` is the packed transpose of `a`, `B'` is `b` as-is;
//! * `Aᵀ·B`  — both operands are already in canonical layout, zero packing;
//! * `A·Bᵀ`  — both operands are packed transposes.
//!
//! The micro-kernel holds an `MR×NR` accumulator tile in registers and walks
//! the shared dimension `p` innermost, so each `p` step touches one
//! contiguous `MR`-wide segment of `A'` and one `NR`-wide segment of `B'`
//! and performs `MR·NR` independent multiply-adds — a clean FMA chain for
//! LLVM with no data-dependent branches.
//!
//! # Fused epilogues
//!
//! The dense-layer forward pass is `act(x·W + b)`. The fused entry point
//! [`matmul_bias_act_into`] folds the bias add and the activation into the
//! micro-kernel's writeback: the accumulator tile starts at zero (no output
//! load, no `fill_zero` pre-pass), and each element is stored exactly once
//! as `act(acc + bias[j])`. That removes two full passes over the output
//! matrix per layer. Per element the FP sequence is identical to
//! `matmul` → `add_row_vector` → `apply_inplace` (same adds, same scalar
//! activation function, same order), so fused and unfused are bit-equal —
//! property-tested, not assumed.
//!
//! # Scratch reuse
//!
//! Panel packing writes into per-thread recycled buffers instead of fresh
//! allocations, so a steady-state training step performs no heap allocation
//! inside any kernel here.
//!
//! # Determinism
//!
//! Every kernel — serial, blocked, fused, and pooled at any worker count —
//! accumulates each output element in a single `f32` accumulator over `p`
//! in ascending order. Tiling only regroups *independent* elements, so all
//! variants are bit-identical to the naive triple loop; the distributed
//! drivers rely on this to stay byte-identical across worker counts. The
//! AVX2 micro-kernels use separate `vmulps`/`vaddps` — never FMA — for the
//! same reason.

use crate::error::ShapeError;
use crate::matrix::Matrix;
use crate::pool::Pool;
use std::cell::RefCell;

/// Register-tile height (rows of the output micro-tile).
const MR: usize = 4;
/// Register-tile width (columns of the output micro-tile).
const NR: usize = 16;

/// Minimum multiply-add count *per worker* before a pooled product fans a
/// chunk out: below this, the condvar hand-off and the cache traffic of
/// splitting cost more than the chunk saves, so small shapes run inline and
/// mid-sized shapes cap their fan-out (`flops / MIN_MADDS_PER_WORKER`
/// chunks at most).
const MIN_MADDS_PER_WORKER: usize = 1 << 20;

/// How many ways of parallelism a product of `madds` multiply-adds is
/// worth. `1` means "run inline".
#[inline]
fn chunk_limit(madds: usize) -> usize {
    (madds / MIN_MADDS_PER_WORKER).max(1)
}

// ---- activation epilogues ---------------------------------------------------

/// Elementwise activation applied by a fused kernel epilogue.
///
/// This is the tensor-level mirror of the nn crate's activation enum; the
/// nn crate maps onto it so the fused and unfused paths share one scalar
/// implementation per function (bit-equality by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActKind {
    /// Pass-through.
    Identity,
    /// Hyperbolic tangent.
    Tanh,
    /// Numerically stable logistic sigmoid.
    Sigmoid,
    /// Leaky rectified linear unit with the given negative-side slope.
    LeakyRelu(f32),
}

impl ActKind {
    /// Apply the activation to one value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            ActKind::Identity => v,
            ActKind::Tanh => fast_tanh(v),
            ActKind::Sigmoid => sigmoid(v),
            ActKind::LeakyRelu(slope) => {
                if v >= 0.0 {
                    v
                } else {
                    slope * v
                }
            }
        }
    }
}

/// Apply `act` to every element of `xs`, dispatching to the widest kernel
/// the host supports. Bit-identical to an elementwise [`ActKind::apply`]
/// loop — the AVX2 tanh performs the same exactly-rounded operation
/// sequence per lane as the scalar [`fast_tanh`].
pub fn apply_act(act: ActKind, xs: &mut [f32]) {
    match act {
        ActKind::Identity => {}
        ActKind::Tanh => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: the detection macro asserts AVX2 support.
                unsafe { tanh_slice_avx2(xs) };
                return;
            }
            for v in xs {
                *v = fast_tanh(*v);
            }
        }
        ActKind::Sigmoid => {
            for v in xs {
                *v = sigmoid(*v);
            }
        }
        ActKind::LeakyRelu(slope) => {
            for v in xs {
                *v = if *v >= 0.0 { *v } else { slope * *v };
            }
        }
    }
}

// ---- fast tanh --------------------------------------------------------------
//
// tanh(x) = sign(x) · em1 / (em1 + 2),  em1 = e^{2|x|} − 1,
// with e^{2|x|} = 2^y, y = 2·log₂e·|x|, split as 2^k · 2^f
// (k = ⌊y + ½⌋, f = y − k ∈ [−½, ½)) and 2^f − 1 evaluated by a degree-6
// polynomial. The em1 formulation keeps full relative precision near zero
// (where tanh(x) ≈ x), unlike 1 − 2/(e+1).
//
// Every step is an exactly-rounded IEEE operation (mul, add, sub, div,
// floor, integer shifts — never FMA), so the scalar and AVX2 versions are
// bit-identical by construction; a unit test pins that. Inputs with
// |x| ≥ 9 saturate to ±1 (correct to the last f32 bit); NaN propagates
// unchanged — payload included — in both versions.

/// Saturation threshold: tanh(9) rounds to 1.0f32.
const TANH_CLAMP: f32 = 9.0;
/// `2·log₂e` — folds the `2|x|` of the exponent into the base-2 scaling.
const TANH_TWO_LOG2E: f32 = 2.0 * std::f32::consts::LOG2_E;
/// Taylor coefficients of `2^f − 1` (that is, `ln2ⁿ/n!` for n = 1..=6);
/// |f| ≤ ½ keeps the truncation error around one ulp.
const EXP2_C: [f32; 6] = [
    std::f32::consts::LN_2,
    0.240_226_5,
    0.055_504_11,
    0.009_618_129,
    0.001_333_355_8,
    0.000_154_035_3,
];

/// Scalar fast tanh — the reference the AVX2 slice kernel must match
/// bit-for-bit.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let a = f32::from_bits(bits & 0x7FFF_FFFF);
    if a.is_nan() {
        // Propagate NaN (payload and all) like IEEE tanh — a diverged
        // training run must stay visibly poisoned, not saturate to ±1.
        return x;
    }
    let t = if a < TANH_CLAMP {
        let y = a * TANH_TWO_LOG2E;
        let kf = (y + 0.5).floor();
        let f = y - kf;
        let mut p1 = EXP2_C[5];
        p1 = p1 * f + EXP2_C[4];
        p1 = p1 * f + EXP2_C[3];
        p1 = p1 * f + EXP2_C[2];
        p1 = p1 * f + EXP2_C[1];
        p1 = p1 * f + EXP2_C[0];
        p1 *= f;
        let two_k = f32::from_bits(((kf as i32 + 127) as u32) << 23);
        let em1 = two_k * p1 + (two_k - 1.0);
        em1 / (em1 + 2.0)
    } else {
        1.0
    };
    f32::from_bits(t.to_bits() | sign)
}

/// AVX2 tanh over a slice: eight [`fast_tanh`] lanes per iteration, every
/// lane performing the identical exactly-rounded operation sequence.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tanh_slice_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_add_ps, _mm256_and_ps, _mm256_blendv_ps, _mm256_castsi256_ps,
        _mm256_cmp_ps, _mm256_cvtps_epi32, _mm256_div_ps, _mm256_floor_ps, _mm256_loadu_ps,
        _mm256_mul_ps, _mm256_or_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_slli_epi32,
        _mm256_storeu_ps, _mm256_sub_ps, _CMP_LT_OQ, _CMP_UNORD_Q,
    };
    let n = xs.len();
    let lanes = n / 8 * 8;
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x8000_0000u32 as i32));
    let clamp = _mm256_set1_ps(TANH_CLAMP);
    let two_log2e = _mm256_set1_ps(TANH_TWO_LOG2E);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let two = _mm256_set1_ps(2.0);
    let bias127 = _mm256_set1_epi32(127);
    let c = EXP2_C.map(|v| _mm256_set1_ps(v));
    let ptr = xs.as_mut_ptr();
    let mut i = 0;
    while i < lanes {
        let x = _mm256_loadu_ps(ptr.add(i));
        let sign = _mm256_and_ps(x, sign_mask);
        let a = _mm256_and_ps(x, abs_mask);
        let in_range = _mm256_cmp_ps::<_CMP_LT_OQ>(a, clamp);
        let y = _mm256_mul_ps(a, two_log2e);
        let kf = _mm256_floor_ps(_mm256_add_ps(y, half));
        let f = _mm256_sub_ps(y, kf);
        let mut p1 = c[5];
        p1 = _mm256_add_ps(_mm256_mul_ps(p1, f), c[4]);
        p1 = _mm256_add_ps(_mm256_mul_ps(p1, f), c[3]);
        p1 = _mm256_add_ps(_mm256_mul_ps(p1, f), c[2]);
        p1 = _mm256_add_ps(_mm256_mul_ps(p1, f), c[1]);
        p1 = _mm256_add_ps(_mm256_mul_ps(p1, f), c[0]);
        p1 = _mm256_mul_ps(p1, f);
        // 2^k via exponent-field construction (kf is an exact integer, so
        // the nearest-int conversion is exact; out-of-range lanes are
        // blended away below).
        let k = _mm256_cvtps_epi32(kf);
        let two_k = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(k, bias127)));
        let em1 = _mm256_add_ps(_mm256_mul_ps(two_k, p1), _mm256_sub_ps(two_k, one));
        let t_poly = _mm256_div_ps(em1, _mm256_add_ps(em1, two));
        let t = _mm256_blendv_ps(one, t_poly, in_range);
        let result = _mm256_or_ps(t, sign);
        // NaN lanes propagate the input unchanged (payload and all),
        // matching the scalar reference.
        let is_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        _mm256_storeu_ps(ptr.add(i), _mm256_blendv_ps(result, x, is_nan));
        i += 8;
    }
    for v in &mut xs[lanes..] {
        *v = fast_tanh(*v);
    }
}

/// Numerically stable logistic sigmoid (never exponentiates a positive
/// argument).
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

// ---- pack-buffer recycling --------------------------------------------------

thread_local! {
    /// Recycled panel-packing buffers (two: `A·Bᵀ` packs both operands).
    /// Taken out by value while a kernel runs so a re-entrant call can never
    /// alias or panic — it just uses (and re-caches) fresh buffers.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Run `f` with the thread's two recycled packing buffers.
fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
    let (mut a, mut b) = PACK_BUFS.with(|p| p.take());
    let out = f(&mut a, &mut b);
    PACK_BUFS.with(|p| p.replace((a, b)));
    out
}

/// Pack the transpose of `src` into `dst` (a `cols×rows` row-major panel),
/// reusing `dst`'s allocation.
fn pack_transpose_into(src: &Matrix, dst: &mut Vec<f32>) {
    pack_transpose_slice_into(src.as_slice(), src.rows(), src.cols(), dst);
}

/// Pack the transpose of a raw `rows×cols` row-major slice into `dst`,
/// reusing `dst`'s allocation. Cache-blocked so both the read and write
/// sides stay within a few lines.
fn pack_transpose_slice_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    const TB: usize = 32;
    debug_assert_eq!(src.len(), rows * cols);
    dst.resize(rows * cols, 0.0);
    for i0 in (0..rows).step_by(TB) {
        let i1 = (i0 + TB).min(rows);
        for j0 in (0..cols).step_by(TB) {
            let j1 = (j0 + TB).min(cols);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

// ---- plain products ---------------------------------------------------------

/// `out = a · b`, checked. `a: (m,k)`, `b: (k,n)` → `(m,n)`.
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    Ok(out)
}

/// `a · b`, panicking on shape mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    try_matmul(a, b).expect("matmul shape mismatch")
}

/// `out += a · b` for a pre-zeroed or accumulating output.
///
/// # Panics
/// Panics if shapes do not line up.
pub fn matmul_acc_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul out shape");
    let (m, k) = a.shape();
    let n = b.cols();
    with_pack_bufs(|at, _| {
        pack_transpose_into(a, at);
        blocked_tn(k, m, n, at, b.as_slice(), 0, m, out.as_mut_slice());
    });
}

/// `out = a · b`, overwriting `out`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    matmul_acc_into(a, b, out);
}

/// `aᵀ · b`: `a: (k,m)`, `b: (k,n)` → `(m,n)`.
///
/// This is the weight-gradient product `xᵀ · δ` of a dense layer. Both
/// operands are already in the canonical `k×·` layout, so no packing at all.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_at_b_slice_into(a, b, out.as_mut_slice(), &Pool::serial());
    out
}

/// `a · bᵀ`: `a: (m,k)`, `b: (n,k)` → `(m,n)`.
///
/// This is the input-gradient product `δ · Wᵀ` of a dense layer; both
/// operands are packed into canonical `k×·` panels first.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_a_bt_view_into(a, b.as_slice(), b.rows(), &mut out, &Pool::serial());
    out
}

/// Dot product of two equal-length slices (unchecked length in release).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-wide manual unroll: reliable vectorization without unsafe.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

// ---- blocked canonical kernel ----------------------------------------------

/// Canonical blocked product over output rows `[r0, r0 + rows)`:
/// `out[i][j] += Σ_p at[p·m + i] · bp[p·n + j]`.
///
/// `at` is the `k×m` left panel ("A transposed"), `bp` the `k×n` right
/// panel, and `out` the chunk of the output covering exactly the given row
/// range (`rows·n` elements). Accumulates on top of whatever `out` holds.
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn blocked_tn(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    r0: usize,
    rows: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(bp.len(), k * n);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(r0 + rows <= m);
    let wide = have_wide_simd();
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                micro_full_dispatch(wide, k, m, n, at, bp, r0 + i, j, &mut out[i * n..]);
            } else {
                micro_edge(k, m, n, at, bp, r0 + i, mr, j, nr, &mut out[i * n..]);
            }
            j += nr;
        }
        i += mr;
    }
}

/// Fused variant of [`blocked_tn`]: accumulators start at zero (no output
/// load) and every element is stored exactly once as `act(acc + bias[j])`.
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn blocked_tn_fused(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    r0: usize,
    rows: usize,
    out: &mut [f32],
    bias: &[f32],
    act: ActKind,
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(bp.len(), k * n);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert_eq!(bias.len(), n);
    debug_assert!(r0 + rows <= m);
    let wide = have_wide_simd();
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                fused_full_dispatch(
                    wide,
                    k,
                    m,
                    n,
                    at,
                    bp,
                    r0 + i,
                    j,
                    &mut out[i * n..],
                    bias,
                    act,
                );
            } else {
                fused_edge(k, m, n, at, bp, r0 + i, mr, j, nr, &mut out[i * n..], bias, act);
            }
            j += nr;
        }
        i += mr;
    }
}

/// Does the host support the 256-bit micro-kernel? (Cached by the stdlib
/// feature-detection macro; one relaxed atomic load per call.)
#[cfg(target_arch = "x86_64")]
fn have_wide_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86 hosts always take the portable scalar micro-kernel.
#[cfg(not(target_arch = "x86_64"))]
fn have_wide_simd() -> bool {
    false
}

/// Pick the widest micro-kernel the host supports. Both paths perform the
/// identical sequence of individually-rounded IEEE multiplies and adds per
/// output element, so the choice never changes a single bit of the result.
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_full_dispatch(
    wide: bool,
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if wide {
        // SAFETY: `wide` asserts AVX2 support at runtime.
        unsafe { micro_full_avx2(k, m, n, at, bp, gi, j, out_rows) };
        return;
    }
    let _ = wide;
    micro_full(k, m, n, at, bp, gi, j, out_rows);
}

/// Fused-epilogue counterpart of [`micro_full_dispatch`].
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn fused_full_dispatch(
    wide: bool,
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
    bias: &[f32],
    act: ActKind,
) {
    #[cfg(target_arch = "x86_64")]
    // Transcendental epilogues never take the AVX2 tile (calling scalar
    // libm from inside an AVX2 region pays SSE-transition stalls per call;
    // `matmul_bias_act_into` routes them through a vectorized post pass
    // instead, so this arm only exists as the correct fallback for direct
    // kernel users).
    if wide && !matches!(act, ActKind::Tanh | ActKind::Sigmoid) {
        // SAFETY: `wide` asserts AVX2 support at runtime.
        unsafe { fused_full_avx2(k, m, n, at, bp, gi, j, out_rows, bias, act) };
        return;
    }
    let _ = wide;
    fused_full(k, m, n, at, bp, gi, j, out_rows, bias, act);
}

/// AVX2 variant of [`micro_full`]: the 4×16 accumulator tile lives in eight
/// 256-bit registers. Uses separate `vmulps`/`vaddps` — *not* FMA — because
/// fused rounding would break bit-exactness against the scalar kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
unsafe fn micro_full_avx2(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    debug_assert!(gi + MR <= m && j + NR <= n && (MR - 1) * n + j + NR <= out_rows.len());
    debug_assert!(k * m <= at.len() && k * n <= bp.len());
    let out_ptr = out_rows.as_mut_ptr();
    let mut acc = [[_mm256_set1_ps(0.0); 2]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let o = out_ptr.add(r * n + j);
        accr[0] = _mm256_loadu_ps(o);
        accr[1] = _mm256_loadu_ps(o.add(8));
    }
    let at_ptr = at.as_ptr();
    let bp_ptr = bp.as_ptr();
    for p in 0..k {
        let bq = bp_ptr.add(p * n + j);
        let b0 = _mm256_loadu_ps(bq);
        let b1 = _mm256_loadu_ps(bq.add(8));
        let aq = at_ptr.add(p * m + gi);
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*aq.add(r));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(av, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let o = out_ptr.add(r * n + j);
        _mm256_storeu_ps(o, accr[0]);
        _mm256_storeu_ps(o.add(8), accr[1]);
    }
}

/// AVX2 fused micro-kernel: zero-started accumulator tile, then
/// `act(acc + bias)` at writeback. The bias add is one `vaddps` (the same
/// single IEEE add the scalar path performs). Identity and leaky-ReLU
/// epilogues stay vectorized (`vcmpps`/`vblendvps` reproduce the scalar
/// branch exactly, including the NaN case); transcendental epilogues are
/// kept out of this kernel entirely by [`fused_full_dispatch`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
unsafe fn fused_full_avx2(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
    bias: &[f32],
    act: ActKind,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_mul_ps,
        _mm256_set1_ps, _mm256_storeu_ps, _CMP_GE_OQ,
    };
    debug_assert!(gi + MR <= m && j + NR <= n && (MR - 1) * n + j + NR <= out_rows.len());
    debug_assert!(k * m <= at.len() && k * n <= bp.len() && j + NR <= bias.len());
    let out_ptr = out_rows.as_mut_ptr();
    let mut acc = [[_mm256_set1_ps(0.0); 2]; MR];
    let at_ptr = at.as_ptr();
    let bp_ptr = bp.as_ptr();
    for p in 0..k {
        let bq = bp_ptr.add(p * n + j);
        let b0 = _mm256_loadu_ps(bq);
        let b1 = _mm256_loadu_ps(bq.add(8));
        let aq = at_ptr.add(p * m + gi);
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*aq.add(r));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(av, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(av, b1));
        }
    }
    let bias_ptr = bias.as_ptr().add(j);
    let bias0 = _mm256_loadu_ps(bias_ptr);
    let bias1 = _mm256_loadu_ps(bias_ptr.add(8));
    for (r, accr) in acc.iter().enumerate() {
        let o = out_ptr.add(r * n + j);
        let mut v0 = _mm256_add_ps(accr[0], bias0);
        let mut v1 = _mm256_add_ps(accr[1], bias1);
        match act {
            ActKind::Identity => {}
            ActKind::LeakyRelu(slope) => {
                let s = _mm256_set1_ps(slope);
                let zero = _mm256_set1_ps(0.0);
                // Mirrors the scalar `if v >= 0 { v } else { slope * v }`
                // (GE is false for NaN, matching the scalar else-branch).
                let ge0 = _mm256_cmp_ps::<_CMP_GE_OQ>(v0, zero);
                let ge1 = _mm256_cmp_ps::<_CMP_GE_OQ>(v1, zero);
                v0 = _mm256_blendv_ps(_mm256_mul_ps(v0, s), v0, ge0);
                v1 = _mm256_blendv_ps(_mm256_mul_ps(v1, s), v1, ge1);
            }
            // Transcendental epilogues never reach this kernel — the
            // dispatcher keeps them out of the AVX2 region (see
            // `fused_full_dispatch`).
            ActKind::Tanh | ActKind::Sigmoid => {
                debug_assert!(false, "transcendental epilogue dispatched to the AVX2 tile");
            }
        }
        _mm256_storeu_ps(o, v0);
        _mm256_storeu_ps(o.add(8), v1);
    }
}

/// Full `MR×NR` register-tile micro-kernel. `out_rows` starts at the tile's
/// first output row; `gi`/`j` are the global row/column of the tile.
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_full(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out_rows[r * n + j..r * n + j + NR]);
    }
    for p in 0..k {
        let arow = &at[p * m + gi..p * m + gi + MR];
        let brow = &bp[p * n + j..p * n + j + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out_rows[r * n + j..r * n + j + NR].copy_from_slice(accr);
    }
}

/// Scalar fused micro-kernel: zero-started tile, `act(acc + bias)` at store.
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn fused_full(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
    bias: &[f32],
    act: ActKind,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let arow = &at[p * m + gi..p * m + gi + MR];
        let brow = &bp[p * n + j..p * n + j + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    let biasj = &bias[j..j + NR];
    for (r, accr) in acc.iter().enumerate() {
        let orow = &mut out_rows[r * n + j..r * n + j + NR];
        for ((o, &a), &b) in orow.iter_mut().zip(accr).zip(biasj) {
            *o = act.apply(a + b);
        }
    }
}

/// Edge-tile kernel for ragged `mr×nr` remainders; same per-element
/// accumulation order as the full tile (single accumulator, `p` ascending).
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_edge(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    mr: usize,
    j: usize,
    nr: usize,
    out_rows: &mut [f32],
) {
    for r in 0..mr {
        for c in 0..nr {
            let mut s = out_rows[r * n + j + c];
            for p in 0..k {
                s += at[p * m + gi + r] * bp[p * n + j + c];
            }
            out_rows[r * n + j + c] = s;
        }
    }
}

/// Fused edge-tile kernel (zero-started accumulator, epilogue at store).
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn fused_edge(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    mr: usize,
    j: usize,
    nr: usize,
    out_rows: &mut [f32],
    bias: &[f32],
    act: ActKind,
) {
    for r in 0..mr {
        for c in 0..nr {
            let mut s = 0.0f32;
            for p in 0..k {
                s += at[p * m + gi + r] * bp[p * n + j + c];
            }
            out_rows[r * n + j + c] = act.apply(s + bias[j + c]);
        }
    }
}

// ---- fused / view-based products -------------------------------------------

/// `out = act(a · W + bias)` — the fused dense-layer forward step.
///
/// `w` is a row-major `k×n` weight slice (`k = a.cols()`), `bias` has length
/// `n`. `out` is resized to `(a.rows(), n)` reusing its allocation. Bias add
/// and activation happen in the micro-kernel writeback, so the output is
/// touched exactly once; the result is bit-identical to
/// `matmul` → `add_row_vector` → activation for every worker count.
///
/// # Panics
/// Panics if `w.len() != a.cols() * n` or `bias.len() != n`.
pub fn matmul_bias_act_into(
    a: &Matrix,
    w: &[f32],
    n: usize,
    bias: &[f32],
    act: ActKind,
    out: &mut Matrix,
    pool: &Pool,
) {
    let (m, k) = a.shape();
    assert_eq!(w.len(), k * n, "matmul_bias_act weight slice size");
    assert_eq!(bias.len(), n, "matmul_bias_act bias width");
    out.resize_buffer(m, n);
    // Transcendental activations run as a separate cache-warm pass over
    // each chunk instead of inside the micro-kernel: calling scalar libm
    // routines from within an AVX2 region pays SSE-transition stalls per
    // call, and the standalone pass dispatches to the vectorized tanh. The
    // per-element arithmetic is identical either way (store `acc + bias`,
    // then `act` on exactly that value), so the result does not change by
    // a single bit.
    let (store_act, post_act) = match act {
        ActKind::Tanh | ActKind::Sigmoid => (ActKind::Identity, Some(act)),
        other => (other, None),
    };
    with_pack_bufs(|at, _| {
        pack_transpose_into(a, at);
        let limit = chunk_limit(m * k * n);
        pool.run_rows_limited(m, n, out.as_mut_slice(), limit, &|r0, rows, chunk| {
            blocked_tn_fused(k, m, n, at, w, r0, rows, chunk, bias, store_act);
            if let Some(post) = post_act {
                apply_act(post, chunk);
            }
        });
    });
}

/// `out = aᵀ · b` written into a flat `a.cols() × b.cols()` slice — the
/// weight-gradient product, landing directly in its genome-order gradient
/// block (no intermediate matrix, no copy).
///
/// # Panics
/// Panics if the shared dimension or `out.len()` disagree.
pub fn matmul_at_b_slice_into(a: &Matrix, b: &Matrix, out: &mut [f32], pool: &Pool) {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shared dim");
    let (k, m) = a.shape();
    let n = b.cols();
    assert_eq!(out.len(), m * n, "matmul_at_b output size");
    out.fill(0.0);
    let limit = chunk_limit(m * k * n);
    pool.run_rows_limited(m, n, out, limit, &|r0, rows, chunk| {
        blocked_tn(k, m, n, a.as_slice(), b.as_slice(), r0, rows, chunk);
    });
}

/// `out = a · Bᵀ` where `B` is a row-major `b_rows × a.cols()` slice — the
/// input-gradient product `δ · Wᵀ` against a weight block held in flat
/// parameter storage. `out` is resized to `(a.rows(), b_rows)` reusing its
/// allocation.
///
/// # Panics
/// Panics if `b.len() != b_rows * a.cols()`.
pub fn matmul_a_bt_view_into(
    a: &Matrix,
    b: &[f32],
    b_rows: usize,
    out: &mut Matrix,
    pool: &Pool,
) {
    let (m, k) = a.shape();
    assert_eq!(b.len(), b_rows * k, "matmul_a_bt weight slice size");
    let n = b_rows;
    out.resize_buffer(m, n);
    out.fill_zero();
    with_pack_bufs(|at, bt| {
        pack_transpose_into(a, at);
        pack_transpose_slice_into(b, n, k, bt);
        let limit = chunk_limit(m * k * n);
        pool.run_rows_limited(m, n, out.as_mut_slice(), limit, &|r0, rows, chunk| {
            blocked_tn(k, m, n, at, bt, r0, rows, chunk);
        });
    });
}

// ---- pooled products --------------------------------------------------------

/// Parallel `a · b` using `pool` to split the rows of the output across
/// workers. Bit-identical to [`matmul`] for every worker count.
///
/// Falls back to the serial kernel when the effective fan-out is one or the
/// problem is too small to amortize the hand-off cost (see
/// [`MIN_MADDS_PER_WORKER`]: the fan-out is additionally capped so every
/// chunk keeps at least that much work).
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    with_pack_bufs(|at, _| {
        pack_transpose_into(a, at);
        let limit = chunk_limit(m * k * n);
        pool.run_rows_limited(m, n, out.as_mut_slice(), limit, &|r0, rows, chunk| {
            blocked_tn(k, m, n, at, b.as_slice(), r0, rows, chunk);
        });
    });
    out
}

/// Parallel `aᵀ · b` (weight-gradient shape). Bit-identical to
/// [`matmul_at_b`] for every worker count and subject to the same work-size
/// gate as [`matmul_pooled`].
pub fn matmul_at_b_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    matmul_at_b_slice_into(a, b, out.as_mut_slice(), pool);
    out
}

/// Parallel `a · bᵀ` (input-gradient shape). Bit-identical to
/// [`matmul_a_bt`] for every worker count and subject to the same work-size
/// gate as [`matmul_pooled`].
pub fn matmul_a_bt_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shared dim");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    matmul_a_bt_view_into(a, b.as_slice(), b.rows(), &mut out, pool);
    out
}

// ---- elementwise kernels ---------------------------------------------------

/// Elementwise `a + b` (checked).
pub fn try_add(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("add", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    add_assign(&mut out, b);
    Ok(out)
}

/// `a += b` elementwise.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a -= b` elementwise.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// Elementwise `a - b` (panicking).
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    sub_assign(&mut out, b);
    out
}

/// Elementwise Hadamard product `a ⊙ b` (panicking).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard shape");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// `a *= s` for a scalar.
pub fn scale_assign(a: &mut Matrix, s: f32) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// `y += alpha * x` on raw slices (the SGD update primitive).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Add a row vector `bias` (length `cols`) to every row of `a`.
pub fn add_row_vector(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(a.cols(), bias.len(), "add_row_vector width");
    for r in 0..a.rows() {
        for (x, b) in a.row_mut(r).iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng64::seed_from(7);
        let a = rng.uniform_matrix(5, 7, -1.0, 1.0);
        let b = rng.uniform_matrix(7, 3, -1.0, 1.0);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn blocked_matmul_is_bit_exact_vs_naive() {
        // The blocked kernel only regroups independent output elements; each
        // element must accumulate in exactly the naive single-accumulator,
        // ascending-p order, so the results are bit-identical — not close.
        let mut rng = Rng64::seed_from(40);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 2), (4, 16, 16), (7, 33, 19), (37, 23, 65)]
        {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            assert_eq!(
                matmul(&a, &b).as_slice(),
                naive_matmul(&a, &b).as_slice(),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn acc_into_accumulates_on_top() {
        let mut rng = Rng64::seed_from(41);
        let a = rng.uniform_matrix(6, 9, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let mut out = Matrix::full(6, 5, 2.0);
        matmul_acc_into(&a, &b, &mut out);
        let mut expect = Matrix::full(6, 5, 2.0);
        for i in 0..6 {
            for j in 0..5 {
                let mut s = expect[(i, j)];
                for p in 0..9 {
                    s += a[(i, p)] * b[(p, j)];
                }
                expect[(i, j)] = s;
            }
        }
        assert_eq!(out.as_slice(), expect.as_slice());
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(try_matmul(&a, &b).is_err());
    }

    fn naive_matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.rows() {
                    s += a[(p, i)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn naive_matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(j, p)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn at_b_is_bit_exact_vs_naive() {
        let mut rng = Rng64::seed_from(20);
        let a = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 7, -1.0, 1.0);
        assert_eq!(matmul_at_b(&a, &b).as_slice(), naive_matmul_at_b(&a, &b).as_slice());
    }

    #[test]
    fn a_bt_is_bit_exact_vs_naive() {
        let mut rng = Rng64::seed_from(21);
        let a = rng.uniform_matrix(6, 8, -1.0, 1.0);
        let b = rng.uniform_matrix(5, 8, -1.0, 1.0);
        assert_eq!(matmul_a_bt(&a, &b).as_slice(), naive_matmul_a_bt(&a, &b).as_slice());
    }

    /// The fused forward kernel must reproduce the unfused three-step
    /// pipeline bit-for-bit for every activation and for ragged edge tiles.
    #[test]
    fn fused_epilogue_is_bit_exact_vs_unfused() {
        let mut rng = Rng64::seed_from(50);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 2), (4, 16, 16), (7, 33, 19), (23, 11, 37)]
        {
            let a = rng.uniform_matrix(m, k, -2.0, 2.0);
            let w = rng.uniform_matrix(k, n, -1.0, 1.0);
            let bias: Vec<f32> = (0..n).map(|_| rng.uniform(-0.5, 0.5)).collect();
            for act in
                [ActKind::Identity, ActKind::Tanh, ActKind::Sigmoid, ActKind::LeakyRelu(0.2)]
            {
                // Unfused reference: matmul, then bias, then activation.
                let mut expect = matmul(&a, &w);
                add_row_vector(&mut expect, &bias);
                for v in expect.as_mut_slice() {
                    *v = act.apply(*v);
                }
                let mut fused = Matrix::zeros(0, 0);
                matmul_bias_act_into(
                    &a,
                    w.as_slice(),
                    n,
                    &bias,
                    act,
                    &mut fused,
                    &Pool::serial(),
                );
                assert_eq!(fused.shape(), (m, n));
                assert_eq!(
                    fused.as_slice(),
                    expect.as_slice(),
                    "{m}x{k}x{n} {act:?} fused drift"
                );
                // Pooled fused path must agree too.
                let pool = Pool::uncapped(3);
                let mut pooled = Matrix::zeros(0, 0);
                matmul_bias_act_into(&a, w.as_slice(), n, &bias, act, &mut pooled, &pool);
                assert_eq!(pooled.as_slice(), expect.as_slice(), "pooled fused drift");
            }
        }
    }

    #[test]
    fn slice_products_match_matrix_products() {
        let mut rng = Rng64::seed_from(51);
        let x = rng.uniform_matrix(9, 6, -1.0, 1.0);
        let delta = rng.uniform_matrix(9, 4, -1.0, 1.0);
        let w = rng.uniform_matrix(5, 6, -1.0, 1.0);
        // dw into a flat slice == matmul_at_b.
        let mut dw = vec![9.9f32; 6 * 4];
        matmul_at_b_slice_into(&x, &delta, &mut dw, &Pool::serial());
        assert_eq!(&dw, matmul_at_b(&x, &delta).as_slice());
        // dx against a weight view == matmul_a_bt.
        let d2 = rng.uniform_matrix(7, 6, -1.0, 1.0);
        let mut dx = Matrix::zeros(0, 0);
        matmul_a_bt_view_into(&d2, w.as_slice(), 5, &mut dx, &Pool::serial());
        assert_eq!(dx.as_slice(), matmul_a_bt(&d2, &w).as_slice());
    }

    #[test]
    fn pooled_matmul_is_bit_exact_for_any_worker_count() {
        // Determinism, not mere closeness: the distributed drivers assert
        // bit-identical genomes, so the row-partitioned kernel must produce
        // exactly the serial result regardless of pool size or run order.
        let mut rng = Rng64::seed_from(22);
        let a = rng.uniform_matrix(23, 17, -1.0, 1.0);
        let b = rng.uniform_matrix(17, 11, -1.0, 1.0);
        let serial = matmul(&a, &b);
        for workers in 1..=4 {
            let pool = Pool::uncapped(workers);
            for _ in 0..3 {
                let pooled = matmul_pooled(&a, &b, &pool);
                assert_eq!(
                    pooled.as_slice(),
                    serial.as_slice(),
                    "bit drift with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn pooled_backprop_kernels_are_bit_exact() {
        let mut rng = Rng64::seed_from(23);
        let x = rng.uniform_matrix(64, 48, -1.0, 1.0);
        let delta = rng.uniform_matrix(64, 56, -1.0, 1.0);
        let w = rng.uniform_matrix(48, 56, -1.0, 1.0);
        let at_b = matmul_at_b(&x, &delta);
        let a_bt = matmul_a_bt(&delta, &w);
        for workers in 1..=4 {
            let pool = Pool::uncapped(workers);
            assert_eq!(matmul_at_b_pooled(&x, &delta, &pool).as_slice(), at_b.as_slice());
            assert_eq!(matmul_a_bt_pooled(&delta, &w, &pool).as_slice(), a_bt.as_slice());
        }
    }

    #[test]
    fn work_size_gate_keeps_small_products_inline() {
        // A product under the per-worker flop floor must produce the same
        // result through the pooled entry points (the gate is a pure
        // dispatch decision). 8×8×8 = 512 madds is far below the gate.
        let mut rng = Rng64::seed_from(24);
        let a = rng.uniform_matrix(8, 8, -1.0, 1.0);
        let b = rng.uniform_matrix(8, 8, -1.0, 1.0);
        let pool = Pool::uncapped(4);
        assert_eq!(matmul_pooled(&a, &b, &pool).as_slice(), matmul(&a, &b).as_slice());
        assert_eq!(chunk_limit(8 * 8 * 8), 1, "tiny product must stay inline");
        assert!(chunk_limit(100 * 784 * 256) > 1, "paper-scale product may fan out");
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(8);
        let a = rng.uniform_matrix(6, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(6, 5, -1.0, 1.0);
        let fast = matmul_at_b(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(9);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(3, 6, -1.0, 1.0);
        let fast = matmul_a_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn pooled_matmul_matches_serial() {
        let mut rng = Rng64::seed_from(10);
        let a = rng.uniform_matrix(64, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 80, -1.0, 1.0);
        let pool = Pool::uncapped(3);
        let par = matmul_pooled(&a, &b, &pool);
        let ser = matmul(&a, &b);
        assert!(par.max_abs_diff(&ser) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::seed_from(11);
        let a = rng.uniform_matrix(4, 4, -2.0, 2.0);
        let i = Matrix::identity(4);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn zero_rows_in_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let at = Matrix::zeros(4, 0);
        assert_eq!(matmul_at_b(&at, &b).shape(), (0, 3));
    }

    #[test]
    fn fused_with_zero_inner_dim_is_bias_activation() {
        // k = 0: the product contributes nothing; out = act(0 + bias).
        let a = Matrix::zeros(3, 0);
        let w: [f32; 0] = [];
        let bias = [0.5f32, -0.25];
        let mut out = Matrix::zeros(0, 0);
        matmul_bias_act_into(&a, &w, 2, &bias, ActKind::Tanh, &mut out, &Pool::serial());
        assert_eq!(out.shape(), (3, 2));
        for r in 0..3 {
            assert_eq!(out[(r, 0)], ActKind::Tanh.apply(0.5));
            assert_eq!(out[(r, 1)], ActKind::Tanh.apply(-0.25));
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::full(2, 2, 2.0);
        let sum = try_add(&a, &b).unwrap();
        assert_eq!(sum[(1, 1)], 6.0);
        let d = sub(&sum, &b);
        assert!(d.max_abs_diff(&a) < 1e-7);
        let h = hadamard(&a, &b);
        assert_eq!(h[(1, 0)], 6.0);
        let mut s = a.clone();
        scale_assign(&mut s, 0.5);
        assert_eq!(s[(0, 1)], 1.0);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut a = Matrix::zeros(3, 2);
        add_row_vector(&mut a, &[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [1.5, 2.0, 2.5]);
    }

    #[test]
    fn dot_handles_remainder() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b = vec![2.0f32; 7];
        assert_eq!(dot(&a, &b), 2.0 * (0..7).sum::<i32>() as f32);
    }

    #[test]
    fn fast_tanh_is_accurate_and_well_behaved() {
        // Reference through f64 tanh; the approximation must stay within a
        // few f32 ulps everywhere, keep |t| ≤ 1, and be odd.
        let mut rng = Rng64::seed_from(60);
        for _ in 0..20_000 {
            let x = rng.uniform(-12.0, 12.0);
            let t = fast_tanh(x);
            let reference = (x as f64).tanh() as f32;
            let tol = (reference.abs() * 1e-6).max(1e-7);
            assert!(
                (t - reference).abs() <= tol,
                "fast_tanh({x}) = {t} vs {reference} (err {})",
                (t - reference).abs()
            );
            assert!(t.abs() <= 1.0, "fast_tanh({x}) = {t} out of range");
            assert_eq!(fast_tanh(-x).to_bits(), (-t).to_bits(), "odd symmetry at {x}");
        }
        assert_eq!(fast_tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(fast_tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(fast_tanh(40.0), 1.0);
        assert_eq!(fast_tanh(f32::INFINITY), 1.0);
        assert_eq!(fast_tanh(-f32::INFINITY), -1.0);
        // NaN propagates with its exact payload (a diverged run must stay
        // visibly poisoned).
        let nan = f32::from_bits(0x7FC0_1234);
        assert_eq!(fast_tanh(nan).to_bits(), nan.to_bits());
        // Tiny inputs: tanh(x) ≈ x with full relative precision (the em1
        // formulation avoids the 1 − 2/(e+1) cancellation).
        for x in [1e-6f32, 1e-4, -3e-5, 1e-9] {
            let t = fast_tanh(x);
            assert!((t - x).abs() <= x.abs() * 1e-3, "tiny input {x} -> {t}");
        }
    }

    #[test]
    fn vectorized_tanh_matches_scalar_bitwise() {
        // The AVX2 slice kernel must agree with the scalar reference on
        // every lane, for odd lengths (tail path) and edge values.
        let mut rng = Rng64::seed_from(61);
        let mut xs: Vec<f32> = (0..1000).map(|_| rng.uniform(-15.0, 15.0)).collect();
        xs.extend_from_slice(&[
            0.0,
            -0.0,
            TANH_CLAMP,
            -TANH_CLAMP,
            8.999_999,
            1e-30,
            -1e-30,
            f32::MIN_POSITIVE / 2.0, // subnormal
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0xFFC0_5678), // negative NaN with payload
        ]);
        let expect: Vec<u32> = xs.iter().map(|&v| fast_tanh(v).to_bits()).collect();
        apply_act(ActKind::Tanh, &mut xs);
        let got: Vec<u32> = xs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expect, "vector tanh drifted from the scalar reference");
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
