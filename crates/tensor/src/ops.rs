//! Matrix products and elementwise kernels.
//!
//! The three product variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) are exactly the shapes
//! dense-layer backpropagation needs; providing them directly avoids
//! materializing transposed copies in the training hot loop. All products use
//! an i-k-j loop order so the inner loop walks both operands contiguously,
//! which lets LLVM vectorize the FMA chain.

use crate::error::ShapeError;
use crate::matrix::Matrix;
use crate::pool::Pool;

/// `out = a · b`, checked. `a: (m,k)`, `b: (k,n)` → `(m,n)`.
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    Ok(out)
}

/// `a · b`, panicking on shape mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    try_matmul(a, b).expect("matmul shape mismatch")
}

/// `out += a · b` for a pre-zeroed or accumulating output.
///
/// # Panics
/// Panics if shapes do not line up.
pub fn matmul_acc_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul out shape");
    let n = b.cols();
    let k = a.cols();
    let bd = b.as_slice();
    for i in 0..a.rows() {
        let arow = a.row(i);
        // Split borrow: out row is disjoint from a/b.
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a · b`, overwriting `out`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    matmul_acc_into(a, b, out);
}

/// `aᵀ · b`: `a: (k,m)`, `b: (k,n)` → `(m,n)`.
///
/// This is the weight-gradient product `xᵀ · δ` of a dense layer.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shared dim");
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for p in 0..k {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `a · bᵀ`: `a: (m,k)`, `b: (n,k)` → `(m,n)`.
///
/// This is the input-gradient product `δ · Wᵀ` of a dense layer. The inner
/// loop is a dot product of two contiguous rows.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shared dim");
    let m = a.rows();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate().take(n) {
            *o = dot(arow, b.row(j));
        }
    }
    out
}

/// Dot product of two equal-length slices (unchecked length in release).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-wide manual unroll: reliable vectorization without unsafe.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// Parallel `a · b` using `pool` to split the rows of `a` across workers.
///
/// Falls back to the serial kernel when the pool has one worker or the
/// problem is too small to amortize the spawn cost.
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    let flops = a.rows() * a.cols() * b.cols();
    if pool.workers() <= 1 || flops < 64 * 1024 {
        return matmul(a, b);
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let n = b.cols();
    let k = a.cols();
    let bd = b.as_slice();
    let ad = a.as_slice();
    pool.run_rows(a.rows(), n, out.as_mut_slice(), &|r0, rows, chunk| {
        for (local_i, orow) in chunk.chunks_exact_mut(n).enumerate() {
            let i = r0 + local_i;
            debug_assert!(i < r0 + rows);
            let arow = &ad[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    out
}

/// Elementwise `a + b` (checked).
pub fn try_add(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("add", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    add_assign(&mut out, b);
    Ok(out)
}

/// `a += b` elementwise.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a -= b` elementwise.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// Elementwise `a - b` (panicking).
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    sub_assign(&mut out, b);
    out
}

/// Elementwise Hadamard product `a ⊙ b` (panicking).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard shape");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// `a *= s` for a scalar.
pub fn scale_assign(a: &mut Matrix, s: f32) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// `y += alpha * x` on raw slices (the Adam/SGD update primitive).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Add a row vector `bias` (length `cols`) to every row of `a`.
pub fn add_row_vector(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(a.cols(), bias.len(), "add_row_vector width");
    for r in 0..a.rows() {
        for (x, b) in a.row_mut(r).iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng64::seed_from(7);
        let a = rng.uniform_matrix(5, 7, -1.0, 1.0);
        let b = rng.uniform_matrix(7, 3, -1.0, 1.0);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(try_matmul(&a, &b).is_err());
    }

    fn naive_matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.rows() {
                    s += a[(p, i)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn naive_matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(j, p)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn at_b_matches_naive_reference() {
        let mut rng = Rng64::seed_from(20);
        let a = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 7, -1.0, 1.0);
        assert!(matmul_at_b(&a, &b).max_abs_diff(&naive_matmul_at_b(&a, &b)) < 1e-5);
    }

    #[test]
    fn a_bt_matches_naive_reference() {
        let mut rng = Rng64::seed_from(21);
        let a = rng.uniform_matrix(6, 8, -1.0, 1.0);
        let b = rng.uniform_matrix(5, 8, -1.0, 1.0);
        assert!(matmul_a_bt(&a, &b).max_abs_diff(&naive_matmul_a_bt(&a, &b)) < 1e-5);
    }

    #[test]
    fn pooled_matmul_is_bit_exact_for_any_worker_count() {
        // Determinism, not mere closeness: the distributed drivers assert
        // bit-identical genomes, so the row-partitioned kernel must produce
        // exactly the serial result regardless of pool size or run order.
        let mut rng = Rng64::seed_from(22);
        let a = rng.uniform_matrix(23, 17, -1.0, 1.0);
        let b = rng.uniform_matrix(17, 11, -1.0, 1.0);
        let serial = matmul(&a, &b);
        for workers in 1..=4 {
            let pool = Pool::new(workers);
            for _ in 0..3 {
                let pooled = matmul_pooled(&a, &b, &pool);
                assert_eq!(
                    pooled.as_slice(),
                    serial.as_slice(),
                    "bit drift with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(8);
        let a = rng.uniform_matrix(6, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(6, 5, -1.0, 1.0);
        let fast = matmul_at_b(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(9);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(3, 6, -1.0, 1.0);
        let fast = matmul_a_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn pooled_matmul_matches_serial() {
        let mut rng = Rng64::seed_from(10);
        let a = rng.uniform_matrix(64, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 80, -1.0, 1.0);
        let pool = Pool::new(3);
        let par = matmul_pooled(&a, &b, &pool);
        let ser = matmul(&a, &b);
        assert!(par.max_abs_diff(&ser) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::seed_from(11);
        let a = rng.uniform_matrix(4, 4, -2.0, 2.0);
        let i = Matrix::identity(4);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::full(2, 2, 2.0);
        let sum = try_add(&a, &b).unwrap();
        assert_eq!(sum[(1, 1)], 6.0);
        let d = sub(&sum, &b);
        assert!(d.max_abs_diff(&a) < 1e-7);
        let h = hadamard(&a, &b);
        assert_eq!(h[(1, 0)], 6.0);
        let mut s = a.clone();
        scale_assign(&mut s, 0.5);
        assert_eq!(s[(0, 1)], 1.0);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut a = Matrix::zeros(3, 2);
        add_row_vector(&mut a, &[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [1.5, 2.0, 2.5]);
    }

    #[test]
    fn dot_handles_remainder() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b = vec![2.0f32; 7];
        assert_eq!(dot(&a, &b), 2.0 * (0..7).sum::<i32>() as f32);
    }
}
