//! Matrix products and elementwise kernels.
//!
//! The three product variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) are exactly the shapes
//! dense-layer backpropagation needs; providing them directly avoids
//! materializing transposed copies in the training hot loop.
//!
//! # Kernel design
//!
//! All three products funnel into one register-blocked kernel over a common
//! canonical form `out[i][j] = Σ_p A'[p][i] · B'[p][j]`, where `A'` is a
//! `k×m` panel and `B'` a `k×n` panel:
//!
//! * `A·B`   — `A'` is the packed transpose of `a`, `B'` is `b` as-is;
//! * `Aᵀ·B`  — both operands are already in canonical layout, zero packing;
//! * `A·Bᵀ`  — both operands are packed transposes.
//!
//! The micro-kernel holds an `MR×NR` accumulator tile in registers and walks
//! the shared dimension `p` innermost, so each `p` step touches one
//! contiguous `MR`-wide segment of `A'` and one `NR`-wide segment of `B'`
//! and performs `MR·NR` independent multiply-adds — a clean FMA chain for
//! LLVM with no data-dependent branches (the old kernels' `av == 0.0`
//! sparse-skip defeated vectorization on dense operands).
//!
//! # Determinism
//!
//! Every kernel — serial, blocked, and pooled at any worker count —
//! accumulates each output element in a single `f32` accumulator over `p`
//! in ascending order. Tiling only regroups *independent* elements, so all
//! variants are bit-identical to the naive triple loop; the distributed
//! drivers rely on this to stay byte-identical across worker counts.

use crate::error::ShapeError;
use crate::matrix::Matrix;
use crate::pool::Pool;

/// Register-tile height (rows of the output micro-tile).
const MR: usize = 4;
/// Register-tile width (columns of the output micro-tile).
const NR: usize = 16;

/// `out = a · b`, checked. `a: (m,k)`, `b: (k,n)` → `(m,n)`.
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut out);
    Ok(out)
}

/// `a · b`, panicking on shape mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    try_matmul(a, b).expect("matmul shape mismatch")
}

/// `out += a · b` for a pre-zeroed or accumulating output.
///
/// # Panics
/// Panics if shapes do not line up.
pub fn matmul_acc_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul out shape");
    let (m, k) = a.shape();
    let n = b.cols();
    let at = pack_transpose(a);
    blocked_tn(k, m, n, &at, b.as_slice(), 0, m, out.as_mut_slice());
}

/// `out = a · b`, overwriting `out`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    matmul_acc_into(a, b, out);
}

/// `aᵀ · b`: `a: (k,m)`, `b: (k,n)` → `(m,n)`.
///
/// This is the weight-gradient product `xᵀ · δ` of a dense layer. Both
/// operands are already in the canonical `k×·` layout, so no packing at all.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shared dim");
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    blocked_tn(k, m, n, a.as_slice(), b.as_slice(), 0, m, out.as_mut_slice());
    out
}

/// `a · bᵀ`: `a: (m,k)`, `b: (n,k)` → `(m,n)`.
///
/// This is the input-gradient product `δ · Wᵀ` of a dense layer; both
/// operands are packed into canonical `k×·` panels first.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shared dim");
    let (m, k) = a.shape();
    let n = b.rows();
    let at = pack_transpose(a);
    let bt = pack_transpose(b);
    let mut out = Matrix::zeros(m, n);
    blocked_tn(k, m, n, &at, &bt, 0, m, out.as_mut_slice());
    out
}

/// Dot product of two equal-length slices (unchecked length in release).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // 4-wide manual unroll: reliable vectorization without unsafe.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

// ---- blocked canonical kernel ---------------------------------------------

/// Pack the transpose of `src` into a fresh `cols×rows` row-major buffer.
///
/// Cache-blocked so both the read and write sides stay within a few lines.
fn pack_transpose(src: &Matrix) -> Vec<f32> {
    const TB: usize = 32;
    let (r, c) = src.shape();
    let s = src.as_slice();
    let mut dst = vec![0.0f32; r * c];
    for i0 in (0..r).step_by(TB) {
        let i1 = (i0 + TB).min(r);
        for j0 in (0..c).step_by(TB) {
            let j1 = (j0 + TB).min(c);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * r + i] = s[i * c + j];
                }
            }
        }
    }
    dst
}

/// Canonical blocked product over output rows `[r0, r0 + rows)`:
/// `out[i][j] += Σ_p at[p·m + i] · bp[p·n + j]`.
///
/// `at` is the `k×m` left panel ("A transposed"), `bp` the `k×n` right
/// panel, and `out` the chunk of the output covering exactly the given row
/// range (`rows·n` elements). Accumulates on top of whatever `out` holds.
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn blocked_tn(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    r0: usize,
    rows: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(bp.len(), k * n);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(r0 + rows <= m);
    let wide = have_wide_simd();
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            if mr == MR && nr == NR {
                micro_full_dispatch(wide, k, m, n, at, bp, r0 + i, j, &mut out[i * n..]);
            } else {
                micro_edge(k, m, n, at, bp, r0 + i, mr, j, nr, &mut out[i * n..]);
            }
            j += nr;
        }
        i += mr;
    }
}

/// Does the host support the 256-bit micro-kernel? (Cached by the stdlib
/// feature-detection macro; one relaxed atomic load per call.)
#[cfg(target_arch = "x86_64")]
fn have_wide_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86 hosts always take the portable scalar micro-kernel.
#[cfg(not(target_arch = "x86_64"))]
fn have_wide_simd() -> bool {
    false
}

/// Pick the widest micro-kernel the host supports. Both paths perform the
/// identical sequence of individually-rounded IEEE multiplies and adds per
/// output element, so the choice never changes a single bit of the result.
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_full_dispatch(
    wide: bool,
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if wide {
        // SAFETY: `wide` asserts AVX2 support at runtime.
        unsafe { micro_full_avx2(k, m, n, at, bp, gi, j, out_rows) };
        return;
    }
    let _ = wide;
    micro_full(k, m, n, at, bp, gi, j, out_rows);
}

/// AVX2 variant of [`micro_full`]: the 4×16 accumulator tile lives in eight
/// 256-bit registers. Uses separate `vmulps`/`vaddps` — *not* FMA — because
/// fused rounding would break bit-exactness against the scalar kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
unsafe fn micro_full_avx2(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    debug_assert!(gi + MR <= m && j + NR <= n && (MR - 1) * n + j + NR <= out_rows.len());
    debug_assert!(k * m <= at.len() && k * n <= bp.len());
    let out_ptr = out_rows.as_mut_ptr();
    let mut acc = [[_mm256_set1_ps(0.0); 2]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        let o = out_ptr.add(r * n + j);
        accr[0] = _mm256_loadu_ps(o);
        accr[1] = _mm256_loadu_ps(o.add(8));
    }
    let at_ptr = at.as_ptr();
    let bp_ptr = bp.as_ptr();
    for p in 0..k {
        let bq = bp_ptr.add(p * n + j);
        let b0 = _mm256_loadu_ps(bq);
        let b1 = _mm256_loadu_ps(bq.add(8));
        let aq = at_ptr.add(p * m + gi);
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*aq.add(r));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(av, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let o = out_ptr.add(r * n + j);
        _mm256_storeu_ps(o, accr[0]);
        _mm256_storeu_ps(o.add(8), accr[1]);
    }
}

/// Full `MR×NR` register-tile micro-kernel. `out_rows` starts at the tile's
/// first output row; `gi`/`j` are the global row/column of the tile.
#[inline]
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_full(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    j: usize,
    out_rows: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&out_rows[r * n + j..r * n + j + NR]);
    }
    for p in 0..k {
        let arow = &at[p * m + gi..p * m + gi + MR];
        let brow = &bp[p * n + j..p * n + j + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out_rows[r * n + j..r * n + j + NR].copy_from_slice(accr);
    }
}

/// Edge-tile kernel for ragged `mr×nr` remainders; same per-element
/// accumulation order as the full tile (single accumulator, `p` ascending).
#[allow(clippy::too_many_arguments)] // flat panel-geometry signature, kept register-friendly
fn micro_edge(
    k: usize,
    m: usize,
    n: usize,
    at: &[f32],
    bp: &[f32],
    gi: usize,
    mr: usize,
    j: usize,
    nr: usize,
    out_rows: &mut [f32],
) {
    for r in 0..mr {
        for c in 0..nr {
            let mut s = out_rows[r * n + j + c];
            for p in 0..k {
                s += at[p * m + gi + r] * bp[p * n + j + c];
            }
            out_rows[r * n + j + c] = s;
        }
    }
}

// ---- pooled products -------------------------------------------------------

/// Minimum multiply-add count before fanning a product out to the pool.
const POOL_FLOP_THRESHOLD: usize = 64 * 1024;

/// Parallel `a · b` using `pool` to split the rows of the output across
/// workers. Bit-identical to [`matmul`] for every worker count.
///
/// Falls back to the serial kernel when the pool has one worker or the
/// problem is too small to amortize the handoff cost.
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim");
    let (m, k) = a.shape();
    let n = b.cols();
    if pool.workers() <= 1 || m * k * n < POOL_FLOP_THRESHOLD {
        return matmul(a, b);
    }
    let at = pack_transpose(a);
    let mut out = Matrix::zeros(m, n);
    pool.run_rows(m, n, out.as_mut_slice(), &|r0, rows, chunk| {
        blocked_tn(k, m, n, &at, b.as_slice(), r0, rows, chunk);
    });
    out
}

/// Parallel `aᵀ · b` (weight-gradient shape). Bit-identical to
/// [`matmul_at_b`] for every worker count.
pub fn matmul_at_b_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shared dim");
    let (k, m) = a.shape();
    let n = b.cols();
    if pool.workers() <= 1 || m * k * n < POOL_FLOP_THRESHOLD {
        return matmul_at_b(a, b);
    }
    let mut out = Matrix::zeros(m, n);
    pool.run_rows(m, n, out.as_mut_slice(), &|r0, rows, chunk| {
        blocked_tn(k, m, n, a.as_slice(), b.as_slice(), r0, rows, chunk);
    });
    out
}

/// Parallel `a · bᵀ` (input-gradient shape). Bit-identical to
/// [`matmul_a_bt`] for every worker count.
pub fn matmul_a_bt_pooled(a: &Matrix, b: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shared dim");
    let (m, k) = a.shape();
    let n = b.rows();
    if pool.workers() <= 1 || m * k * n < POOL_FLOP_THRESHOLD {
        return matmul_a_bt(a, b);
    }
    let at = pack_transpose(a);
    let bt = pack_transpose(b);
    let mut out = Matrix::zeros(m, n);
    pool.run_rows(m, n, out.as_mut_slice(), &|r0, rows, chunk| {
        blocked_tn(k, m, n, &at, &bt, r0, rows, chunk);
    });
    out
}

// ---- elementwise kernels ---------------------------------------------------

/// Elementwise `a + b` (checked).
pub fn try_add(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("add", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    add_assign(&mut out, b);
    Ok(out)
}

/// `a += b` elementwise.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a -= b` elementwise.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub_assign shape");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// Elementwise `a - b` (panicking).
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = a.clone();
    sub_assign(&mut out, b);
    out
}

/// Elementwise Hadamard product `a ⊙ b` (panicking).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "hadamard shape");
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// `a *= s` for a scalar.
pub fn scale_assign(a: &mut Matrix, s: f32) {
    for x in a.as_mut_slice() {
        *x *= s;
    }
}

/// `y += alpha * x` on raw slices (the Adam/SGD update primitive).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Add a row vector `bias` (length `cols`) to every row of `a`.
pub fn add_row_vector(a: &mut Matrix, bias: &[f32]) {
    assert_eq!(a.cols(), bias.len(), "add_row_vector width");
    for r in 0..a.rows() {
        for (x, b) in a.row_mut(r).iter_mut().zip(bias) {
            *x += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = Rng64::seed_from(7);
        let a = rng.uniform_matrix(5, 7, -1.0, 1.0);
        let b = rng.uniform_matrix(7, 3, -1.0, 1.0);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn blocked_matmul_is_bit_exact_vs_naive() {
        // The blocked kernel only regroups independent output elements; each
        // element must accumulate in exactly the naive single-accumulator,
        // ascending-p order, so the results are bit-identical — not close.
        let mut rng = Rng64::seed_from(40);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 5, 2), (4, 16, 16), (7, 33, 19), (37, 23, 65)]
        {
            let a = rng.uniform_matrix(m, k, -1.0, 1.0);
            let b = rng.uniform_matrix(k, n, -1.0, 1.0);
            assert_eq!(
                matmul(&a, &b).as_slice(),
                naive_matmul(&a, &b).as_slice(),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn acc_into_accumulates_on_top() {
        let mut rng = Rng64::seed_from(41);
        let a = rng.uniform_matrix(6, 9, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let mut out = Matrix::full(6, 5, 2.0);
        matmul_acc_into(&a, &b, &mut out);
        let mut expect = Matrix::full(6, 5, 2.0);
        for i in 0..6 {
            for j in 0..5 {
                let mut s = expect[(i, j)];
                for p in 0..9 {
                    s += a[(i, p)] * b[(p, j)];
                }
                expect[(i, j)] = s;
            }
        }
        assert_eq!(out.as_slice(), expect.as_slice());
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(try_matmul(&a, &b).is_err());
    }

    fn naive_matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.rows() {
                    s += a[(p, i)] * b[(p, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    fn naive_matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a[(i, p)] * b[(j, p)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn at_b_is_bit_exact_vs_naive() {
        let mut rng = Rng64::seed_from(20);
        let a = rng.uniform_matrix(9, 5, -1.0, 1.0);
        let b = rng.uniform_matrix(9, 7, -1.0, 1.0);
        assert_eq!(matmul_at_b(&a, &b).as_slice(), naive_matmul_at_b(&a, &b).as_slice());
    }

    #[test]
    fn a_bt_is_bit_exact_vs_naive() {
        let mut rng = Rng64::seed_from(21);
        let a = rng.uniform_matrix(6, 8, -1.0, 1.0);
        let b = rng.uniform_matrix(5, 8, -1.0, 1.0);
        assert_eq!(matmul_a_bt(&a, &b).as_slice(), naive_matmul_a_bt(&a, &b).as_slice());
    }

    #[test]
    fn pooled_matmul_is_bit_exact_for_any_worker_count() {
        // Determinism, not mere closeness: the distributed drivers assert
        // bit-identical genomes, so the row-partitioned kernel must produce
        // exactly the serial result regardless of pool size or run order.
        let mut rng = Rng64::seed_from(22);
        let a = rng.uniform_matrix(23, 17, -1.0, 1.0);
        let b = rng.uniform_matrix(17, 11, -1.0, 1.0);
        let serial = matmul(&a, &b);
        for workers in 1..=4 {
            let pool = Pool::new(workers);
            for _ in 0..3 {
                let pooled = matmul_pooled(&a, &b, &pool);
                assert_eq!(
                    pooled.as_slice(),
                    serial.as_slice(),
                    "bit drift with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn pooled_backprop_kernels_are_bit_exact() {
        let mut rng = Rng64::seed_from(23);
        // Big enough to clear the pooling threshold.
        let x = rng.uniform_matrix(64, 48, -1.0, 1.0);
        let delta = rng.uniform_matrix(64, 56, -1.0, 1.0);
        let w = rng.uniform_matrix(48, 56, -1.0, 1.0);
        let at_b = matmul_at_b(&x, &delta);
        let a_bt = matmul_a_bt(&delta, &w);
        for workers in 1..=4 {
            let pool = Pool::new(workers);
            assert_eq!(matmul_at_b_pooled(&x, &delta, &pool).as_slice(), at_b.as_slice());
            assert_eq!(matmul_a_bt_pooled(&delta, &w, &pool).as_slice(), a_bt.as_slice());
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(8);
        let a = rng.uniform_matrix(6, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(6, 5, -1.0, 1.0);
        let fast = matmul_at_b(&a, &b);
        let slow = matmul(&a.transpose(), &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = Rng64::seed_from(9);
        let a = rng.uniform_matrix(4, 6, -1.0, 1.0);
        let b = rng.uniform_matrix(3, 6, -1.0, 1.0);
        let fast = matmul_a_bt(&a, &b);
        let slow = matmul(&a, &b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn pooled_matmul_matches_serial() {
        let mut rng = Rng64::seed_from(10);
        let a = rng.uniform_matrix(64, 96, -1.0, 1.0);
        let b = rng.uniform_matrix(96, 80, -1.0, 1.0);
        let pool = Pool::new(3);
        let par = matmul_pooled(&a, &b, &pool);
        let ser = matmul(&a, &b);
        assert!(par.max_abs_diff(&ser) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::seed_from(11);
        let a = rng.uniform_matrix(4, 4, -2.0, 2.0);
        let i = Matrix::identity(4);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn zero_rows_in_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let at = Matrix::zeros(4, 0);
        assert_eq!(matmul_at_b(&at, &b).shape(), (0, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::full(2, 2, 2.0);
        let sum = try_add(&a, &b).unwrap();
        assert_eq!(sum[(1, 1)], 6.0);
        let d = sub(&sum, &b);
        assert!(d.max_abs_diff(&a) < 1e-7);
        let h = hadamard(&a, &b);
        assert_eq!(h[(1, 0)], 6.0);
        let mut s = a.clone();
        scale_assign(&mut s, 0.5);
        assert_eq!(s[(0, 1)], 1.0);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut a = Matrix::zeros(3, 2);
        add_row_vector(&mut a, &[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(a.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [1.5, 2.0, 2.5]);
    }

    #[test]
    fn dot_handles_remainder() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b = vec![2.0f32; 7];
        assert_eq!(dot(&a, &b), 2.0 * (0..7).sum::<i32>() as f32);
    }
}
