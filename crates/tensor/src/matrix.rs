//! Row-major dense `f32` matrix.

use crate::error::ShapeError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
///
/// `Matrix` is the only tensor type in the workspace: batches of images are
/// `(batch, features)` matrices, network weights are `(fan_in, fan_out)`
/// matrices, and bias vectors are `(1, n)` matrices where convenient.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a `rows x cols` matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from nested row slices (test/example convenience).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy of column `c` (columns are strided, so this allocates).
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// New matrix containing rows `[start, end)` of `self`.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// New matrix containing the given rows of `self`, in order.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            debug_assert!(idx < self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Stack matrices vertically. All operands must share a column count.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let cols = parts.first().map_or(0, |m| m.cols);
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(ShapeError::new("vstack", (rows, cols), p.shape()));
            }
            rows += p.rows;
        }
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// New matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Overwrite every element with zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshape to `rows × cols`, reusing the backing allocation.
    ///
    /// The contents are unspecified afterwards — this is the workspace
    /// primitive for buffers that are fully overwritten by the next kernel.
    /// Allocates only when the new size exceeds the current capacity, so a
    /// steady-state training step that cycles through fixed shapes performs
    /// no allocation here.
    pub fn resize_buffer(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrite `self` with a copy of `src`, reusing the allocation
    /// (shape included — the buffer-recycling analogue of `clone`).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// True when all elements are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Matrix {
    /// An empty `0×0` matrix — the placeholder state of recycled workspace
    /// buffers before their first use.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, " ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.5;
        assert_eq!(m[(1, 2)], 7.5);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.5]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn slice_and_gather_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g, Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
    }

    #[test]
    fn vstack_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.rows(), 3);
        let bad = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &bad]).is_err());
    }

    #[test]
    fn identity_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
    }

    #[test]
    fn map_and_finite() {
        let mut m = Matrix::full(2, 2, 2.0);
        m.map_inplace(|v| v * v);
        assert_eq!(m[(1, 1)], 4.0);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 1.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn col_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn resize_buffer_reuses_allocation() {
        let mut m = Matrix::zeros(4, 8);
        let ptr = m.as_slice().as_ptr();
        m.resize_buffer(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrink must not reallocate");
        m.resize_buffer(4, 8);
        assert_eq!(m.as_slice().as_ptr(), ptr, "regrow within capacity must not reallocate");
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut dst = Matrix::zeros(5, 5);
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr, "copy_from must reuse the buffer");
        assert_eq!(Matrix::default().shape(), (0, 0));
    }
}
