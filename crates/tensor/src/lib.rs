//! Dense f32 matrix kernels and seeded randomness for lipizzaner-rs.
//!
//! This crate is the numerical substrate of the workspace: a row-major
//! [`Matrix`] type, cache-friendly matrix products (including the transposed
//! variants backpropagation needs), elementwise kernels, axis reductions, a
//! deterministic [`rng::Rng64`] with Gaussian sampling, and a small
//! scoped-thread [`pool::Pool`] that provides the *intra-process* level of the
//! paper's two-level parallel model (threads inside a rank, message passing
//! across ranks).
//!
//! Everything is deliberately `f32`: the GANs reproduced here (MLPs from
//! Table I of the paper) train in single precision, and half the memory
//! traffic matters more than the extra mantissa bits.

pub mod error;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod reduce;
pub mod rng;

pub use error::ShapeError;
pub use matrix::Matrix;
pub use pool::Pool;
pub use rng::Rng64;
