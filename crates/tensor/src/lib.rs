//! Dense f32 matrix kernels and seeded randomness for lipizzaner-rs.
//!
//! This crate is the numerical substrate of the workspace: a row-major
//! [`Matrix`] type, register-blocked matrix products (including the
//! transposed variants backpropagation needs, with a runtime-dispatched
//! AVX2 micro-kernel that stays bit-identical to the portable path),
//! elementwise kernels, axis reductions, a deterministic [`rng::Rng64`]
//! with Gaussian sampling, and a resident worker [`pool::Pool`] that
//! provides the *intra-process* level of the paper's two-level parallel
//! model (threads inside a rank, message passing across ranks).
//!
//! Everything is deliberately `f32`: the GANs reproduced here (MLPs from
//! Table I of the paper) train in single precision, and half the memory
//! traffic matters more than the extra mantissa bits.
//!
//! # Example
//!
//! ```
//! use lipiz_tensor::{ops, Matrix, Pool, Rng64};
//!
//! let mut rng = Rng64::seed_from(7);
//! let a = rng.uniform_matrix(4, 3, -1.0, 1.0);
//! let b = rng.uniform_matrix(3, 5, -1.0, 1.0);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.shape(), (4, 5));
//! // The pooled kernel is bit-identical to the serial one.
//! let pooled = ops::matmul_pooled(&a, &b, &Pool::new(2));
//! assert_eq!(pooled.as_slice(), c.as_slice());
//! ```

pub mod error;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod reduce;
pub mod rng;

pub use error::ShapeError;
pub use matrix::Matrix;
pub use ops::ActKind;
pub use pool::Pool;
pub use rng::{Rng64, Rng64State};
