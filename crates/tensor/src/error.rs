//! Shape-mismatch error type shared by all matrix kernels.

use std::fmt;

/// Error raised when the dimensions of matrix operands do not line up.
///
/// Kernels in this crate use `debug_assert!`-style checked entry points that
/// return `Result<_, ShapeError>` (`try_*` functions) plus panicking
/// convenience wrappers for call sites where shapes are statically known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The operation that was attempted, e.g. `"matmul"`.
    pub op: &'static str,
    /// Shape of the left/first operand as `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right/second operand as `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl ShapeError {
    /// Build a shape error for `op` with the two offending shapes.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: lhs {}x{} vs rhs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_shapes() {
        let e = ShapeError::new("matmul", (2, 3), (4, 5));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn equality() {
        let a = ShapeError::new("add", (1, 2), (3, 4));
        let b = ShapeError::new("add", (1, 2), (3, 4));
        assert_eq!(a, b);
    }
}
