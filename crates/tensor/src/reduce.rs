//! Axis reductions and summary statistics.

use crate::matrix::Matrix;

/// Sum of all elements.
pub fn sum(m: &Matrix) -> f32 {
    m.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty matrix).
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        0.0
    } else {
        sum(m) / m.len() as f32
    }
}

/// Per-column mean: `(rows, cols)` → vector of length `cols`.
pub fn col_mean(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    if m.rows() == 0 {
        return out;
    }
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
    let inv = 1.0 / m.rows() as f32;
    out.iter_mut().for_each(|v| *v *= inv);
    out
}

/// Per-column (population) covariance matrix of the rows of `m`.
///
/// Returns a `(cols, cols)` symmetric matrix. Uses the mean-centered
/// definition with `1/n` normalization; for the Fréchet distance the
/// population form is what the literature uses.
pub fn col_covariance(m: &Matrix) -> Matrix {
    let d = m.cols();
    let n = m.rows();
    let mut cov = Matrix::zeros(d, d);
    if n == 0 {
        return cov;
    }
    let mu = col_mean(m);
    let mut centered = Vec::with_capacity(d);
    for r in 0..n {
        centered.clear();
        centered.extend(m.row(r).iter().zip(&mu).map(|(&v, &u)| v - u));
        for i in 0..d {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let row = cov.row_mut(i);
            for (j, rv) in row.iter_mut().enumerate() {
                *rv += ci * centered[j];
            }
        }
    }
    let inv = 1.0 / n as f32;
    for v in cov.as_mut_slice() {
        *v *= inv;
    }
    cov
}

/// Per-row sum: `(rows, cols)` → vector of length `rows`.
pub fn row_sum(m: &Matrix) -> Vec<f32> {
    m.rows_iter().map(|r| r.iter().sum()).collect()
}

/// Per-row mean.
pub fn row_mean(m: &Matrix) -> Vec<f32> {
    let inv = if m.cols() == 0 { 0.0 } else { 1.0 / m.cols() as f32 };
    row_sum(m).into_iter().map(|s| s * inv).collect()
}

/// Index of the maximum element of each row (first on ties).
pub fn row_argmax(m: &Matrix) -> Vec<usize> {
    m.rows_iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .fold(
                    (0usize, f32::NEG_INFINITY),
                    |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    },
                )
                .0
        })
        .collect()
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn dist2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum(&m), 10.0);
        assert_eq!(mean(&m), 2.5);
        assert_eq!(row_sum(&m), vec![3.0, 7.0]);
        assert_eq!(row_mean(&m), vec![1.5, 3.5]);
        assert_eq!(col_mean(&m), vec![2.0, 3.0]);
    }

    #[test]
    fn empty_matrix_mean_is_zero() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(mean(&m), 0.0);
        assert_eq!(col_mean(&m), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(row_argmax(&m), vec![1, 0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly anti-correlated columns.
        let m = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        let c = col_covariance(&m);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((c[(1, 1)] - 1.0).abs() < 1e-6);
        assert!((c[(0, 1)] + 1.0).abs() < 1e-6);
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-7, "symmetric");
    }

    #[test]
    fn covariance_of_constant_data_is_zero() {
        let m = Matrix::full(5, 3, 2.0);
        let c = col_covariance(&m);
        assert!(c.as_slice().iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-7);
        assert_eq!(dist2_sq(&[1.0, 1.0], &[1.0, 3.0]), 4.0);
    }
}
