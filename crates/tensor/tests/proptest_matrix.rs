//! Property tests for the matrix substrate.

use lipiz_tensor::{ops, reduce, Matrix, Pool, Rng64};
use proptest::prelude::*;

fn matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Reference `a · b` with the canonical accumulation order every kernel
/// must reproduce bit-for-bit: one accumulator per element, `p` ascending.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0f32;
            for p in 0..a.cols() {
                s += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// Reference `aᵀ · b` (same canonical accumulation order).
fn reference_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let mut s = 0.0f32;
            for p in 0..a.rows() {
                s += a[(p, i)] * b[(p, j)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

/// Reference `a · bᵀ` (same canonical accumulation order).
fn reference_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut s = 0.0f32;
            for p in 0..a.cols() {
                s += a[(i, p)] * b[(j, p)];
            }
            out[(i, j)] = s;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identity_is_left_and_right_neutral(m in matrix(8, 8)) {
        let left = Matrix::identity(m.rows());
        let right = Matrix::identity(m.cols());
        prop_assert!(ops::matmul(&left, &m).max_abs_diff(&m) < 1e-3);
        prop_assert!(ops::matmul(&m, &right).max_abs_diff(&m) < 1e-3);
    }

    #[test]
    fn matmul_associativity(seed in 0u64..10_000) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(3, 4, -1.0, 1.0);
        let b = rng.uniform_matrix(4, 5, -1.0, 1.0);
        let c = rng.uniform_matrix(5, 2, -1.0, 1.0);
        let ab_c = ops::matmul(&ops::matmul(&a, &b), &c);
        let a_bc = ops::matmul(&a, &ops::matmul(&b, &c));
        prop_assert!(ab_c.max_abs_diff(&a_bc) < 1e-3);
    }

    #[test]
    fn pooled_matmul_equals_serial(seed in 0u64..10_000, workers in 1usize..4) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(17, 23, -1.0, 1.0);
        let b = rng.uniform_matrix(23, 11, -1.0, 1.0);
        let serial = ops::matmul(&a, &b);
        let pooled = ops::matmul_pooled(&a, &b, &Pool::uncapped(workers));
        prop_assert!(serial.max_abs_diff(&pooled) < 1e-5);
    }

    #[test]
    fn blocked_matmul_is_bit_exact_for_any_shape(
        seed in 0u64..10_000, m in 1usize..40, k in 1usize..40, n in 1usize..40,
    ) {
        // Arbitrary shapes hit every full-tile/edge-tile combination of the
        // blocked kernel; results must be bit-identical to the reference.
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        prop_assert_eq!(ops::matmul(&a, &b).as_slice(), reference_matmul(&a, &b).as_slice());
    }

    #[test]
    fn blocked_and_pooled_at_b_are_bit_exact(
        seed in 0u64..10_000, k in 1usize..40, m in 1usize..40, n in 1usize..40,
        workers in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(k, m, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let reference = reference_at_b(&a, &b);
        prop_assert_eq!(ops::matmul_at_b(&a, &b).as_slice(), reference.as_slice());
        let pooled = ops::matmul_at_b_pooled(&a, &b, &Pool::uncapped(workers));
        prop_assert_eq!(pooled.as_slice(), reference.as_slice());
    }

    /// Fused bias+activation epilogues must match the unfused pipeline
    /// bit-for-bit for arbitrary shapes (every full/edge tile mix), every
    /// activation, and every worker count.
    #[test]
    fn fused_epilogue_is_bit_exact_for_any_shape(
        seed in 0u64..10_000, m in 1usize..40, k in 0usize..40, n in 1usize..40,
        workers in 1usize..5, act_id in 0usize..4,
    ) {
        use lipiz_tensor::ActKind;
        let act = [
            ActKind::Identity,
            ActKind::Tanh,
            ActKind::Sigmoid,
            ActKind::LeakyRelu(0.2),
        ][act_id];
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -2.0, 2.0);
        let w = rng.uniform_matrix(k.max(1), n, -1.0, 1.0);
        let wslice = &w.as_slice()[..k * n];
        let bias: Vec<f32> = (0..n).map(|_| rng.uniform(-0.5, 0.5)).collect();
        // Unfused reference over the same canonical accumulation order.
        let mut expect = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[(i, p)] * wslice[p * n + j];
                }
                expect[(i, j)] = act.apply(s + bias[j]);
            }
        }
        let mut fused = Matrix::default();
        ops::matmul_bias_act_into(&a, wslice, n, &bias, act, &mut fused, &Pool::uncapped(workers));
        prop_assert_eq!(fused.as_slice(), expect.as_slice());
    }

    /// The slice-writing gradient kernels (weight gradients landing
    /// directly in genome storage, input gradients against a flat weight
    /// view) must be bit-exact against the matrix-returning kernels.
    #[test]
    fn slice_kernels_are_bit_exact(
        seed in 0u64..10_000, m in 1usize..24, k in 1usize..24, n in 1usize..24,
        workers in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let pool = Pool::uncapped(workers);
        let x = rng.uniform_matrix(k, m, -1.0, 1.0);
        let delta = rng.uniform_matrix(k, n, -1.0, 1.0);
        let mut dw = vec![7.7f32; m * n];
        ops::matmul_at_b_slice_into(&x, &delta, &mut dw, &pool);
        prop_assert_eq!(&dw, reference_at_b(&x, &delta).as_slice());

        let d2 = rng.uniform_matrix(m, k, -1.0, 1.0);
        let wmat = rng.uniform_matrix(n, k, -1.0, 1.0);
        let mut dx = Matrix::default();
        ops::matmul_a_bt_view_into(&d2, wmat.as_slice(), n, &mut dx, &pool);
        prop_assert_eq!(dx.as_slice(), reference_a_bt(&d2, &wmat).as_slice());
    }

    #[test]
    fn blocked_and_pooled_a_bt_are_bit_exact(
        seed in 0u64..10_000, m in 1usize..40, k in 1usize..40, n in 1usize..40,
        workers in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(n, k, -1.0, 1.0);
        let reference = reference_a_bt(&a, &b);
        prop_assert_eq!(ops::matmul_a_bt(&a, &b).as_slice(), reference.as_slice());
        let pooled = ops::matmul_a_bt_pooled(&a, &b, &Pool::uncapped(workers));
        prop_assert_eq!(pooled.as_slice(), reference.as_slice());
    }

    #[test]
    fn pooled_matmul_is_bit_exact_for_any_shape_and_workers(
        seed in 0u64..10_000, m in 1usize..40, k in 1usize..40, n in 1usize..40,
        workers in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let a = rng.uniform_matrix(m, k, -1.0, 1.0);
        let b = rng.uniform_matrix(k, n, -1.0, 1.0);
        let pooled = ops::matmul_pooled(&a, &b, &Pool::uncapped(workers));
        prop_assert_eq!(pooled.as_slice(), reference_matmul(&a, &b).as_slice());
    }

    #[test]
    fn vstack_then_slice_recovers_parts(a in matrix(5, 4), seed in 0u64..100) {
        let mut rng = Rng64::seed_from(seed);
        let b = rng.uniform_matrix(3, a.cols(), -1.0, 1.0);
        let stacked = Matrix::vstack(&[&a, &b]).unwrap();
        prop_assert_eq!(stacked.slice_rows(0, a.rows()), a.clone());
        prop_assert_eq!(stacked.slice_rows(a.rows(), a.rows() + 3), b);
    }

    #[test]
    fn gather_rows_picks_expected_rows(m in matrix(8, 5), seed in 0u64..100) {
        let mut rng = Rng64::seed_from(seed);
        let indices: Vec<usize> = (0..4).map(|_| rng.below(m.rows())).collect();
        let g = m.gather_rows(&indices);
        for (out_row, &src) in indices.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), m.row(src));
        }
    }

    #[test]
    fn shuffle_preserves_multiset(n in 1usize..64, seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn col_mean_matches_manual(m in matrix(6, 6)) {
        let means = reduce::col_mean(&m);
        for c in 0..m.cols() {
            let manual: f32 =
                (0..m.rows()).map(|r| m[(r, c)]).sum::<f32>() / m.rows() as f32;
            prop_assert!((means[c] - manual).abs() < 1e-3);
        }
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(m in matrix(8, 4)) {
        let cov = reduce::col_covariance(&m);
        for i in 0..cov.rows() {
            prop_assert!(cov[(i, i)] >= -1e-3, "negative variance at {}", i);
            for j in 0..cov.cols() {
                prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn normal_draws_are_finite(seed in 0u64..10_000) {
        let mut rng = Rng64::seed_from(seed);
        for _ in 0..100 {
            let v = rng.gaussian();
            prop_assert!(v.is_finite());
            prop_assert!(v.abs() < 10.0, "absurd normal draw {}", v);
        }
    }

    #[test]
    fn sample_distinct_is_distinct(n in 1usize..32, seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let k = 1 + seed as usize % n;
        let s = rng.sample_distinct(n, k);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), s.len());
    }
}
