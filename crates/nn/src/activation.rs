//! Elementwise activation functions.

use lipiz_tensor::{ActKind, Matrix};

/// Activation functions supported by [`crate::mlp::Mlp`].
///
/// All of them can compute their derivative *from the activated output*
/// (rather than the pre-activation), which lets the backward pass avoid
/// caching pre-activation matrices:
/// `tanh'(z) = 1 - a²`, `σ'(z) = a(1-a)`, and for leaky-ReLU the sign of the
/// output equals the sign of the input because the slope is positive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Hyperbolic tangent (the paper's Table I activation).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky rectified linear unit with the given negative-side slope.
    LeakyRelu(f32),
    /// Pass-through; used for logit outputs so losses can be computed stably.
    Identity,
}

impl Activation {
    /// The tensor-level activation kind the fused kernel epilogues apply.
    /// Fused and unfused paths share this one scalar implementation per
    /// function, which is what makes them bit-equal by construction.
    #[inline]
    pub fn kind(&self) -> ActKind {
        match *self {
            Activation::Tanh => ActKind::Tanh,
            Activation::Sigmoid => ActKind::Sigmoid,
            Activation::LeakyRelu(slope) => ActKind::LeakyRelu(slope),
            Activation::Identity => ActKind::Identity,
        }
    }

    /// Apply the activation to every element of `m` in place (vectorized
    /// slice kernel; bit-identical to an elementwise [`ActKind::apply`]).
    pub fn apply_inplace(&self, m: &mut Matrix) {
        lipiz_tensor::ops::apply_act(self.kind(), m.as_mut_slice());
    }

    /// Multiply `delta` in place by the activation derivative, evaluated from
    /// the activated output `out` (same shape as `delta`).
    pub fn scale_by_derivative(&self, out: &Matrix, delta: &mut Matrix) {
        debug_assert_eq!(out.shape(), delta.shape());
        match *self {
            Activation::Tanh => {
                for (d, &a) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *d *= 1.0 - a * a;
                }
            }
            Activation::Sigmoid => {
                for (d, &a) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *d *= a * (1.0 - a);
                }
            }
            Activation::LeakyRelu(slope) => {
                for (d, &a) in delta.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if a < 0.0 {
                        *d *= slope;
                    }
                }
            }
            Activation::Identity => {}
        }
    }

    /// Short name used in config dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::LeakyRelu(_) => "leaky_relu",
            Activation::Identity => "identity",
        }
    }
}

/// Numerically stable logistic sigmoid (shared with the tensor crate's
/// fused kernel epilogues — one implementation, bit-equal everywhere).
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    lipiz_tensor::ops::sigmoid(z)
}

/// Numerically stable softplus `ln(1 + e^z)`.
#[inline]
pub fn softplus(z: f32) -> f32 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(act: Activation, z: f32) -> f32 {
        let h = 1e-3;
        let f = |z: f32| {
            let mut m = Matrix::full(1, 1, z);
            act.apply_inplace(&mut m);
            m[(0, 0)]
        };
        (f(z + h) - f(z - h)) / (2.0 * h)
    }

    fn analytic_derivative(act: Activation, z: f32) -> f32 {
        let mut out = Matrix::full(1, 1, z);
        act.apply_inplace(&mut out);
        let mut delta = Matrix::full(1, 1, 1.0);
        act.scale_by_derivative(&out, &mut delta);
        delta[(0, 0)]
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for act in [
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu(0.2),
            Activation::Identity,
        ] {
            for &z in &[-2.0f32, -0.5, 0.3, 1.7] {
                let num = numeric_derivative(act, z);
                let ana = analytic_derivative(act, z);
                assert!(
                    (num - ana).abs() < 1e-3,
                    "{act:?} at {z}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_is_stable_and_positive() {
        assert!(softplus(-200.0) >= 0.0);
        assert!((softplus(200.0) - 200.0).abs() < 1e-3);
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn tanh_bounds_outputs() {
        let mut m = Matrix::from_rows(&[&[-50.0, 0.0, 50.0]]);
        Activation::Tanh.apply_inplace(&mut m);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 1.0));
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn leaky_relu_negative_side() {
        let mut m = Matrix::from_rows(&[&[-2.0, 3.0]]);
        Activation::LeakyRelu(0.1).apply_inplace(&mut m);
        assert!((m[(0, 0)] + 0.2).abs() < 1e-6);
        assert_eq!(m[(0, 1)], 3.0);
    }
}
