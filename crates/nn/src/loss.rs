//! GAN training objectives.
//!
//! All losses are computed from discriminator *logits* (the discriminator's
//! output layer is `Identity`), which keeps every formula numerically stable:
//! `BCE(z, y) = softplus(z) - y·z` and `log σ(z) = -softplus(-z)`.
//!
//! The [`GanLoss`] enum is the gene the **Mustangs** loss-mutation operator
//! draws from (Toutouh et al., GECCO 2019): the original minimax objective,
//! the non-saturating heuristic, and least-squares. Plain **Lipizzaner**
//! training fixes the loss to [`GanLoss::Heuristic`] for every step.

use crate::activation::{sigmoid, softplus};
use lipiz_tensor::Matrix;

/// Generator objective variants (the Mustangs mutation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GanLoss {
    /// Original saturating minimax objective: `min_G E[log(1 - D(G(z)))]`.
    Minimax,
    /// Non-saturating heuristic: `min_G -E[log D(G(z))]` (GAN folklore
    /// default; what Lipizzaner's BCE generator step optimizes).
    Heuristic,
    /// Least-squares objective on the discriminator probability:
    /// `min_G E[(D(G(z)) - 1)²] / 2`.
    LeastSquares,
}

impl GanLoss {
    /// All variants, in the order used for mutation draws.
    pub const ALL: [GanLoss; 3] = [GanLoss::Minimax, GanLoss::Heuristic, GanLoss::LeastSquares];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            GanLoss::Minimax => "minimax",
            GanLoss::Heuristic => "heuristic",
            GanLoss::LeastSquares => "least-squares",
        }
    }

    /// Stable numeric id for serialization over the wire.
    pub fn id(&self) -> u8 {
        match self {
            GanLoss::Minimax => 0,
            GanLoss::Heuristic => 1,
            GanLoss::LeastSquares => 2,
        }
    }

    /// Inverse of [`GanLoss::id`].
    pub fn from_id(id: u8) -> Option<GanLoss> {
        match id {
            0 => Some(GanLoss::Minimax),
            1 => Some(GanLoss::Heuristic),
            2 => Some(GanLoss::LeastSquares),
            _ => None,
        }
    }
}

/// Discriminator BCE loss and logit gradients.
///
/// `z_real`/`z_fake` are `(batch, 1)` logit matrices. Returns
/// `(loss, d_z_real, d_z_fake)` where the gradients are already divided by
/// the respective batch sizes (mean reduction).
pub fn d_bce_loss(z_real: &Matrix, z_fake: &Matrix) -> (f32, Matrix, Matrix) {
    let mut d_real = Matrix::default();
    let mut d_fake = Matrix::default();
    let loss = d_bce_loss_into(z_real, z_fake, &mut d_real, &mut d_fake);
    (loss, d_real, d_fake)
}

/// [`d_bce_loss`] into recycled gradient buffers (the zero-allocation path
/// of the training loop). Same values, bit for bit.
pub fn d_bce_loss_into(
    z_real: &Matrix,
    z_fake: &Matrix,
    d_real: &mut Matrix,
    d_fake: &mut Matrix,
) -> f32 {
    let mr = z_real.rows().max(1) as f32;
    let mf = z_fake.rows().max(1) as f32;
    let mut loss = 0.0f32;
    d_real.copy_from(z_real);
    for v in d_real.as_mut_slice() {
        let z = *v;
        loss += softplus(-z) / mr; // -log σ(z)
        *v = (sigmoid(z) - 1.0) / mr;
    }
    d_fake.copy_from(z_fake);
    for v in d_fake.as_mut_slice() {
        let z = *v;
        loss += softplus(z) / mf; // -log(1 - σ(z))
        *v = sigmoid(z) / mf;
    }
    loss
}

/// The loss value of [`d_bce_loss`] without materializing the gradients —
/// the fitness-evaluation path (identical accumulation order, so the value
/// matches the gradient-producing version bit for bit).
pub fn d_bce_loss_value(z_real: &Matrix, z_fake: &Matrix) -> f32 {
    let mr = z_real.rows().max(1) as f32;
    let mf = z_fake.rows().max(1) as f32;
    let mut loss = 0.0f32;
    for &z in z_real.as_slice() {
        loss += softplus(-z) / mr;
    }
    for &z in z_fake.as_slice() {
        loss += softplus(z) / mf;
    }
    loss
}

/// Discriminator least-squares loss (ablation option): probabilities are
/// pushed toward 1 for real and 0 for fake samples.
pub fn d_ls_loss(z_real: &Matrix, z_fake: &Matrix) -> (f32, Matrix, Matrix) {
    let mr = z_real.rows().max(1) as f32;
    let mf = z_fake.rows().max(1) as f32;
    let mut loss = 0.0f32;
    let mut d_real = z_real.clone();
    for v in d_real.as_mut_slice() {
        let p = sigmoid(*v);
        loss += 0.5 * (p - 1.0) * (p - 1.0) / mr;
        *v = (p - 1.0) * p * (1.0 - p) / mr;
    }
    let mut d_fake = z_fake.clone();
    for v in d_fake.as_mut_slice() {
        let p = sigmoid(*v);
        loss += 0.5 * p * p / mf;
        *v = p * p * (1.0 - p) / mf;
    }
    (loss, d_real, d_fake)
}

/// Generator loss and logit gradient for fake-sample logits `z_fake`.
///
/// Returns `(loss, d_z_fake)` with mean reduction.
pub fn g_loss(kind: GanLoss, z_fake: &Matrix) -> (f32, Matrix) {
    let mut d = Matrix::default();
    let loss = g_loss_into(kind, z_fake, &mut d);
    (loss, d)
}

/// [`g_loss`] into a recycled gradient buffer (the zero-allocation path of
/// the training loop). Same values, bit for bit.
pub fn g_loss_into(kind: GanLoss, z_fake: &Matrix, d: &mut Matrix) -> f32 {
    let m = z_fake.rows().max(1) as f32;
    let mut loss = 0.0f32;
    d.copy_from(z_fake);
    match kind {
        GanLoss::Heuristic => {
            // L = -E[log σ(z)] = E[softplus(-z)]
            for v in d.as_mut_slice() {
                let z = *v;
                loss += softplus(-z) / m;
                *v = (sigmoid(z) - 1.0) / m;
            }
        }
        GanLoss::Minimax => {
            // L = E[log(1 - σ(z))] = -E[softplus(z)]
            for v in d.as_mut_slice() {
                let z = *v;
                loss += -softplus(z) / m;
                *v = -sigmoid(z) / m;
            }
        }
        GanLoss::LeastSquares => {
            // L = E[(σ(z) - 1)²] / 2
            for v in d.as_mut_slice() {
                let p = sigmoid(*v);
                loss += 0.5 * (p - 1.0) * (p - 1.0) / m;
                *v = (p - 1.0) * p * (1.0 - p) / m;
            }
        }
    }
    loss
}

/// The loss value of [`g_loss`] without materializing the gradient —
/// the fitness-evaluation path (identical accumulation order, so the value
/// matches the gradient-producing version bit for bit).
pub fn g_loss_value(kind: GanLoss, z_fake: &Matrix) -> f32 {
    let m = z_fake.rows().max(1) as f32;
    let mut loss = 0.0f32;
    match kind {
        GanLoss::Heuristic => {
            for &z in z_fake.as_slice() {
                loss += softplus(-z) / m;
            }
        }
        GanLoss::Minimax => {
            for &z in z_fake.as_slice() {
                loss += -softplus(z) / m;
            }
        }
        GanLoss::LeastSquares => {
            for &z in z_fake.as_slice() {
                let p = sigmoid(z);
                loss += 0.5 * (p - 1.0) * (p - 1.0) / m;
            }
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::Rng64;

    /// Finite-difference check of a scalar-logit gradient.
    fn check_grad(f: impl Fn(&Matrix) -> (f32, Matrix), z0: f32) {
        let eps = 1e-3f32;
        let z = Matrix::full(1, 1, z0);
        let (_, g) = f(&z);
        let (lp, _) = f(&Matrix::full(1, 1, z0 + eps));
        let (lm, _) = f(&Matrix::full(1, 1, z0 - eps));
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - g[(0, 0)]).abs() < 1e-3,
            "z={z0}: numeric {numeric} vs analytic {}",
            g[(0, 0)]
        );
    }

    #[test]
    fn d_bce_gradients_match_finite_differences() {
        for &z in &[-2.0f32, -0.1, 0.0, 0.7, 3.0] {
            // Real-branch gradient with a fixed fake logit.
            check_grad(
                |zr| {
                    let (l, dr, _) = d_bce_loss(zr, &Matrix::full(1, 1, 0.3));
                    (l, dr)
                },
                z,
            );
            // Fake-branch gradient with a fixed real logit.
            check_grad(
                |zf| {
                    let (l, _, df) = d_bce_loss(&Matrix::full(1, 1, -0.4), zf);
                    (l, df)
                },
                z,
            );
        }
    }

    #[test]
    fn g_loss_gradients_match_finite_differences() {
        for kind in GanLoss::ALL {
            for &z in &[-3.0f32, -0.5, 0.0, 0.5, 3.0] {
                check_grad(|zf| g_loss(kind, zf), z);
            }
        }
    }

    #[test]
    fn d_ls_gradients_match_finite_differences() {
        for &z in &[-1.5f32, 0.0, 1.5] {
            check_grad(
                |zr| {
                    let (l, dr, _) = d_ls_loss(zr, &Matrix::full(1, 1, 0.3));
                    (l, dr)
                },
                z,
            );
            check_grad(
                |zf| {
                    let (l, _, df) = d_ls_loss(&Matrix::full(1, 1, -0.4), zf);
                    (l, df)
                },
                z,
            );
        }
    }

    #[test]
    fn perfect_discriminator_has_small_bce() {
        let z_real = Matrix::full(4, 1, 20.0);
        let z_fake = Matrix::full(4, 1, -20.0);
        let (loss, _, _) = d_bce_loss(&z_real, &z_fake);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn fooled_discriminator_means_low_generator_loss() {
        let fooled = Matrix::full(4, 1, 10.0); // D thinks fakes are real
        let caught = Matrix::full(4, 1, -10.0);
        for kind in GanLoss::ALL {
            let (l_fooled, _) = g_loss(kind, &fooled);
            let (l_caught, _) = g_loss(kind, &caught);
            assert!(
                l_fooled < l_caught,
                "{kind:?}: fooled {l_fooled} should beat caught {l_caught}"
            );
        }
    }

    #[test]
    fn heuristic_gradient_does_not_saturate_when_caught() {
        // The motivation for the non-saturating loss: when D confidently
        // rejects fakes (z very negative), minimax gradients vanish but
        // heuristic gradients stay ~1/m.
        let caught = Matrix::full(1, 1, -8.0);
        let (_, g_heu) = g_loss(GanLoss::Heuristic, &caught);
        let (_, g_mm) = g_loss(GanLoss::Minimax, &caught);
        assert!(g_heu[(0, 0)].abs() > 0.5);
        assert!(g_mm[(0, 0)].abs() < 1e-3);
    }

    #[test]
    fn value_only_losses_match_gradient_versions_bitwise() {
        let mut rng = Rng64::seed_from(9);
        let zr =
            Matrix::from_vec(5, 1, (0..5).map(|_| rng.uniform(-6.0, 6.0)).collect()).unwrap();
        let zf =
            Matrix::from_vec(7, 1, (0..7).map(|_| rng.uniform(-6.0, 6.0)).collect()).unwrap();
        assert_eq!(d_bce_loss_value(&zr, &zf).to_bits(), d_bce_loss(&zr, &zf).0.to_bits());
        for kind in GanLoss::ALL {
            assert_eq!(
                g_loss_value(kind, &zf).to_bits(),
                g_loss(kind, &zf).0.to_bits(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn id_round_trip() {
        for kind in GanLoss::ALL {
            assert_eq!(GanLoss::from_id(kind.id()), Some(kind));
        }
        assert_eq!(GanLoss::from_id(9), None);
    }

    #[test]
    fn batch_mean_reduction() {
        // Loss of a batch equals mean of per-sample losses.
        let mut rng = Rng64::seed_from(1);
        let zs: Vec<f32> = (0..6).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let batch = Matrix::from_vec(6, 1, zs.clone()).unwrap();
        let (batch_loss, _) = g_loss(GanLoss::Heuristic, &batch);
        let mean_loss: f32 = zs
            .iter()
            .map(|&z| g_loss(GanLoss::Heuristic, &Matrix::full(1, 1, z)).0)
            .sum::<f32>()
            / 6.0;
        assert!((batch_loss - mean_loss).abs() < 1e-5);
    }
}
