//! Generator/discriminator networks and single training steps.
//!
//! The network topology mirrors Table I of the paper: MLP, 64 input
//! (latent) neurons, two hidden layers of 256 units, 784 outputs, tanh
//! activation. The discriminator mirrors it (784 → 256 → 256 → 1) and emits
//! *logits* so all losses can be computed in the stable softplus form.

use crate::activation::Activation;
use crate::adam::Adam;
use crate::loss::{self, GanLoss};
use crate::mlp::{DeltaScratch, Grads, LayerCache, Mlp};
use lipiz_tensor::{Matrix, Pool, Rng64};

/// Reusable scratch memory for the GAN training steps.
///
/// One workspace serves generator *and* discriminator steps of any shape
/// (every buffer resizes in place), so a cell engine owns exactly one.
/// After the first step at a given shape, a training step performs **zero
/// heap allocations** — asserted by the workspace's counting-allocator
/// integration test. The workspace-reusing steps are bit-identical to the
/// allocating ones (property-tested).
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    /// Forward cache of the first network in the step (G in a generator
    /// step; D-over-real in a discriminator step).
    cache_a: LayerCache,
    /// Forward cache of the second pass (D-over-fakes in both steps).
    cache_b: LayerCache,
    /// Loss gradient wrt real-batch logits.
    d_real: Matrix,
    /// Loss gradient wrt fake-batch logits.
    d_fake: Matrix,
    /// Backward-pass delta ping-pong buffers.
    scratch: DeltaScratch,
    /// Gradient accumulator for the updated network.
    grads: Grads,
    /// Second gradient buffer (the fake-batch half of a D step).
    grads_aux: Grads,
    /// `∂L/∂images` flowing out of the discriminator in a generator step.
    dx: Matrix,
}

/// Topology description for one generator/discriminator pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Latent (input) dimension of the generator. Table I: 64.
    pub latent_dim: usize,
    /// Number of hidden layers in both networks. Table I: 2.
    pub hidden_layers: usize,
    /// Units per hidden layer. Table I: 256.
    pub hidden_units: usize,
    /// Data dimension (28×28 = 784 for MNIST-like images).
    pub data_dim: usize,
    /// Hidden activation. Table I: tanh.
    pub activation: Activation,
}

impl NetworkConfig {
    /// The exact Table I configuration used for MNIST.
    pub fn paper_mnist() -> Self {
        Self {
            latent_dim: 64,
            hidden_layers: 2,
            hidden_units: 256,
            data_dim: 784,
            activation: Activation::Tanh,
        }
    }

    /// A small configuration for fast unit/integration tests.
    pub fn tiny(data_dim: usize) -> Self {
        Self {
            latent_dim: 8,
            hidden_layers: 1,
            hidden_units: 16,
            data_dim,
            activation: Activation::Tanh,
        }
    }

    /// Width list of the generator network.
    pub fn generator_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.hidden_layers + 2);
        dims.push(self.latent_dim);
        dims.extend(std::iter::repeat_n(self.hidden_units, self.hidden_layers));
        dims.push(self.data_dim);
        dims
    }

    /// Width list of the discriminator network.
    pub fn discriminator_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.hidden_layers + 2);
        dims.push(self.data_dim);
        dims.extend(std::iter::repeat_n(self.hidden_units, self.hidden_layers));
        dims.push(1);
        dims
    }
}

/// A generator network: maps latent batches to data-space batches in
/// `[-1, 1]` (tanh output).
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    /// The underlying network.
    pub net: Mlp,
    latent_dim: usize,
}

impl Generator {
    /// Fresh generator for `cfg` with Glorot-initialized weights.
    pub fn new(cfg: &NetworkConfig, rng: &mut Rng64) -> Self {
        let net = Mlp::from_dims(&cfg.generator_dims(), cfg.activation, Activation::Tanh, rng);
        Self { net, latent_dim: cfg.latent_dim }
    }

    /// Latent input dimension.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Generate images from a latent batch.
    pub fn generate(&self, z: &Matrix) -> Matrix {
        self.net.forward(z)
    }

    /// [`Generator::generate`] with pooled matrix products (bit-identical).
    pub fn generate_pooled(&self, z: &Matrix, pool: &Pool) -> Matrix {
        self.net.forward_pooled(z, pool)
    }

    /// [`Generator::generate_pooled`] into recycled buffers: the images
    /// land in `out`, `scratch` holds intermediate activations. Zero
    /// allocations once warmed up; bit-identical results.
    pub fn generate_into(
        &self,
        z: &Matrix,
        out: &mut Matrix,
        scratch: &mut Matrix,
        pool: &Pool,
    ) {
        self.net.forward_into(z, out, scratch, pool);
    }

    /// Draw `n` latent vectors and generate images.
    pub fn sample(&self, n: usize, rng: &mut Rng64) -> Matrix {
        let z = latent_batch(rng, n, self.latent_dim);
        self.generate(&z)
    }
}

/// A discriminator network: maps data-space batches to real/fake *logits*.
#[derive(Debug, Clone, PartialEq)]
pub struct Discriminator {
    /// The underlying network.
    pub net: Mlp,
}

impl Discriminator {
    /// Fresh discriminator for `cfg` with Glorot-initialized weights.
    pub fn new(cfg: &NetworkConfig, rng: &mut Rng64) -> Self {
        let net = Mlp::from_dims(
            &cfg.discriminator_dims(),
            cfg.activation,
            Activation::Identity,
            rng,
        );
        Self { net }
    }

    /// Real/fake logits for a data batch: `(batch, 1)`.
    pub fn logits(&self, x: &Matrix) -> Matrix {
        self.net.forward(x)
    }

    /// [`Discriminator::logits`] with pooled matrix products
    /// (bit-identical).
    pub fn logits_pooled(&self, x: &Matrix, pool: &Pool) -> Matrix {
        self.net.forward_pooled(x, pool)
    }

    /// [`Discriminator::logits_pooled`] into recycled buffers (zero
    /// allocations once warmed up; bit-identical results).
    pub fn logits_into(&self, x: &Matrix, out: &mut Matrix, scratch: &mut Matrix, pool: &Pool) {
        self.net.forward_into(x, out, scratch, pool);
    }
}

/// A generator/discriminator pair (one GAN, the unit placed in each grid
/// cell).
#[derive(Debug, Clone, PartialEq)]
pub struct Gan {
    /// Generator half.
    pub generator: Generator,
    /// Discriminator half.
    pub discriminator: Discriminator,
}

impl Gan {
    /// Fresh pair for `cfg`.
    pub fn new(cfg: &NetworkConfig, rng: &mut Rng64) -> Self {
        Self {
            generator: Generator::new(cfg, rng),
            discriminator: Discriminator::new(cfg, rng),
        }
    }
}

/// Sample a standard-normal latent batch `(n, dim)`.
pub fn latent_batch(rng: &mut Rng64, n: usize, dim: usize) -> Matrix {
    rng.normal_matrix(n, dim, 0.0, 1.0)
}

/// [`latent_batch`] into a recycled buffer — identical draws, zero
/// allocations once `out` has warmed up.
pub fn latent_batch_into(rng: &mut Rng64, n: usize, dim: usize, out: &mut Matrix) {
    rng.fill_normal(out, n, dim, 0.0, 1.0);
}

/// One discriminator SGD/Adam step against a batch of real samples and a
/// batch of fake samples. Returns the BCE loss before the update.
pub fn train_discriminator_step(
    d: &mut Discriminator,
    adam: &mut Adam,
    real: &Matrix,
    fake: &Matrix,
    lr: f32,
) -> f32 {
    train_discriminator_step_pooled(d, adam, real, fake, lr, &Pool::serial())
}

/// [`train_discriminator_step`] with every matrix product fanned out to
/// `pool` (the paper's two-level parallelism, now covering the backward
/// pass). Bit-identical to the serial step for every worker count.
pub fn train_discriminator_step_pooled(
    d: &mut Discriminator,
    adam: &mut Adam,
    real: &Matrix,
    fake: &Matrix,
    lr: f32,
    pool: &Pool,
) -> f32 {
    let mut ws = TrainWorkspace::default();
    train_discriminator_step_ws(d, adam, real, fake, lr, &mut ws, pool)
}

/// [`train_discriminator_step_pooled`] over a recycled [`TrainWorkspace`]:
/// the zero-allocation steady-state path of the training loop.
/// Bit-identical to the allocating step.
pub fn train_discriminator_step_ws(
    d: &mut Discriminator,
    adam: &mut Adam,
    real: &Matrix,
    fake: &Matrix,
    lr: f32,
    ws: &mut TrainWorkspace,
    pool: &Pool,
) -> f32 {
    d.net.forward_cached_ws(real, &mut ws.cache_a, pool);
    d.net.forward_cached_ws(fake, &mut ws.cache_b, pool);
    let loss_val = loss::d_bce_loss_into(
        ws.cache_a.output(),
        ws.cache_b.output(),
        &mut ws.d_real,
        &mut ws.d_fake,
    );
    d.net.backward_ws(
        real,
        &ws.cache_a,
        &ws.d_real,
        &mut ws.grads,
        &mut ws.scratch,
        None,
        pool,
    );
    d.net.backward_ws(
        fake,
        &ws.cache_b,
        &ws.d_fake,
        &mut ws.grads_aux,
        &mut ws.scratch,
        None,
        pool,
    );
    ws.grads.accumulate(&ws.grads_aux);
    adam.step(&mut d.net, &ws.grads, lr);
    loss_val
}

/// One generator step against a (frozen) discriminator for the latent batch
/// `z`, under the given loss variant. Returns the generator loss before the
/// update.
pub fn train_generator_step(
    g: &mut Generator,
    d: &Discriminator,
    adam: &mut Adam,
    z: &Matrix,
    lr: f32,
    kind: GanLoss,
) -> f32 {
    train_generator_step_pooled(g, d, adam, z, lr, kind, &Pool::serial())
}

/// [`train_generator_step`] with every matrix product fanned out to `pool`.
/// Bit-identical to the serial step for every worker count.
pub fn train_generator_step_pooled(
    g: &mut Generator,
    d: &Discriminator,
    adam: &mut Adam,
    z: &Matrix,
    lr: f32,
    kind: GanLoss,
    pool: &Pool,
) -> f32 {
    let mut ws = TrainWorkspace::default();
    train_generator_step_ws(g, d, adam, z, lr, kind, &mut ws, pool)
}

/// [`train_generator_step_pooled`] over a recycled [`TrainWorkspace`]: the
/// zero-allocation steady-state path. Backprop through the frozen
/// discriminator uses the input-gradient-only pass — its weight gradients
/// were always discarded, so skipping the `xᵀ·δ` product of every D layer
/// changes nothing observable and removes ~a third of the step's flops.
#[allow(clippy::too_many_arguments)] // mirrors the allocating step + workspace
pub fn train_generator_step_ws(
    g: &mut Generator,
    d: &Discriminator,
    adam: &mut Adam,
    z: &Matrix,
    lr: f32,
    kind: GanLoss,
    ws: &mut TrainWorkspace,
    pool: &Pool,
) -> f32 {
    g.net.forward_cached_ws(z, &mut ws.cache_a, pool);
    d.net.forward_cached_ws(ws.cache_a.output(), &mut ws.cache_b, pool);
    let loss_val = loss::g_loss_into(kind, ws.cache_b.output(), &mut ws.d_fake);
    // Backprop through the discriminator to images, then through G.
    d.net.backward_input_ws(&ws.cache_b, &ws.d_fake, &mut ws.scratch, &mut ws.dx, pool);
    g.net.backward_ws(z, &ws.cache_a, &ws.dx, &mut ws.grads, &mut ws.scratch, None, pool);
    adam.step(&mut g.net, &ws.grads, lr);
    loss_val
}

/// Discriminator BCE loss on given batches without updating anything
/// (used for fitness evaluation).
pub fn discriminator_loss(d: &Discriminator, real: &Matrix, fake: &Matrix) -> f32 {
    let z_real = d.logits(real);
    let z_fake = d.logits(fake);
    loss::d_bce_loss(&z_real, &z_fake).0
}

/// Generator loss against a discriminator without updating anything.
pub fn generator_loss(g: &Generator, d: &Discriminator, z: &Matrix, kind: GanLoss) -> f32 {
    let fake = g.generate(z);
    let logits = d.logits(&fake);
    loss::g_loss(kind, &logits).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let cfg = NetworkConfig::paper_mnist();
        assert_eq!(cfg.generator_dims(), vec![64, 256, 256, 784]);
        assert_eq!(cfg.discriminator_dims(), vec![784, 256, 256, 1]);
        assert_eq!(cfg.activation, Activation::Tanh);
    }

    #[test]
    fn generator_outputs_are_bounded() {
        let mut rng = Rng64::seed_from(1);
        let cfg = NetworkConfig::tiny(16);
        let g = Generator::new(&cfg, &mut rng);
        let x = g.sample(10, &mut rng);
        assert_eq!(x.shape(), (10, 16));
        assert!(x.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn discriminator_logit_shape() {
        let mut rng = Rng64::seed_from(2);
        let cfg = NetworkConfig::tiny(16);
        let d = Discriminator::new(&cfg, &mut rng);
        let x = rng.uniform_matrix(7, 16, -1.0, 1.0);
        assert_eq!(d.logits(&x).shape(), (7, 1));
    }

    /// The discriminator must learn to separate two trivially separable
    /// distributions within a few hundred steps.
    #[test]
    fn discriminator_learns_separable_data() {
        let mut rng = Rng64::seed_from(3);
        let cfg = NetworkConfig::tiny(8);
        let mut d = Discriminator::new(&cfg, &mut rng);
        let mut adam = Adam::new(d.net.param_count());
        let real = Matrix::full(32, 8, 0.8);
        let fake = Matrix::full(32, 8, -0.8);
        let initial = discriminator_loss(&d, &real, &fake);
        for _ in 0..200 {
            train_discriminator_step(&mut d, &mut adam, &real, &fake, 1e-2);
        }
        let trained = discriminator_loss(&d, &real, &fake);
        assert!(trained < initial * 0.2, "D failed to learn: {initial} -> {trained}");
    }

    /// The generator must learn to fool a frozen discriminator.
    #[test]
    fn generator_learns_to_fool_frozen_discriminator() {
        let mut rng = Rng64::seed_from(4);
        let cfg = NetworkConfig::tiny(8);
        let mut d = Discriminator::new(&cfg, &mut rng);
        let mut d_adam = Adam::new(d.net.param_count());
        // Teach D that "real" = +0.8 constant vectors.
        let real = Matrix::full(32, 8, 0.8);
        let noise = rng.uniform_matrix(32, 8, -1.0, 1.0);
        for _ in 0..200 {
            train_discriminator_step(&mut d, &mut d_adam, &real, &noise, 1e-2);
        }
        // Now train G against frozen D.
        let mut g = Generator::new(&cfg, &mut rng);
        let mut g_adam = Adam::new(g.net.param_count());
        let z = latent_batch(&mut rng, 32, cfg.latent_dim);
        let initial = generator_loss(&g, &d, &z, GanLoss::Heuristic);
        for _ in 0..300 {
            let zb = latent_batch(&mut rng, 32, cfg.latent_dim);
            train_generator_step(&mut g, &d, &mut g_adam, &zb, 1e-2, GanLoss::Heuristic);
        }
        let trained = generator_loss(&g, &d, &z, GanLoss::Heuristic);
        assert!(trained < initial, "G failed to reduce its loss: {initial} -> {trained}");
        // G's samples should now look like the "real" constant to D: mean
        // output should have moved toward +0.8.
        let samples = g.sample(64, &mut rng);
        let mean = lipiz_tensor::reduce::mean(&samples);
        assert!(mean > 0.2, "generator mean {mean} did not move toward data");
    }

    #[test]
    fn generator_step_leaves_discriminator_unchanged() {
        let mut rng = Rng64::seed_from(5);
        let cfg = NetworkConfig::tiny(8);
        let mut g = Generator::new(&cfg, &mut rng);
        let d = Discriminator::new(&cfg, &mut rng);
        let d_genome_before = d.net.genome().to_vec();
        let mut adam = Adam::new(g.net.param_count());
        let z = latent_batch(&mut rng, 8, cfg.latent_dim);
        train_generator_step(&mut g, &d, &mut adam, &z, 1e-3, GanLoss::Heuristic);
        assert_eq!(d.net.genome(), d_genome_before.as_slice());
    }

    #[test]
    fn latent_batch_is_standard_normalish() {
        let mut rng = Rng64::seed_from(6);
        let z = latent_batch(&mut rng, 2000, 4);
        let mean = lipiz_tensor::reduce::mean(&z);
        assert!(mean.abs() < 0.05, "latent mean {mean}");
    }

    #[test]
    fn gan_pair_has_consistent_dims() {
        let mut rng = Rng64::seed_from(7);
        let cfg = NetworkConfig::paper_mnist();
        let gan = Gan::new(&cfg, &mut rng);
        assert_eq!(gan.generator.net.output_dim(), gan.discriminator.net.input_dim());
        assert_eq!(
            gan.generator.net.param_count(),
            64 * 256 + 256 + 256 * 256 + 256 + 256 * 784 + 784
        );
    }
}
