//! Hand-rolled neural networks for GAN coevolution.
//!
//! The paper trains plain MLP GANs (Table I: 64-dim latent, two hidden
//! layers of 256 units, 784-dim output, tanh activations) with Adam. This
//! crate implements exactly that, from scratch:
//!
//! * [`mlp::Mlp`] — dense multi-layer perceptron with exact manual
//!   backpropagation (verified against finite differences in tests),
//! * [`loss`] — the GAN objectives used by Lipizzaner/Mustangs: binary
//!   cross-entropy for the discriminator, and the three generator objectives
//!   the Mustangs loss-mutation operator draws from (minimax/saturating,
//!   non-saturating heuristic, least-squares),
//! * [`adam::Adam`] — the Adam optimizer over a network's flat parameter
//!   (genome) vector,
//! * [`gan`] — generator/discriminator factories matching Table I, latent
//!   sampling, and the [`gan::Gan`] pair used by the trainer.
//!
//! Networks expose their parameters as a flat `Vec<f32>` *genome*: the
//! coevolutionary layer (crate `lipiz-core`) treats networks as individuals,
//! and the distributed layer (`lipiz-runtime`) ships genomes between cells as
//! byte buffers.
//!
//! # Example
//!
//! ```
//! use lipiz_nn::{gan, Adam, Discriminator, GanLoss, Generator, NetworkConfig};
//! use lipiz_tensor::Rng64;
//!
//! let mut rng = Rng64::seed_from(1);
//! let cfg = NetworkConfig::tiny(8);
//! let mut g = Generator::new(&cfg, &mut rng);
//! let d = Discriminator::new(&cfg, &mut rng);
//! let z = gan::latent_batch(&mut rng, 16, g.latent_dim());
//! let mut adam = Adam::new(g.net.param_count());
//!
//! let before = gan::generator_loss(&g, &d, &z, GanLoss::Heuristic);
//! for _ in 0..20 {
//!     gan::train_generator_step(&mut g, &d, &mut adam, &z, 1e-2, GanLoss::Heuristic);
//! }
//! let after = gan::generator_loss(&g, &d, &z, GanLoss::Heuristic);
//! assert!(after < before, "G failed to fool the frozen D: {before} -> {after}");
//! ```

pub mod activation;
pub mod adam;
pub mod gan;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod mlp;

pub use activation::Activation;
pub use adam::{Adam, AdamState};
pub use gan::{Discriminator, Gan, Generator, NetworkConfig, TrainWorkspace};
pub use loss::GanLoss;
pub use mlp::{DeltaScratch, Grads, LayerCache, LayerSpec, Mlp};
