//! Weight initialization schemes.

use lipiz_tensor::{Matrix, Rng64};

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the PyTorch default family for `nn.Linear` layers with
/// tanh-shaped activations, matching the original implementation the paper
/// parallelizes.
pub fn glorot_uniform(rng: &mut Rng64, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.uniform_matrix(fan_in, fan_out, -a, a)
}

/// Scaled normal initialization: `N(0, sqrt(2 / fan_in))` (He et al.).
///
/// Offered for the leaky-ReLU ablation configurations.
pub fn he_normal(rng: &mut Rng64, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    rng.normal_matrix(fan_in, fan_out, 0.0, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_respects_bound() {
        let mut rng = Rng64::seed_from(3);
        let w = glorot_uniform(&mut rng, 100, 50);
        let bound = (6.0 / 150.0f32).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        assert_eq!(w.shape(), (100, 50));
    }

    #[test]
    fn glorot_is_not_degenerate() {
        let mut rng = Rng64::seed_from(4);
        let w = glorot_uniform(&mut rng, 64, 64);
        let mean: f32 = w.as_slice().iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let nonzero = w.as_slice().iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(nonzero, w.len());
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = Rng64::seed_from(5);
        let w = he_normal(&mut rng, 200, 100);
        let var: f32 = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng64::seed_from(6);
        let mut b = Rng64::seed_from(6);
        let wa = glorot_uniform(&mut a, 8, 8);
        let wb = glorot_uniform(&mut b, 8, 8);
        assert_eq!(wa.as_slice(), wb.as_slice());
    }
}
