//! Dense multi-layer perceptron with exact manual backpropagation.

use crate::activation::Activation;
use crate::init;
use lipiz_tensor::{ops, Matrix, Pool, Rng64};

/// Shape and activation of one dense layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Input width.
    pub fan_in: usize,
    /// Output width.
    pub fan_out: usize,
    /// Activation applied to the affine output.
    pub act: Activation,
}

/// A feed-forward network of dense layers: `a_{i+1} = act_i(a_i W_i + b_i)`.
///
/// Parameters are owned per layer but are *logically* a single flat genome
/// vector laid out as `[W_0 (row-major), b_0, W_1, b_1, ...]`; see
/// [`Mlp::genome`] / [`Mlp::load_genome`] / [`Mlp::visit_params_mut`]. The
/// coevolutionary layer exchanges and replaces networks through that genome
/// view.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    specs: Vec<LayerSpec>,
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
}

/// Per-layer activations cached by [`Mlp::forward_cached`] for the backward
/// pass. `activations[0]` is the input batch; `activations[i + 1]` is the
/// output of layer `i`.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    pub activations: Vec<Matrix>,
}

impl ForwardCache {
    /// The network output (last activation).
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("empty forward cache")
    }
}

/// Flat gradient vector aligned with the genome layout of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct Grads {
    flat: Vec<f32>,
}

impl Grads {
    /// Zero gradients for a network with `n` parameters.
    pub fn zeros(n: usize) -> Self {
        Self { flat: vec![0.0; n] }
    }

    /// The flat gradient data (genome order).
    pub fn as_slice(&self) -> &[f32] {
        &self.flat
    }

    /// Mutable flat gradient data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.flat
    }

    /// Reset to zero, keeping the allocation.
    pub fn zero(&mut self) {
        self.flat.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other` (for gradient accumulation across adversaries).
    pub fn accumulate(&mut self, other: &Grads) {
        assert_eq!(self.flat.len(), other.flat.len(), "grad length");
        ops::axpy(1.0, &other.flat, &mut self.flat);
    }

    /// Scale all gradients by `s`.
    pub fn scale(&mut self, s: f32) {
        self.flat.iter_mut().for_each(|v| *v *= s);
    }

    /// Euclidean norm (used for gradient-explosion diagnostics).
    pub fn norm(&self) -> f32 {
        lipiz_tensor::reduce::norm2(&self.flat)
    }
}

impl Mlp {
    /// Build a network from layer specs with Glorot-uniform weights.
    ///
    /// # Panics
    /// Panics if consecutive specs do not chain (`fan_out != next fan_in`).
    pub fn new(specs: Vec<LayerSpec>, rng: &mut Rng64) -> Self {
        assert!(!specs.is_empty(), "Mlp needs at least one layer");
        for w in specs.windows(2) {
            assert_eq!(
                w[0].fan_out, w[1].fan_in,
                "layer specs do not chain: {} -> {}",
                w[0].fan_out, w[1].fan_in
            );
        }
        let weights: Vec<Matrix> =
            specs.iter().map(|s| init::glorot_uniform(rng, s.fan_in, s.fan_out)).collect();
        let biases: Vec<Vec<f32>> = specs.iter().map(|s| vec![0.0; s.fan_out]).collect();
        Self { specs, weights, biases }
    }

    /// Build from a width list: `dims = [in, h1, ..., out]`, using `hidden`
    /// activation everywhere except the final layer which uses `output`.
    pub fn from_dims(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut Rng64,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let n = dims.len() - 1;
        let specs = (0..n)
            .map(|i| LayerSpec {
                fan_in: dims[i],
                fan_out: dims[i + 1],
                act: if i + 1 == n { output } else { hidden },
            })
            .collect();
        Self::new(specs, rng)
    }

    /// Layer specifications.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.specs.len()
    }

    /// Input width of the network.
    pub fn input_dim(&self) -> usize {
        self.specs[0].fan_in
    }

    /// Output width of the network.
    pub fn output_dim(&self) -> usize {
        self.specs.last().unwrap().fan_out
    }

    /// Total number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.specs.iter().map(|s| s.fan_in * s.fan_out + s.fan_out).sum()
    }

    /// Forward pass without caching (inference).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_pooled(x, &Pool::serial())
    }

    /// Forward pass using `pool` for the matrix products (two-level
    /// parallelism inside a rank).
    pub fn forward_pooled(&self, x: &Matrix, pool: &Pool) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "input width");
        let mut a = ops::matmul_pooled(x, &self.weights[0], pool);
        ops::add_row_vector(&mut a, &self.biases[0]);
        self.specs[0].act.apply_inplace(&mut a);
        for i in 1..self.specs.len() {
            let mut next = ops::matmul_pooled(&a, &self.weights[i], pool);
            ops::add_row_vector(&mut next, &self.biases[i]);
            self.specs[i].act.apply_inplace(&mut next);
            a = next;
        }
        a
    }

    /// Forward pass that caches every activation for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        self.forward_cached_pooled(x, &Pool::serial())
    }

    /// Caching forward pass with pooled matrix products. Bit-identical to
    /// [`Mlp::forward_cached`] for every worker count.
    pub fn forward_cached_pooled(&self, x: &Matrix, pool: &Pool) -> ForwardCache {
        assert_eq!(x.cols(), self.input_dim(), "input width");
        let mut activations = Vec::with_capacity(self.specs.len() + 1);
        activations.push(x.clone());
        for i in 0..self.specs.len() {
            let mut a = ops::matmul_pooled(activations.last().unwrap(), &self.weights[i], pool);
            ops::add_row_vector(&mut a, &self.biases[i]);
            self.specs[i].act.apply_inplace(&mut a);
            activations.push(a);
        }
        ForwardCache { activations }
    }

    /// Backward pass.
    ///
    /// `d_out` is `∂L/∂output` (same shape as the network output). Returns
    /// the flat parameter gradients and `∂L/∂input` (needed to continue
    /// backpropagation into the generator when training through the
    /// discriminator).
    pub fn backward(&self, cache: &ForwardCache, d_out: &Matrix) -> (Grads, Matrix) {
        self.backward_pooled(cache, d_out, &Pool::serial())
    }

    /// Backward pass with pooled matrix products (the two transposed
    /// gradient products dominate the train routine — Table IV). Gradients
    /// are bit-identical to [`Mlp::backward`] for every worker count.
    pub fn backward_pooled(
        &self,
        cache: &ForwardCache,
        d_out: &Matrix,
        pool: &Pool,
    ) -> (Grads, Matrix) {
        assert_eq!(
            cache.activations.len(),
            self.specs.len() + 1,
            "cache does not match network depth"
        );
        let mut grads = Grads::zeros(self.param_count());
        let mut delta = d_out.clone();
        // Walk layers in reverse, writing each layer's gradient block at its
        // genome offset.
        let offsets = self.layer_offsets();
        for i in (0..self.specs.len()).rev() {
            let out_act = &cache.activations[i + 1];
            self.specs[i].act.scale_by_derivative(out_act, &mut delta);
            let input_act = &cache.activations[i];
            let dw = ops::matmul_at_b_pooled(input_act, &delta, pool);
            let (w_off, b_off) = offsets[i];
            let spec = self.specs[i];
            let wlen = spec.fan_in * spec.fan_out;
            grads.flat[w_off..w_off + wlen].copy_from_slice(dw.as_slice());
            // Bias gradient: column sums of delta.
            {
                let db = &mut grads.flat[b_off..b_off + spec.fan_out];
                for r in 0..delta.rows() {
                    for (g, &d) in db.iter_mut().zip(delta.row(r)) {
                        *g += d;
                    }
                }
            }
            if i > 0 {
                delta = ops::matmul_a_bt_pooled(&delta, &self.weights[i], pool);
            } else {
                // delta for the input: compute and return.
                let dx = ops::matmul_a_bt_pooled(&delta, &self.weights[0], pool);
                return (grads, dx);
            }
        }
        unreachable!("loop always returns at i == 0");
    }

    /// Genome offsets of each layer: `(weight_offset, bias_offset)`.
    fn layer_offsets(&self) -> Vec<(usize, usize)> {
        let mut offsets = Vec::with_capacity(self.specs.len());
        let mut off = 0;
        for s in &self.specs {
            let w_off = off;
            off += s.fan_in * s.fan_out;
            let b_off = off;
            off += s.fan_out;
            offsets.push((w_off, b_off));
        }
        offsets
    }

    /// Copy all parameters out as a flat genome vector.
    pub fn genome(&self) -> Vec<f32> {
        let mut g = Vec::with_capacity(self.param_count());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            g.extend_from_slice(w.as_slice());
            g.extend_from_slice(b);
        }
        g
    }

    /// Overwrite all parameters from a flat genome vector.
    ///
    /// # Panics
    /// Panics if `genome.len() != self.param_count()`.
    pub fn load_genome(&mut self, genome: &[f32]) {
        assert_eq!(genome.len(), self.param_count(), "genome length");
        let mut off = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let wlen = w.len();
            w.as_mut_slice().copy_from_slice(&genome[off..off + wlen]);
            off += wlen;
            let blen = b.len();
            b.copy_from_slice(&genome[off..off + blen]);
            off += blen;
        }
    }

    /// Visit every parameter mutably in genome order; `f(index, param)`.
    ///
    /// This is the optimizer's update hook: it avoids materializing the
    /// genome copy on every Adam step.
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(usize, &mut f32)) {
        let mut idx = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            for v in w.as_mut_slice() {
                f(idx, v);
                idx += 1;
            }
            for v in b {
                f(idx, v);
                idx += 1;
            }
        }
    }

    /// True when every parameter is finite.
    pub fn all_finite(&self) -> bool {
        self.weights.iter().all(|w| w.all_finite())
            && self.biases.iter().all(|b| b.iter().all(|v| v.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::reduce;

    fn tiny_net(seed: u64) -> Mlp {
        let mut rng = Rng64::seed_from(seed);
        Mlp::from_dims(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = tiny_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(net.num_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_specs_panic() {
        let mut rng = Rng64::seed_from(1);
        Mlp::new(
            vec![
                LayerSpec { fan_in: 3, fan_out: 4, act: Activation::Tanh },
                LayerSpec { fan_in: 5, fan_out: 2, act: Activation::Identity },
            ],
            &mut rng,
        );
    }

    #[test]
    fn forward_matches_cached_output() {
        let net = tiny_net(2);
        let mut rng = Rng64::seed_from(3);
        let x = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let y = net.forward(&x);
        let cache = net.forward_cached(&x);
        assert!(y.max_abs_diff(cache.output()) < 1e-7);
        assert_eq!(y.shape(), (4, 2));
    }

    #[test]
    fn pooled_forward_matches_serial() {
        let mut rng = Rng64::seed_from(11);
        let net =
            Mlp::from_dims(&[32, 64, 16], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(32, 32, -1.0, 1.0);
        let serial = net.forward(&x);
        let pooled = net.forward_pooled(&x, &Pool::new(3));
        assert!(serial.max_abs_diff(&pooled) < 1e-6);
    }

    #[test]
    fn pooled_backward_is_bit_identical_to_serial() {
        // The drivers assert bit-identical genomes across worker counts, so
        // the pooled backward pass must not drift by a single bit.
        let mut rng = Rng64::seed_from(12);
        let net =
            Mlp::from_dims(&[24, 48, 32], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(16, 24, -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone();
        let (grads, dx) = net.backward(&cache, &d_out);
        for workers in 1..=4 {
            let pool = Pool::new(workers);
            let pooled_cache = net.forward_cached_pooled(&x, &pool);
            assert_eq!(pooled_cache.output().as_slice(), cache.output().as_slice());
            let (pg, pdx) = net.backward_pooled(&pooled_cache, &d_out, &pool);
            assert_eq!(pg.as_slice(), grads.as_slice(), "grads drift at {workers} workers");
            assert_eq!(pdx.as_slice(), dx.as_slice(), "dx drift at {workers} workers");
        }
    }

    #[test]
    fn genome_round_trip() {
        let net = tiny_net(4);
        let g = net.genome();
        assert_eq!(g.len(), net.param_count());
        let mut other = tiny_net(99);
        assert_ne!(other.genome(), g);
        other.load_genome(&g);
        assert_eq!(other.genome(), g);
        // Identical genomes => identical outputs.
        let mut rng = Rng64::seed_from(5);
        let x = rng.uniform_matrix(2, 3, -1.0, 1.0);
        assert!(net.forward(&x).max_abs_diff(&other.forward(&x)) < 1e-7);
    }

    #[test]
    fn visit_params_matches_genome_order() {
        let mut net = tiny_net(6);
        let g = net.genome();
        let mut seen = vec![];
        net.visit_params_mut(|i, v| {
            assert_eq!(seen.len(), i);
            seen.push(*v);
        });
        assert_eq!(seen, g);
    }

    /// Finite-difference check of the full backward pass: the analytic
    /// gradient of `L = sum(output²)/2` must match numeric perturbation of
    /// every parameter.
    #[test]
    fn backward_matches_finite_differences() {
        let net = tiny_net(7);
        let mut rng = Rng64::seed_from(8);
        let x = rng.uniform_matrix(3, 3, -1.0, 1.0);

        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone(); // dL/dout for L = 0.5*sum(out^2)
        let (grads, _dx) = net.backward(&cache, &d_out);

        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };

        let eps = 1e-3f32;
        let n = net.param_count();
        // Check a deterministic subset of parameters plus all biases.
        for idx in (0..n).step_by(7) {
            let mut plus = net.clone();
            let mut minus = net.clone();
            plus.visit_params_mut(|i, v| {
                if i == idx {
                    *v += eps;
                }
            });
            minus.visit_params_mut(|i, v| {
                if i == idx {
                    *v -= eps;
                }
            });
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps as f64);
            let analytic = grads.as_slice()[idx] as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "param {idx}: numeric {numeric:.6} vs analytic {analytic:.6}"
            );
        }
        // The returned dx must also match perturbing the input.
        let (_, dx) = net.backward(&cache, &d_out);
        let mut x2 = x.clone();
        x2[(1, 2)] += eps;
        let y2 = net.forward(&x2);
        let l2: f64 = y2.as_slice().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum();
        let numeric = (l2 - loss(&net)) / eps as f64;
        assert!((numeric - dx[(1, 2)] as f64).abs() < 5e-3);
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut a = Grads::zeros(3);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut b = Grads::zeros(3);
        b.as_mut_slice().copy_from_slice(&[0.5, 0.5, 0.5]);
        a.accumulate(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
        assert!((Grads::zeros(2).norm() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn deep_network_gradient_flows() {
        let mut rng = Rng64::seed_from(20);
        let net = Mlp::from_dims(
            &[4, 8, 8, 8, 2],
            Activation::LeakyRelu(0.2),
            Activation::Sigmoid,
            &mut rng,
        );
        let x = rng.uniform_matrix(5, 4, -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = Matrix::full(5, 2, 1.0);
        let (grads, dx) = net.backward(&cache, &d_out);
        assert!(grads.norm() > 0.0, "gradient vanished entirely");
        assert_eq!(dx.shape(), (5, 4));
        assert!(reduce::norm2(dx.as_slice()) > 0.0);
    }
}
