//! Dense multi-layer perceptron with exact manual backpropagation.

use crate::activation::Activation;
use crate::init;
use lipiz_tensor::{ops, Matrix, Pool, Rng64};

/// Shape and activation of one dense layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Input width.
    pub fan_in: usize,
    /// Output width.
    pub fan_out: usize,
    /// Activation applied to the affine output.
    pub act: Activation,
}

/// A feed-forward network of dense layers: `a_{i+1} = act_i(a_i W_i + b_i)`.
///
/// All parameters live in **one contiguous `Vec<f32>` in genome order**
/// (`[W_0 (row-major), b_0, W_1, b_1, ...]`), with per-layer offsets into
/// it. The coevolutionary layer exchanges and replaces networks through
/// that flat view: [`Mlp::genome`] is a zero-copy borrow, [`Mlp::load_genome`]
/// a single `copy_from_slice`, and the optimizer updates the whole network
/// as one flat slice ([`Mlp::params_mut`]) — no per-layer gather or
/// scatter anywhere on the training path.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    specs: Vec<LayerSpec>,
    /// All weights and biases, flat in genome order.
    params: Vec<f32>,
    /// Per-layer `(weight_offset, bias_offset)` into `params`.
    offsets: Vec<(usize, usize)>,
}

/// Per-layer activations cached by [`Mlp::forward_cached`] for the backward
/// pass. `activations[0]` is the input batch; `activations[i + 1]` is the
/// output of layer `i`.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    pub activations: Vec<Matrix>,
}

impl ForwardCache {
    /// The network output (last activation).
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("empty forward cache")
    }
}

/// Reusable per-layer output activations for the workspace training path.
///
/// Unlike [`ForwardCache`] this does **not** store a copy of the input
/// batch (the backward pass receives it by reference), and its buffers are
/// recycled across steps: after the first use at a given shape,
/// [`Mlp::forward_cached_ws`] performs zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct LayerCache {
    /// `outs[i]` is the activated output of layer `i`.
    outs: Vec<Matrix>,
}

impl LayerCache {
    /// The network output (last layer's activation).
    ///
    /// # Panics
    /// Panics if no forward pass has filled the cache yet.
    pub fn output(&self) -> &Matrix {
        self.outs.last().expect("empty layer cache")
    }
}

/// Reusable delta ping-pong buffers for [`Mlp::backward_ws`]. One scratch
/// serves networks of any shape (buffers are resized in place).
#[derive(Debug, Clone, Default)]
pub struct DeltaScratch {
    cur: Matrix,
    next: Matrix,
}

/// Flat gradient vector aligned with the genome layout of an [`Mlp`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Grads {
    flat: Vec<f32>,
}

impl Grads {
    /// Zero gradients for a network with `n` parameters.
    pub fn zeros(n: usize) -> Self {
        Self { flat: vec![0.0; n] }
    }

    /// The flat gradient data (genome order).
    pub fn as_slice(&self) -> &[f32] {
        &self.flat
    }

    /// Mutable flat gradient data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.flat
    }

    /// Reset to zero, keeping the allocation.
    pub fn zero(&mut self) {
        self.flat.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other` (for gradient accumulation across adversaries).
    pub fn accumulate(&mut self, other: &Grads) {
        assert_eq!(self.flat.len(), other.flat.len(), "grad length");
        ops::axpy(1.0, &other.flat, &mut self.flat);
    }

    /// Scale all gradients by `s`.
    pub fn scale(&mut self, s: f32) {
        self.flat.iter_mut().for_each(|v| *v *= s);
    }

    /// Euclidean norm (used for gradient-explosion diagnostics).
    pub fn norm(&self) -> f32 {
        lipiz_tensor::reduce::norm2(&self.flat)
    }
}

impl Mlp {
    /// Build a network from layer specs with Glorot-uniform weights.
    ///
    /// # Panics
    /// Panics if consecutive specs do not chain (`fan_out != next fan_in`).
    pub fn new(specs: Vec<LayerSpec>, rng: &mut Rng64) -> Self {
        assert!(!specs.is_empty(), "Mlp needs at least one layer");
        for w in specs.windows(2) {
            assert_eq!(
                w[0].fan_out, w[1].fan_in,
                "layer specs do not chain: {} -> {}",
                w[0].fan_out, w[1].fan_in
            );
        }
        let offsets = compute_offsets(&specs);
        let total: usize = specs.iter().map(|s| s.fan_in * s.fan_out + s.fan_out).sum();
        let mut params = vec![0.0f32; total];
        // Fill weights layer by layer in genome order (biases stay zero);
        // the RNG draw sequence is identical to per-layer initialization.
        for (spec, &(w_off, _)) in specs.iter().zip(&offsets) {
            let w = init::glorot_uniform(rng, spec.fan_in, spec.fan_out);
            params[w_off..w_off + w.len()].copy_from_slice(w.as_slice());
        }
        Self { specs, params, offsets }
    }

    /// Build from a width list: `dims = [in, h1, ..., out]`, using `hidden`
    /// activation everywhere except the final layer which uses `output`.
    pub fn from_dims(
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut Rng64,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let n = dims.len() - 1;
        let specs = (0..n)
            .map(|i| LayerSpec {
                fan_in: dims[i],
                fan_out: dims[i + 1],
                act: if i + 1 == n { output } else { hidden },
            })
            .collect();
        Self::new(specs, rng)
    }

    /// Layer specifications.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.specs.len()
    }

    /// Input width of the network.
    pub fn input_dim(&self) -> usize {
        self.specs[0].fan_in
    }

    /// Output width of the network.
    pub fn output_dim(&self) -> usize {
        self.specs.last().unwrap().fan_out
    }

    /// Total number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Row-major weight block of layer `i` (`fan_in × fan_out`).
    #[inline]
    pub fn weight(&self, i: usize) -> &[f32] {
        let (w_off, b_off) = self.offsets[i];
        &self.params[w_off..b_off]
    }

    /// Bias vector of layer `i` (length `fan_out`).
    #[inline]
    pub fn bias(&self, i: usize) -> &[f32] {
        let (_, b_off) = self.offsets[i];
        &self.params[b_off..b_off + self.specs[i].fan_out]
    }

    /// Genome offsets of each layer: `(weight_offset, bias_offset)`.
    pub fn layer_offsets(&self) -> &[(usize, usize)] {
        &self.offsets
    }

    /// Forward pass without caching (inference).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_pooled(x, &Pool::serial())
    }

    /// Forward pass using `pool` for the matrix products (two-level
    /// parallelism inside a rank).
    pub fn forward_pooled(&self, x: &Matrix, pool: &Pool) -> Matrix {
        let mut out = Matrix::default();
        let mut scratch = Matrix::default();
        self.forward_into(x, &mut out, &mut scratch, pool);
        out
    }

    /// Forward pass into recycled buffers: the result lands in `out`,
    /// `scratch` holds intermediate activations (ping-pong). Performs zero
    /// heap allocations once both buffers have warmed up to the network's
    /// widest layer.
    pub fn forward_into(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        scratch: &mut Matrix,
        pool: &Pool,
    ) {
        assert_eq!(x.cols(), self.input_dim(), "input width");
        let ln = self.specs.len();
        // Alternate targets so the final layer writes `out`.
        let mut a: &mut Matrix = scratch;
        let mut b: &mut Matrix = out;
        if ln % 2 == 1 {
            std::mem::swap(&mut a, &mut b);
        }
        self.layer_fused(0, x, a, pool);
        for i in 1..ln {
            self.layer_fused(i, a, b, pool);
            std::mem::swap(&mut a, &mut b);
        }
    }

    /// One fused dense layer: `dst = act_i(src · W_i + b_i)`.
    fn layer_fused(&self, i: usize, src: &Matrix, dst: &mut Matrix, pool: &Pool) {
        let spec = self.specs[i];
        ops::matmul_bias_act_into(
            src,
            self.weight(i),
            spec.fan_out,
            self.bias(i),
            spec.act.kind(),
            dst,
            pool,
        );
    }

    /// Forward pass that caches every activation for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> ForwardCache {
        self.forward_cached_pooled(x, &Pool::serial())
    }

    /// Caching forward pass with pooled matrix products. Bit-identical to
    /// [`Mlp::forward_cached`] for every worker count.
    pub fn forward_cached_pooled(&self, x: &Matrix, pool: &Pool) -> ForwardCache {
        let mut cache = LayerCache::default();
        self.forward_cached_ws(x, &mut cache, pool);
        let mut activations = Vec::with_capacity(self.specs.len() + 1);
        activations.push(x.clone());
        activations.extend(cache.outs);
        ForwardCache { activations }
    }

    /// Caching forward pass into a recycled [`LayerCache`] — the
    /// zero-allocation path of the training loop. Bit-identical to
    /// [`Mlp::forward_cached`]; the input batch is *not* copied (pass it to
    /// [`Mlp::backward_ws`] alongside the cache).
    pub fn forward_cached_ws(&self, x: &Matrix, cache: &mut LayerCache, pool: &Pool) {
        assert_eq!(x.cols(), self.input_dim(), "input width");
        let ln = self.specs.len();
        cache.outs.resize_with(ln, Matrix::default);
        for i in 0..ln {
            let (head, tail) = cache.outs.split_at_mut(i);
            let src = if i == 0 { x } else { &head[i - 1] };
            self.layer_fused(i, src, &mut tail[0], pool);
        }
    }

    /// Backward pass.
    ///
    /// `d_out` is `∂L/∂output` (same shape as the network output). Returns
    /// the flat parameter gradients and `∂L/∂input` (needed to continue
    /// backpropagation into the generator when training through the
    /// discriminator).
    pub fn backward(&self, cache: &ForwardCache, d_out: &Matrix) -> (Grads, Matrix) {
        self.backward_pooled(cache, d_out, &Pool::serial())
    }

    /// Backward pass with pooled matrix products (the two transposed
    /// gradient products dominate the train routine — Table IV). Gradients
    /// are bit-identical to [`Mlp::backward`] for every worker count.
    pub fn backward_pooled(
        &self,
        cache: &ForwardCache,
        d_out: &Matrix,
        pool: &Pool,
    ) -> (Grads, Matrix) {
        assert_eq!(
            cache.activations.len(),
            self.specs.len() + 1,
            "cache does not match network depth"
        );
        let (x, outs) = cache.activations.split_first().expect("non-empty cache");
        let mut grads = Grads::default();
        let mut scratch = DeltaScratch::default();
        let mut dx = Matrix::default();
        self.backward_core(x, outs, d_out, &mut grads, &mut scratch, Some(&mut dx), pool);
        (grads, dx)
    }

    /// Backward pass into recycled buffers — the zero-allocation training
    /// path. `x` is the input batch the cache was filled from. When `dx` is
    /// `Some`, `∂L/∂input` is written into it. Bit-identical to
    /// [`Mlp::backward`].
    ///
    /// # Panics
    /// Panics if the cache depth does not match the network.
    #[allow(clippy::too_many_arguments)] // the full workspace surface of one backward pass
    pub fn backward_ws(
        &self,
        x: &Matrix,
        cache: &LayerCache,
        d_out: &Matrix,
        grads: &mut Grads,
        scratch: &mut DeltaScratch,
        dx: Option<&mut Matrix>,
        pool: &Pool,
    ) {
        assert_eq!(cache.outs.len(), self.specs.len(), "cache does not match network depth");
        self.backward_core(x, &cache.outs, d_out, grads, scratch, dx, pool);
    }

    /// Input-gradient-only backward pass: computes `∂L/∂input` without
    /// materializing any parameter gradients. This is what the generator
    /// step needs from the (frozen) discriminator — skipping the weight
    /// gradients drops the `xᵀ·δ` product of every layer. The produced `dx`
    /// is bit-identical to the one [`Mlp::backward`] returns.
    pub fn backward_input_ws(
        &self,
        cache: &LayerCache,
        d_out: &Matrix,
        scratch: &mut DeltaScratch,
        dx: &mut Matrix,
        pool: &Pool,
    ) {
        assert_eq!(cache.outs.len(), self.specs.len(), "cache does not match network depth");
        scratch.cur.copy_from(d_out);
        for i in (0..self.specs.len()).rev() {
            self.specs[i].act.scale_by_derivative(&cache.outs[i], &mut scratch.cur);
            let spec = self.specs[i];
            if i > 0 {
                ops::matmul_a_bt_view_into(
                    &scratch.cur,
                    self.weight(i),
                    spec.fan_in,
                    &mut scratch.next,
                    pool,
                );
                std::mem::swap(&mut scratch.cur, &mut scratch.next);
            } else {
                ops::matmul_a_bt_view_into(&scratch.cur, self.weight(0), spec.fan_in, dx, pool);
            }
        }
    }

    /// Shared backward walk: writes each layer's gradient block directly at
    /// its genome offset (weight gradients land in place via the slice
    /// kernel — no intermediate matrix, no copy).
    #[allow(clippy::too_many_arguments)] // internal: the ws entry points repackage this
    fn backward_core(
        &self,
        x: &Matrix,
        outs: &[Matrix],
        d_out: &Matrix,
        grads: &mut Grads,
        scratch: &mut DeltaScratch,
        mut dx: Option<&mut Matrix>,
        pool: &Pool,
    ) {
        grads.flat.resize(self.param_count(), 0.0);
        scratch.cur.copy_from(d_out);
        for i in (0..self.specs.len()).rev() {
            self.specs[i].act.scale_by_derivative(&outs[i], &mut scratch.cur);
            let input = if i == 0 { x } else { &outs[i - 1] };
            let (w_off, b_off) = self.offsets[i];
            let spec = self.specs[i];
            let wlen = spec.fan_in * spec.fan_out;
            ops::matmul_at_b_slice_into(
                input,
                &scratch.cur,
                &mut grads.flat[w_off..w_off + wlen],
                pool,
            );
            // Bias gradient: column sums of delta.
            {
                let db = &mut grads.flat[b_off..b_off + spec.fan_out];
                db.fill(0.0);
                for r in 0..scratch.cur.rows() {
                    for (g, &d) in db.iter_mut().zip(scratch.cur.row(r)) {
                        *g += d;
                    }
                }
            }
            if i > 0 {
                ops::matmul_a_bt_view_into(
                    &scratch.cur,
                    self.weight(i),
                    spec.fan_in,
                    &mut scratch.next,
                    pool,
                );
                std::mem::swap(&mut scratch.cur, &mut scratch.next);
            } else if let Some(dx) = dx.take() {
                ops::matmul_a_bt_view_into(&scratch.cur, self.weight(0), spec.fan_in, dx, pool);
            }
        }
    }

    /// The flat parameter vector in genome order — **zero-copy**: snapshot,
    /// checkpoint capture, and selection exchange borrow this directly.
    pub fn genome(&self) -> &[f32] {
        &self.params
    }

    /// Mutable flat parameter vector (the optimizer's update surface).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Overwrite all parameters from a flat genome vector (one
    /// `copy_from_slice`).
    ///
    /// # Panics
    /// Panics if `genome.len() != self.param_count()`.
    pub fn load_genome(&mut self, genome: &[f32]) {
        assert_eq!(genome.len(), self.param_count(), "genome length");
        self.params.copy_from_slice(genome);
    }

    /// Visit every parameter mutably in genome order; `f(index, param)`.
    ///
    /// Kept for gradient-check tooling; the optimizer now updates the flat
    /// slice directly ([`Mlp::params_mut`]).
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(usize, &mut f32)) {
        for (i, v) in self.params.iter_mut().enumerate() {
            f(i, v);
        }
    }

    /// True when every parameter is finite.
    pub fn all_finite(&self) -> bool {
        self.params.iter().all(|v| v.is_finite())
    }
}

/// Genome offsets for a spec list: `(weight_offset, bias_offset)` per layer.
fn compute_offsets(specs: &[LayerSpec]) -> Vec<(usize, usize)> {
    let mut offsets = Vec::with_capacity(specs.len());
    let mut off = 0;
    for s in specs {
        let w_off = off;
        off += s.fan_in * s.fan_out;
        let b_off = off;
        off += s.fan_out;
        offsets.push((w_off, b_off));
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_tensor::reduce;

    fn tiny_net(seed: u64) -> Mlp {
        let mut rng = Rng64::seed_from(seed);
        Mlp::from_dims(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = tiny_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(net.num_layers(), 2);
    }

    #[test]
    fn layer_views_partition_the_genome() {
        let net = tiny_net(1);
        // weight(0) ∥ bias(0) ∥ weight(1) ∥ bias(1) must tile the genome.
        let mut rebuilt: Vec<f32> = Vec::new();
        for i in 0..net.num_layers() {
            rebuilt.extend_from_slice(net.weight(i));
            rebuilt.extend_from_slice(net.bias(i));
        }
        assert_eq!(rebuilt, net.genome());
        assert_eq!(net.layer_offsets(), &[(0, 15), (20, 30)]);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_specs_panic() {
        let mut rng = Rng64::seed_from(1);
        Mlp::new(
            vec![
                LayerSpec { fan_in: 3, fan_out: 4, act: Activation::Tanh },
                LayerSpec { fan_in: 5, fan_out: 2, act: Activation::Identity },
            ],
            &mut rng,
        );
    }

    #[test]
    fn forward_matches_cached_output() {
        let net = tiny_net(2);
        let mut rng = Rng64::seed_from(3);
        let x = rng.uniform_matrix(4, 3, -1.0, 1.0);
        let y = net.forward(&x);
        let cache = net.forward_cached(&x);
        assert!(y.max_abs_diff(cache.output()) < 1e-7);
        assert_eq!(y.shape(), (4, 2));
    }

    #[test]
    fn pooled_forward_matches_serial() {
        let mut rng = Rng64::seed_from(11);
        let net =
            Mlp::from_dims(&[32, 64, 16], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(32, 32, -1.0, 1.0);
        let serial = net.forward(&x);
        let pooled = net.forward_pooled(&x, &Pool::uncapped(3));
        assert!(serial.max_abs_diff(&pooled) < 1e-6);
    }

    #[test]
    fn pooled_backward_is_bit_identical_to_serial() {
        // The drivers assert bit-identical genomes across worker counts, so
        // the pooled backward pass must not drift by a single bit.
        let mut rng = Rng64::seed_from(12);
        let net =
            Mlp::from_dims(&[24, 48, 32], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(16, 24, -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone();
        let (grads, dx) = net.backward(&cache, &d_out);
        for workers in 1..=4 {
            let pool = Pool::uncapped(workers);
            let pooled_cache = net.forward_cached_pooled(&x, &pool);
            assert_eq!(pooled_cache.output().as_slice(), cache.output().as_slice());
            let (pg, pdx) = net.backward_pooled(&pooled_cache, &d_out, &pool);
            assert_eq!(pg.as_slice(), grads.as_slice(), "grads drift at {workers} workers");
            assert_eq!(pdx.as_slice(), dx.as_slice(), "dx drift at {workers} workers");
        }
    }

    #[test]
    fn workspace_paths_match_allocating_paths() {
        // forward_cached_ws / backward_ws / backward_input_ws over recycled
        // buffers must be bit-identical to the allocating API, including on
        // the second use of the same (dirty) workspace.
        let mut rng = Rng64::seed_from(13);
        let net = Mlp::from_dims(&[6, 9, 4], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let pool = Pool::serial();
        let mut cache = LayerCache::default();
        let mut scratch = DeltaScratch::default();
        let mut grads = Grads::default();
        let mut dx = Matrix::default();
        for round in 0..3 {
            let x = rng.uniform_matrix(5, 6, -1.0, 1.0);
            let alloc_cache = net.forward_cached(&x);
            let d_out = alloc_cache.output().clone();
            let (alloc_grads, alloc_dx) = net.backward(&alloc_cache, &d_out);

            net.forward_cached_ws(&x, &mut cache, &pool);
            assert_eq!(cache.output().as_slice(), alloc_cache.output().as_slice(), "{round}");
            net.backward_ws(&x, &cache, &d_out, &mut grads, &mut scratch, Some(&mut dx), &pool);
            assert_eq!(grads.as_slice(), alloc_grads.as_slice(), "round {round} grads");
            assert_eq!(dx.as_slice(), alloc_dx.as_slice(), "round {round} dx");

            // Input-only backward must reproduce the same dx.
            let mut dx2 = Matrix::default();
            net.backward_input_ws(&cache, &d_out, &mut scratch, &mut dx2, &pool);
            assert_eq!(dx2.as_slice(), alloc_dx.as_slice(), "round {round} dx-only");
        }
    }

    #[test]
    fn forward_into_lands_in_out_for_any_depth() {
        let mut rng = Rng64::seed_from(14);
        for dims in [vec![4, 3], vec![4, 5, 3], vec![4, 6, 5, 3], vec![4, 2, 6, 5, 3]] {
            let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Identity, &mut rng);
            let x = rng.uniform_matrix(3, 4, -1.0, 1.0);
            let expect = net.forward(&x);
            let mut out = Matrix::default();
            let mut scratch = Matrix::default();
            net.forward_into(&x, &mut out, &mut scratch, &Pool::serial());
            assert_eq!(out.as_slice(), expect.as_slice(), "depth {}", dims.len() - 1);
        }
    }

    #[test]
    fn genome_round_trip() {
        let net = tiny_net(4);
        let g = net.genome().to_vec();
        assert_eq!(g.len(), net.param_count());
        let mut other = tiny_net(99);
        assert_ne!(other.genome(), g.as_slice());
        other.load_genome(&g);
        assert_eq!(other.genome(), g.as_slice());
        // Identical genomes => identical outputs.
        let mut rng = Rng64::seed_from(5);
        let x = rng.uniform_matrix(2, 3, -1.0, 1.0);
        assert!(net.forward(&x).max_abs_diff(&other.forward(&x)) < 1e-7);
    }

    #[test]
    fn visit_params_matches_genome_order() {
        let mut net = tiny_net(6);
        let g = net.genome().to_vec();
        let mut seen = vec![];
        net.visit_params_mut(|i, v| {
            assert_eq!(seen.len(), i);
            seen.push(*v);
        });
        assert_eq!(seen, g);
    }

    /// Finite-difference check of the full backward pass: the analytic
    /// gradient of `L = sum(output²)/2` must match numeric perturbation of
    /// every parameter.
    #[test]
    fn backward_matches_finite_differences() {
        let net = tiny_net(7);
        let mut rng = Rng64::seed_from(8);
        let x = rng.uniform_matrix(3, 3, -1.0, 1.0);

        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone(); // dL/dout for L = 0.5*sum(out^2)
        let (grads, _dx) = net.backward(&cache, &d_out);

        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };

        let eps = 1e-3f32;
        let n = net.param_count();
        // Check a deterministic subset of parameters plus all biases.
        for idx in (0..n).step_by(7) {
            let mut plus = net.clone();
            let mut minus = net.clone();
            plus.visit_params_mut(|i, v| {
                if i == idx {
                    *v += eps;
                }
            });
            minus.visit_params_mut(|i, v| {
                if i == idx {
                    *v -= eps;
                }
            });
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps as f64);
            let analytic = grads.as_slice()[idx] as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "param {idx}: numeric {numeric:.6} vs analytic {analytic:.6}"
            );
        }
        // The returned dx must also match perturbing the input.
        let (_, dx) = net.backward(&cache, &d_out);
        let mut x2 = x.clone();
        x2[(1, 2)] += eps;
        let y2 = net.forward(&x2);
        let l2: f64 = y2.as_slice().iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum();
        let numeric = (l2 - loss(&net)) / eps as f64;
        assert!((numeric - dx[(1, 2)] as f64).abs() < 5e-3);
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut a = Grads::zeros(3);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut b = Grads::zeros(3);
        b.as_mut_slice().copy_from_slice(&[0.5, 0.5, 0.5]);
        a.accumulate(&b);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
        assert!((Grads::zeros(2).norm() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn deep_network_gradient_flows() {
        let mut rng = Rng64::seed_from(20);
        let net = Mlp::from_dims(
            &[4, 8, 8, 8, 2],
            Activation::LeakyRelu(0.2),
            Activation::Sigmoid,
            &mut rng,
        );
        let x = rng.uniform_matrix(5, 4, -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = Matrix::full(5, 2, 1.0);
        let (grads, dx) = net.backward(&cache, &d_out);
        assert!(grads.norm() > 0.0, "gradient vanished entirely");
        assert_eq!(dx.shape(), (5, 4));
        assert!(reduce::norm2(dx.as_slice()) > 0.0);
    }
}
