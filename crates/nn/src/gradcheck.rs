//! Finite-difference gradient checking utilities.
//!
//! Exposed as a library module (not just test code) so downstream crates'
//! tests can verify their own composite losses against numeric gradients.

use crate::mlp::Mlp;

/// Numeric gradient of `loss` with respect to parameter `idx` of `net`,
/// using central differences with step `eps`.
pub fn numeric_param_gradient(
    net: &Mlp,
    idx: usize,
    eps: f32,
    loss: &mut dyn FnMut(&Mlp) -> f64,
) -> f64 {
    let mut plus = net.clone();
    plus.visit_params_mut(|i, v| {
        if i == idx {
            *v += eps;
        }
    });
    let mut minus = net.clone();
    minus.visit_params_mut(|i, v| {
        if i == idx {
            *v -= eps;
        }
    });
    (loss(&plus) - loss(&minus)) / (2.0 * eps as f64)
}

/// Check analytic gradients against numeric ones on a strided subset of
/// parameters; returns the worst absolute error observed.
pub fn max_gradient_error(
    net: &Mlp,
    analytic: &[f32],
    stride: usize,
    eps: f32,
    loss: &mut dyn FnMut(&Mlp) -> f64,
) -> f64 {
    assert_eq!(analytic.len(), net.param_count(), "gradient length");
    let mut worst = 0.0f64;
    for idx in (0..net.param_count()).step_by(stride.max(1)) {
        let numeric = numeric_param_gradient(net, idx, eps, loss);
        let err = (numeric - analytic[idx] as f64).abs();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::gan::{Discriminator, Generator, NetworkConfig};
    use crate::loss::{self, GanLoss};
    use lipiz_tensor::Rng64;

    #[test]
    fn discriminator_bce_gradients_pass_gradcheck() {
        // Full-path check: both BCE branches backpropagated through the
        // discriminator MLP and accumulated, against numeric gradients of
        // the same two-batch loss.
        let mut rng = Rng64::seed_from(21);
        let cfg = NetworkConfig::tiny(4);
        let d = Discriminator::new(&cfg, &mut rng);
        let real = rng.uniform_matrix(3, 4, -0.9, 0.9);
        let fake = rng.uniform_matrix(3, 4, -0.9, 0.9);

        let cache_real = d.net.forward_cached(&real);
        let cache_fake = d.net.forward_cached(&fake);
        let (_, d_real, d_fake) = loss::d_bce_loss(cache_real.output(), cache_fake.output());
        let (mut grads, _) = d.net.backward(&cache_real, &d_real);
        let (grads_fake, _) = d.net.backward(&cache_fake, &d_fake);
        grads.accumulate(&grads_fake);

        let mut loss_fn = |net: &Mlp| -> f64 {
            loss::d_bce_loss(&net.forward(&real), &net.forward(&fake)).0 as f64
        };
        let err = max_gradient_error(&d.net, grads.as_slice(), 5, 1e-2, &mut loss_fn);
        assert!(err < 2e-3, "D BCE gradcheck error {err}");
    }

    #[test]
    fn generator_gradients_pass_gradcheck_for_every_loss() {
        // Full-path check per Mustangs loss variant: gradients flow through
        // the frozen discriminator into the generator parameters.
        let mut rng = Rng64::seed_from(22);
        let cfg = NetworkConfig::tiny(4);
        let g = Generator::new(&cfg, &mut rng);
        let d = Discriminator::new(&cfg, &mut rng);
        let z = rng.normal_matrix(3, g.latent_dim(), 0.0, 1.0);

        for kind in GanLoss::ALL {
            let g_cache = g.net.forward_cached(&z);
            let d_cache = d.net.forward_cached(g_cache.output());
            let (_, d_logits) = loss::g_loss(kind, d_cache.output());
            let (_, d_images) = d.net.backward(&d_cache, &d_logits);
            let (g_grads, _) = g.net.backward(&g_cache, &d_images);

            let mut loss_fn = |net: &Mlp| -> f64 {
                loss::g_loss(kind, &d.net.forward(&net.forward(&z))).0 as f64
            };
            let err = max_gradient_error(&g.net, g_grads.as_slice(), 7, 1e-2, &mut loss_fn);
            assert!(err < 2e-3, "{kind:?} G gradcheck error {err}");
        }
    }

    #[test]
    fn gradcheck_detects_wrong_gradients() {
        let mut rng = Rng64::seed_from(1);
        let net = Mlp::from_dims(&[2, 3, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(4, 2, -1.0, 1.0);
        let mut loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|&v| 0.5 * (v as f64).powi(2)).sum()
        };
        // Correct gradients pass.
        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone();
        let (grads, _) = net.backward(&cache, &d_out);
        let err = max_gradient_error(&net, grads.as_slice(), 3, 1e-3, &mut loss);
        assert!(err < 2e-3, "correct gradients flagged: {err}");
        // Corrupted gradients fail.
        let mut bad = grads.as_slice().to_vec();
        bad[0] += 1.0;
        let err = max_gradient_error(&net, &bad, 1, 1e-3, &mut loss);
        assert!(err > 0.5, "corrupted gradients not detected: {err}");
    }
}
