//! Finite-difference gradient checking utilities.
//!
//! Exposed as a library module (not just test code) so downstream crates'
//! tests can verify their own composite losses against numeric gradients.

use crate::mlp::Mlp;

/// Numeric gradient of `loss` with respect to parameter `idx` of `net`,
/// using central differences with step `eps`.
pub fn numeric_param_gradient(
    net: &Mlp,
    idx: usize,
    eps: f32,
    loss: &mut dyn FnMut(&Mlp) -> f64,
) -> f64 {
    let mut plus = net.clone();
    plus.visit_params_mut(|i, v| {
        if i == idx {
            *v += eps;
        }
    });
    let mut minus = net.clone();
    minus.visit_params_mut(|i, v| {
        if i == idx {
            *v -= eps;
        }
    });
    (loss(&plus) - loss(&minus)) / (2.0 * eps as f64)
}

/// Check analytic gradients against numeric ones on a strided subset of
/// parameters; returns the worst absolute error observed.
pub fn max_gradient_error(
    net: &Mlp,
    analytic: &[f32],
    stride: usize,
    eps: f32,
    loss: &mut dyn FnMut(&Mlp) -> f64,
) -> f64 {
    assert_eq!(analytic.len(), net.param_count(), "gradient length");
    let mut worst = 0.0f64;
    for idx in (0..net.param_count()).step_by(stride.max(1)) {
        let numeric = numeric_param_gradient(net, idx, eps, loss);
        let err = (numeric - analytic[idx] as f64).abs();
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use lipiz_tensor::Rng64;

    #[test]
    fn gradcheck_detects_wrong_gradients() {
        let mut rng = Rng64::seed_from(1);
        let net = Mlp::from_dims(&[2, 3, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = rng.uniform_matrix(4, 2, -1.0, 1.0);
        let mut loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|&v| 0.5 * (v as f64).powi(2)).sum()
        };
        // Correct gradients pass.
        let cache = net.forward_cached(&x);
        let d_out = cache.output().clone();
        let (grads, _) = net.backward(&cache, &d_out);
        let err = max_gradient_error(&net, grads.as_slice(), 3, 1e-3, &mut loss);
        assert!(err < 2e-3, "correct gradients flagged: {err}");
        // Corrupted gradients fail.
        let mut bad = grads.as_slice().to_vec();
        bad[0] += 1.0;
        let err = max_gradient_error(&net, &bad, 1, 1e-3, &mut loss);
        assert!(err > 0.5, "corrupted gradients not detected: {err}");
    }
}
