//! Adam optimizer over a network's flat genome vector.

use crate::mlp::{Grads, Mlp};

/// The complete state of an [`Adam`] optimizer, as plain data.
///
/// Everything the update rule depends on is here — moments, step count,
/// *and* the hyperparameters — so `Adam::from_state(adam.state())` resumes
/// training bit-exactly. The checkpoint layer serializes this instead of
/// assuming moments can be reconstructed by replaying steps.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First-moment vector (genome order).
    pub m: Vec<f32>,
    /// Second-moment vector (genome order).
    pub v: Vec<f32>,
    /// Steps taken so far.
    pub t: u64,
    /// β₁ decay.
    pub beta1: f32,
    /// β₂ decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

/// Adam state (Kingma & Ba, 2015) for one network.
///
/// The moment vectors are aligned with the network's genome layout. Table I
/// of the paper uses Adam with initial learning rate `2e-4`; the learning
/// rate itself is *not* stored here because Lipizzaner treats it as an
/// evolvable hyperparameter owned by the individual — it is passed to every
/// [`Adam::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Fresh optimizer state for a network with `n` parameters, with the
    /// standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// Fresh state with custom betas (exposed for ablations).
    pub fn with_betas(n: usize, beta1: f32, beta2: f32) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, beta1, beta2, eps: 1e-8 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Capture the optimizer's full state (see [`AdamState`]).
    pub fn state(&self) -> AdamState {
        AdamState {
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
        }
    }

    /// Capture into an existing [`AdamState`], reusing its moment buffers
    /// (the allocation-free path of a double-buffered checkpoint capture).
    pub fn state_into(&self, out: &mut AdamState) {
        out.m.clear();
        out.m.extend_from_slice(&self.m);
        out.v.clear();
        out.v.extend_from_slice(&self.v);
        out.t = self.t;
        out.beta1 = self.beta1;
        out.beta2 = self.beta2;
        out.eps = self.eps;
    }

    /// Rebuild an optimizer from a captured [`Adam::state`].
    ///
    /// # Panics
    /// Panics if the moment vectors disagree in length (a corrupt state
    /// must never restore partially).
    pub fn from_state(state: AdamState) -> Self {
        assert_eq!(state.m.len(), state.v.len(), "Adam state moment lengths");
        Self {
            m: state.m,
            v: state.v,
            t: state.t,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
        }
    }

    /// Reset moments and step count (used when a genome import replaces the
    /// network this state was tracking).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    /// Apply one Adam update to `net` with gradient `grads` and learning
    /// rate `lr`.
    ///
    /// # Panics
    /// Panics if the gradient length does not match this state's width.
    pub fn step(&mut self, net: &mut Mlp, grads: &Grads, lr: f32) {
        self.step_slice(net.params_mut(), grads.as_slice(), lr);
    }

    /// The update itself, over a flat parameter slice — the network's
    /// contiguous genome storage makes the whole optimizer one pass over
    /// three parallel slices, dispatched to an AVX2 mul/add micro-kernel
    /// when the host supports it (bit-identical to the scalar loop: every
    /// lane performs the same individually rounded IEEE operations,
    /// including the correctly rounded `vsqrtps`/`vdivps`).
    ///
    /// # Panics
    /// Panics if `params`/`g` lengths do not match this state's width.
    pub fn step_slice(&mut self, params: &mut [f32], g: &[f32], lr: f32) {
        assert_eq!(g.len(), self.m.len(), "Adam width mismatch");
        assert_eq!(params.len(), self.m.len(), "Adam width mismatch");
        self.t += 1;
        let c = UpdateCoeffs {
            beta1: self.beta1,
            beta2: self.beta2,
            b1t: 1.0 - self.beta1.powi(self.t as i32),
            b2t: 1.0 - self.beta2.powi(self.t as i32),
            eps: self.eps,
            lr,
        };
        update_dispatch(params, g, &mut self.m, &mut self.v, &c);
    }
}

/// Per-step constants of the Adam update rule.
#[derive(Clone, Copy)]
struct UpdateCoeffs {
    beta1: f32,
    beta2: f32,
    /// `1 - β₁ᵗ` (first-moment bias correction).
    b1t: f32,
    /// `1 - β₂ᵗ` (second-moment bias correction).
    b2t: f32,
    eps: f32,
    lr: f32,
}

/// Pick the widest update kernel the host supports.
fn update_dispatch(
    params: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    c: &UpdateCoeffs,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the detection macro asserts AVX2 support at runtime.
        unsafe { update_avx2(params, g, m, v, c) };
        return;
    }
    update_scalar(params, g, m, v, c);
}

/// Portable scalar update — the reference the vector kernel is
/// property-tested against. One fused pass:
/// `m ← β₁m + (1-β₁)g`, `v ← β₂v + (1-β₂)g·g`,
/// `p ← p - lr·(m/b1t) / (√(v/b2t) + ε)`.
fn update_scalar(
    params: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    c: &UpdateCoeffs,
) {
    for i in 0..params.len() {
        let gi = g[i];
        m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * gi;
        v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * gi * gi;
        let mhat = m[i] / c.b1t;
        let vhat = v[i] / c.b2t;
        params[i] -= c.lr * mhat / (vhat.sqrt() + c.eps);
    }
}

/// AVX2 update: eight lanes per iteration, separate `vmulps`/`vaddps`
/// (never FMA) plus IEEE-correct `vsqrtps`/`vdivps`, so every lane computes
/// exactly what [`update_scalar`] computes. Note the `(1-β₂)·g·g` term is
/// associated left-to-right exactly like the scalar expression — the
/// rounding of `((1-β₂)·g)·g` and `(1-β₂)·(g·g)` can differ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn update_avx2(
    params: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    c: &UpdateCoeffs,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_div_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_sqrt_ps, _mm256_storeu_ps, _mm256_sub_ps,
    };
    let n = params.len();
    let lanes = n / 8 * 8;
    let b1 = _mm256_set1_ps(c.beta1);
    let one_m_b1 = _mm256_set1_ps(1.0 - c.beta1);
    let b2 = _mm256_set1_ps(c.beta2);
    let one_m_b2 = _mm256_set1_ps(1.0 - c.beta2);
    let inv1 = _mm256_set1_ps(c.b1t);
    let inv2 = _mm256_set1_ps(c.b2t);
    let eps = _mm256_set1_ps(c.eps);
    let lr = _mm256_set1_ps(c.lr);
    let (pp, gp, mp, vp) = (params.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i < lanes {
        let gv = _mm256_loadu_ps(gp.add(i));
        let mv = _mm256_add_ps(
            _mm256_mul_ps(b1, _mm256_loadu_ps(mp.add(i))),
            _mm256_mul_ps(one_m_b1, gv),
        );
        // ((1-β₂)·g)·g — same association as the scalar path.
        let vv = _mm256_add_ps(
            _mm256_mul_ps(b2, _mm256_loadu_ps(vp.add(i))),
            _mm256_mul_ps(_mm256_mul_ps(one_m_b2, gv), gv),
        );
        _mm256_storeu_ps(mp.add(i), mv);
        _mm256_storeu_ps(vp.add(i), vv);
        let mhat = _mm256_div_ps(mv, inv1);
        let vhat = _mm256_div_ps(vv, inv2);
        let denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), eps);
        let step = _mm256_div_ps(_mm256_mul_ps(lr, mhat), denom);
        _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), step));
        i += 8;
    }
    if lanes < n {
        update_scalar(&mut params[lanes..], &g[lanes..], &mut m[lanes..], &mut v[lanes..], c);
    }
}

/// Scalar reference step, exposed for the vector-vs-scalar property tests:
/// performs exactly one [`Adam::step_slice`] worth of state mutation using
/// only the portable loop, regardless of host features.
pub fn step_slice_scalar(adam: &mut Adam, params: &mut [f32], g: &[f32], lr: f32) {
    assert_eq!(g.len(), adam.m.len(), "Adam width mismatch");
    assert_eq!(params.len(), adam.m.len(), "Adam width mismatch");
    adam.t += 1;
    let c = UpdateCoeffs {
        beta1: adam.beta1,
        beta2: adam.beta2,
        b1t: 1.0 - adam.beta1.powi(adam.t as i32),
        b2t: 1.0 - adam.beta2.powi(adam.t as i32),
        eps: adam.eps,
        lr,
    };
    update_scalar(params, g, &mut adam.m, &mut adam.v, &c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Mlp;
    use lipiz_tensor::Rng64;

    /// Adam should minimize a simple quadratic fit much faster than no
    /// training at all: fit y = 0 from random weights.
    #[test]
    fn adam_descends_quadratic_objective() {
        let mut rng = Rng64::seed_from(42);
        let mut net =
            Mlp::from_dims(&[4, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut adam = Adam::new(net.param_count());
        let x = rng.uniform_matrix(16, 4, -1.0, 1.0);

        let loss_of = |net: &Mlp| -> f32 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|v| 0.5 * v * v).sum::<f32>() / 16.0
        };

        let initial = loss_of(&net);
        for _ in 0..200 {
            let cache = net.forward_cached(&x);
            let mut d_out = cache.output().clone();
            for v in d_out.as_mut_slice() {
                *v /= 16.0;
            }
            let (grads, _) = net.backward(&cache, &d_out);
            adam.step(&mut net, &grads, 1e-2);
        }
        let final_loss = loss_of(&net);
        assert!(
            final_loss < initial * 0.05,
            "Adam failed to descend: {initial} -> {final_loss}"
        );
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn first_step_moves_against_gradient_sign() {
        let mut rng = Rng64::seed_from(7);
        let mut net =
            Mlp::from_dims(&[2, 2], Activation::Identity, Activation::Identity, &mut rng);
        let before = net.genome().to_vec();
        let mut grads = Grads::zeros(net.param_count());
        for (i, g) in grads.as_mut_slice().iter_mut().enumerate() {
            *g = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
        let after = net.genome().to_vec();
        for i in 0..before.len() {
            let moved = after[i] - before[i];
            let expected_sign = if i % 2 == 0 { -1.0 } else { 1.0 };
            assert!(
                moved * expected_sign > 0.0,
                "param {i} moved {moved} against gradient {}",
                grads.as_slice()[i]
            );
        }
    }

    #[test]
    fn zero_gradient_keeps_params() {
        let mut rng = Rng64::seed_from(8);
        let mut net = Mlp::from_dims(&[3, 3], Activation::Tanh, Activation::Identity, &mut rng);
        let before = net.genome().to_vec();
        let grads = Grads::zeros(net.param_count());
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
        let after = net.genome().to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(4);
        let mut rng = Rng64::seed_from(9);
        let mut net =
            Mlp::from_dims(&[1, 1], Activation::Identity, Activation::Identity, &mut rng);
        let mut grads = Grads::zeros(net.param_count());
        grads.as_mut_slice().fill(1.0);
        // net has 2 params (1 weight + 1 bias); rebuild Adam to match.
        let mut adam2 = Adam::new(net.param_count());
        adam2.step(&mut net, &grads, 0.01);
        assert_eq!(adam2.steps(), 1);
        adam2.reset();
        assert_eq!(adam2.steps(), 0);
        adam.reset();
        assert_eq!(adam.steps(), 0);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        // Capture mid-descent, restore, and require the two optimizers to
        // produce bit-identical parameter trajectories from there on.
        let mut rng = Rng64::seed_from(21);
        let mut net =
            Mlp::from_dims(&[3, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut adam = Adam::with_betas(net.param_count(), 0.8, 0.95);
        let x = rng.uniform_matrix(8, 3, -1.0, 1.0);
        let step = |net: &mut Mlp, adam: &mut Adam| {
            let cache = net.forward_cached(&x);
            let d_out = cache.output().clone();
            let (grads, _) = net.backward(&cache, &d_out);
            adam.step(net, &grads, 3e-3);
        };
        for _ in 0..5 {
            step(&mut net, &mut adam);
        }
        let mut net2 = net.clone();
        let mut adam2 = Adam::from_state(adam.state());
        assert_eq!(adam2.state(), adam.state());
        for _ in 0..10 {
            step(&mut net, &mut adam);
            step(&mut net2, &mut adam2);
        }
        let (a, b) = (net.genome().to_vec(), net2.genome().to_vec());
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "restored Adam diverged from the original"
        );
        assert_eq!(adam.steps(), adam2.steps());
    }

    #[test]
    fn state_preserves_custom_betas() {
        let adam = Adam::with_betas(4, 0.7, 0.9);
        let back = Adam::from_state(adam.state());
        assert_eq!(back.state(), adam.state());
    }

    #[test]
    #[should_panic(expected = "moment lengths")]
    fn mismatched_state_moments_panic() {
        let mut state = Adam::new(4).state();
        state.v.pop();
        let _ = Adam::from_state(state);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_grads_panic() {
        let mut rng = Rng64::seed_from(10);
        let mut net = Mlp::from_dims(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let grads = Grads::zeros(net.param_count() + 1);
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
    }
}
