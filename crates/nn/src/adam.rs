//! Adam optimizer over a network's flat genome vector.

use crate::mlp::{Grads, Mlp};

/// The complete state of an [`Adam`] optimizer, as plain data.
///
/// Everything the update rule depends on is here — moments, step count,
/// *and* the hyperparameters — so `Adam::from_state(adam.state())` resumes
/// training bit-exactly. The checkpoint layer serializes this instead of
/// assuming moments can be reconstructed by replaying steps.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First-moment vector (genome order).
    pub m: Vec<f32>,
    /// Second-moment vector (genome order).
    pub v: Vec<f32>,
    /// Steps taken so far.
    pub t: u64,
    /// β₁ decay.
    pub beta1: f32,
    /// β₂ decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

/// Adam state (Kingma & Ba, 2015) for one network.
///
/// The moment vectors are aligned with the network's genome layout. Table I
/// of the paper uses Adam with initial learning rate `2e-4`; the learning
/// rate itself is *not* stored here because Lipizzaner treats it as an
/// evolvable hyperparameter owned by the individual — it is passed to every
/// [`Adam::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Fresh optimizer state for a network with `n` parameters, with the
    /// standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// Fresh state with custom betas (exposed for ablations).
    pub fn with_betas(n: usize, beta1: f32, beta2: f32) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, beta1, beta2, eps: 1e-8 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Capture the optimizer's full state (see [`AdamState`]).
    pub fn state(&self) -> AdamState {
        AdamState {
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
        }
    }

    /// Capture into an existing [`AdamState`], reusing its moment buffers
    /// (the allocation-free path of a double-buffered checkpoint capture).
    pub fn state_into(&self, out: &mut AdamState) {
        out.m.clear();
        out.m.extend_from_slice(&self.m);
        out.v.clear();
        out.v.extend_from_slice(&self.v);
        out.t = self.t;
        out.beta1 = self.beta1;
        out.beta2 = self.beta2;
        out.eps = self.eps;
    }

    /// Rebuild an optimizer from a captured [`Adam::state`].
    ///
    /// # Panics
    /// Panics if the moment vectors disagree in length (a corrupt state
    /// must never restore partially).
    pub fn from_state(state: AdamState) -> Self {
        assert_eq!(state.m.len(), state.v.len(), "Adam state moment lengths");
        Self {
            m: state.m,
            v: state.v,
            t: state.t,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
        }
    }

    /// Reset moments and step count (used when a genome import replaces the
    /// network this state was tracking).
    pub fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    /// Apply one Adam update to `net` with gradient `grads` and learning
    /// rate `lr`.
    ///
    /// # Panics
    /// Panics if the gradient length does not match this state's width.
    pub fn step(&mut self, net: &mut Mlp, grads: &Grads, lr: f32) {
        let g = grads.as_slice();
        assert_eq!(g.len(), self.m.len(), "Adam width mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params_mut(|i, p| {
            let gi = g[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
            v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::mlp::Mlp;
    use lipiz_tensor::Rng64;

    /// Adam should minimize a simple quadratic fit much faster than no
    /// training at all: fit y = 0 from random weights.
    #[test]
    fn adam_descends_quadratic_objective() {
        let mut rng = Rng64::seed_from(42);
        let mut net =
            Mlp::from_dims(&[4, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut adam = Adam::new(net.param_count());
        let x = rng.uniform_matrix(16, 4, -1.0, 1.0);

        let loss_of = |net: &Mlp| -> f32 {
            let y = net.forward(&x);
            y.as_slice().iter().map(|v| 0.5 * v * v).sum::<f32>() / 16.0
        };

        let initial = loss_of(&net);
        for _ in 0..200 {
            let cache = net.forward_cached(&x);
            let mut d_out = cache.output().clone();
            for v in d_out.as_mut_slice() {
                *v /= 16.0;
            }
            let (grads, _) = net.backward(&cache, &d_out);
            adam.step(&mut net, &grads, 1e-2);
        }
        let final_loss = loss_of(&net);
        assert!(
            final_loss < initial * 0.05,
            "Adam failed to descend: {initial} -> {final_loss}"
        );
        assert_eq!(adam.steps(), 200);
    }

    #[test]
    fn first_step_moves_against_gradient_sign() {
        let mut rng = Rng64::seed_from(7);
        let mut net =
            Mlp::from_dims(&[2, 2], Activation::Identity, Activation::Identity, &mut rng);
        let before = net.genome();
        let mut grads = Grads::zeros(net.param_count());
        for (i, g) in grads.as_mut_slice().iter_mut().enumerate() {
            *g = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
        let after = net.genome();
        for i in 0..before.len() {
            let moved = after[i] - before[i];
            let expected_sign = if i % 2 == 0 { -1.0 } else { 1.0 };
            assert!(
                moved * expected_sign > 0.0,
                "param {i} moved {moved} against gradient {}",
                grads.as_slice()[i]
            );
        }
    }

    #[test]
    fn zero_gradient_keeps_params() {
        let mut rng = Rng64::seed_from(8);
        let mut net = Mlp::from_dims(&[3, 3], Activation::Tanh, Activation::Identity, &mut rng);
        let before = net.genome();
        let grads = Grads::zeros(net.param_count());
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
        let after = net.genome();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-6);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::new(4);
        let mut rng = Rng64::seed_from(9);
        let mut net =
            Mlp::from_dims(&[1, 1], Activation::Identity, Activation::Identity, &mut rng);
        let mut grads = Grads::zeros(net.param_count());
        grads.as_mut_slice().fill(1.0);
        // net has 2 params (1 weight + 1 bias); rebuild Adam to match.
        let mut adam2 = Adam::new(net.param_count());
        adam2.step(&mut net, &grads, 0.01);
        assert_eq!(adam2.steps(), 1);
        adam2.reset();
        assert_eq!(adam2.steps(), 0);
        adam.reset();
        assert_eq!(adam.steps(), 0);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        // Capture mid-descent, restore, and require the two optimizers to
        // produce bit-identical parameter trajectories from there on.
        let mut rng = Rng64::seed_from(21);
        let mut net =
            Mlp::from_dims(&[3, 5, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut adam = Adam::with_betas(net.param_count(), 0.8, 0.95);
        let x = rng.uniform_matrix(8, 3, -1.0, 1.0);
        let step = |net: &mut Mlp, adam: &mut Adam| {
            let cache = net.forward_cached(&x);
            let d_out = cache.output().clone();
            let (grads, _) = net.backward(&cache, &d_out);
            adam.step(net, &grads, 3e-3);
        };
        for _ in 0..5 {
            step(&mut net, &mut adam);
        }
        let mut net2 = net.clone();
        let mut adam2 = Adam::from_state(adam.state());
        assert_eq!(adam2.state(), adam.state());
        for _ in 0..10 {
            step(&mut net, &mut adam);
            step(&mut net2, &mut adam2);
        }
        let (a, b) = (net.genome(), net2.genome());
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "restored Adam diverged from the original"
        );
        assert_eq!(adam.steps(), adam2.steps());
    }

    #[test]
    fn state_preserves_custom_betas() {
        let adam = Adam::with_betas(4, 0.7, 0.9);
        let back = Adam::from_state(adam.state());
        assert_eq!(back.state(), adam.state());
    }

    #[test]
    #[should_panic(expected = "moment lengths")]
    fn mismatched_state_moments_panic() {
        let mut state = Adam::new(4).state();
        state.v.pop();
        let _ = Adam::from_state(state);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_grads_panic() {
        let mut rng = Rng64::seed_from(10);
        let mut net = Mlp::from_dims(&[2, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let grads = Grads::zeros(net.param_count() + 1);
        let mut adam = Adam::new(net.param_count());
        adam.step(&mut net, &grads, 0.1);
    }
}
