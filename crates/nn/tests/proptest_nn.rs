//! Property tests for networks and losses.

use lipiz_nn::{loss, Activation, GanLoss, Mlp};
use lipiz_tensor::{Matrix, Rng64};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..10, 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn param_count_matches_genome_len(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        prop_assert_eq!(net.genome().len(), net.param_count());
    }

    #[test]
    fn forward_output_shape(dims in dims_strategy(), batch in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Sigmoid, &mut rng);
        let x = rng.uniform_matrix(batch, dims[0], -1.0, 1.0);
        let y = net.forward(&x);
        prop_assert_eq!(y.shape(), (batch, *dims.last().unwrap()));
        prop_assert!(y.all_finite());
        // Sigmoid output bounds.
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn backward_gradients_are_finite(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::LeakyRelu(0.2), Activation::Tanh, &mut rng);
        let x = rng.uniform_matrix(3, dims[0], -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = rng.uniform_matrix(3, *dims.last().unwrap(), -1.0, 1.0);
        let (grads, dx) = net.backward(&cache, &d_out);
        prop_assert!(grads.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(dx.all_finite());
    }

    #[test]
    fn loss_values_and_grads_are_finite_for_extreme_logits(
        z in proptest::collection::vec(-60.0f32..60.0, 1..8)
    ) {
        let logits = Matrix::from_vec(z.len(), 1, z).unwrap();
        for kind in GanLoss::ALL {
            let (l, g) = loss::g_loss(kind, &logits);
            prop_assert!(l.is_finite(), "{kind:?} loss not finite");
            prop_assert!(g.all_finite(), "{kind:?} grad not finite");
        }
        let (l, gr, gf) = loss::d_bce_loss(&logits, &logits);
        prop_assert!(l.is_finite());
        prop_assert!(gr.all_finite() && gf.all_finite());
    }

    #[test]
    fn d_loss_is_nonnegative(z in proptest::collection::vec(-20.0f32..20.0, 1..8)) {
        let logits = Matrix::from_vec(z.len(), 1, z).unwrap();
        let (l, _, _) = loss::d_bce_loss(&logits, &logits);
        prop_assert!(l >= 0.0, "BCE must be non-negative: {l}");
    }

    #[test]
    fn generator_prefers_being_believed(
        fooled_logit in 0.5f32..20.0,
        caught_logit in -20.0f32..-0.5
    ) {
        // For every loss variant, the loss with D fooled must be lower.
        let fooled = Matrix::full(4, 1, fooled_logit);
        let caught = Matrix::full(4, 1, caught_logit);
        for kind in GanLoss::ALL {
            let (lf, _) = loss::g_loss(kind, &fooled);
            let (lc, _) = loss::g_loss(kind, &caught);
            prop_assert!(lf < lc, "{kind:?}: fooled {lf} !< caught {lc}");
        }
    }

    #[test]
    fn genome_load_is_idempotent(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let mut net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        let g = net.genome();
        net.load_genome(&g);
        net.load_genome(&g);
        prop_assert_eq!(net.genome(), g);
    }
}
