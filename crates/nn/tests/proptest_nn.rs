//! Property tests for networks and losses.

use lipiz_nn::adam::step_slice_scalar;
use lipiz_nn::{
    gan, loss, Activation, Adam, Discriminator, GanLoss, Generator, Mlp, NetworkConfig,
    TrainWorkspace,
};
use lipiz_tensor::{Matrix, Pool, Rng64};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..10, 2..5)
}

/// Arbitrary small-but-real GAN topologies.
fn net_cfg_strategy() -> impl Strategy<Value = NetworkConfig> {
    (1usize..10, 1usize..3, 2usize..18, 1usize..20).prop_map(
        |(latent, layers, hidden, data)| NetworkConfig {
            latent_dim: latent,
            hidden_layers: layers,
            hidden_units: hidden,
            data_dim: data,
            activation: Activation::Tanh,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn param_count_matches_genome_len(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        prop_assert_eq!(net.genome().len(), net.param_count());
    }

    #[test]
    fn forward_output_shape(dims in dims_strategy(), batch in 1usize..8, seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Sigmoid, &mut rng);
        let x = rng.uniform_matrix(batch, dims[0], -1.0, 1.0);
        let y = net.forward(&x);
        prop_assert_eq!(y.shape(), (batch, *dims.last().unwrap()));
        prop_assert!(y.all_finite());
        // Sigmoid output bounds.
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn backward_gradients_are_finite(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::LeakyRelu(0.2), Activation::Tanh, &mut rng);
        let x = rng.uniform_matrix(3, dims[0], -1.0, 1.0);
        let cache = net.forward_cached(&x);
        let d_out = rng.uniform_matrix(3, *dims.last().unwrap(), -1.0, 1.0);
        let (grads, dx) = net.backward(&cache, &d_out);
        prop_assert!(grads.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(dx.all_finite());
    }

    #[test]
    fn loss_values_and_grads_are_finite_for_extreme_logits(
        z in proptest::collection::vec(-60.0f32..60.0, 1..8)
    ) {
        let logits = Matrix::from_vec(z.len(), 1, z).unwrap();
        for kind in GanLoss::ALL {
            let (l, g) = loss::g_loss(kind, &logits);
            prop_assert!(l.is_finite(), "{kind:?} loss not finite");
            prop_assert!(g.all_finite(), "{kind:?} grad not finite");
        }
        let (l, gr, gf) = loss::d_bce_loss(&logits, &logits);
        prop_assert!(l.is_finite());
        prop_assert!(gr.all_finite() && gf.all_finite());
    }

    #[test]
    fn d_loss_is_nonnegative(z in proptest::collection::vec(-20.0f32..20.0, 1..8)) {
        let logits = Matrix::from_vec(z.len(), 1, z).unwrap();
        let (l, _, _) = loss::d_bce_loss(&logits, &logits);
        prop_assert!(l >= 0.0, "BCE must be non-negative: {l}");
    }

    #[test]
    fn generator_prefers_being_believed(
        fooled_logit in 0.5f32..20.0,
        caught_logit in -20.0f32..-0.5
    ) {
        // For every loss variant, the loss with D fooled must be lower.
        let fooled = Matrix::full(4, 1, fooled_logit);
        let caught = Matrix::full(4, 1, caught_logit);
        for kind in GanLoss::ALL {
            let (lf, _) = loss::g_loss(kind, &fooled);
            let (lc, _) = loss::g_loss(kind, &caught);
            prop_assert!(lf < lc, "{kind:?}: fooled {lf} !< caught {lc}");
        }
    }

    /// Tentpole property: full GAN training steps through a *recycled*
    /// workspace are bit-identical to the allocating steps, for arbitrary
    /// topologies, batch sizes, seeds and worker counts — after several
    /// steps, so buffer reuse across steps is covered, and with one shared
    /// (dirty) workspace serving both networks.
    #[test]
    fn workspace_train_steps_are_bit_identical_to_allocating_steps(
        cfg in net_cfg_strategy(),
        batch in 1usize..9,
        seed in 0u64..1000,
        workers in 1usize..4,
    ) {
        let pool = Pool::uncapped(workers);
        let mut rng = Rng64::seed_from(seed);
        let mut g_alloc = Generator::new(&cfg, &mut rng);
        let mut d_alloc = Discriminator::new(&cfg, &mut rng);
        let mut g_ws = g_alloc.clone();
        let mut d_ws = d_alloc.clone();
        let mut adam_g_alloc = Adam::new(g_alloc.net.param_count());
        let mut adam_d_alloc = Adam::new(d_alloc.net.param_count());
        let mut adam_g_ws = adam_g_alloc.clone();
        let mut adam_d_ws = adam_d_alloc.clone();
        let mut ws = TrainWorkspace::default();

        for step in 0..3 {
            let z = gan::latent_batch(&mut rng, batch, cfg.latent_dim);
            let real = rng.uniform_matrix(batch, cfg.data_dim, -0.9, 0.9);
            let fake = rng.uniform_matrix(batch, cfg.data_dim, -0.9, 0.9);
            let kind = GanLoss::ALL[step % GanLoss::ALL.len()];

            let lg_alloc = gan::train_generator_step_pooled(
                &mut g_alloc, &d_alloc, &mut adam_g_alloc, &z, 1e-3, kind, &pool);
            let lg_ws = gan::train_generator_step_ws(
                &mut g_ws, &d_ws, &mut adam_g_ws, &z, 1e-3, kind, &mut ws, &pool);
            prop_assert_eq!(lg_alloc.to_bits(), lg_ws.to_bits(), "G loss, step {}", step);
            prop_assert_eq!(g_alloc.net.genome(), g_ws.net.genome(), "G genome, step {}", step);

            let ld_alloc = gan::train_discriminator_step_pooled(
                &mut d_alloc, &mut adam_d_alloc, &real, &fake, 1e-3, &pool);
            let ld_ws = gan::train_discriminator_step_ws(
                &mut d_ws, &mut adam_d_ws, &real, &fake, 1e-3, &mut ws, &pool);
            prop_assert_eq!(ld_alloc.to_bits(), ld_ws.to_bits(), "D loss, step {}", step);
            prop_assert_eq!(d_alloc.net.genome(), d_ws.net.genome(), "D genome, step {}", step);
        }
    }

    /// The runtime-dispatched Adam kernel (AVX2 where the host has it) must
    /// update parameters and moments bit-identically to the portable scalar
    /// loop, for arbitrary widths (incl. non-multiple-of-8 tails), betas,
    /// gradients and step counts.
    #[test]
    fn vectorized_adam_matches_scalar_bitwise(
        n in 1usize..70,
        seed in 0u64..1000,
        beta1 in 0.5f32..0.99,
        beta2 in 0.9f32..0.9999,
        steps in 1usize..5,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let mut p_vec: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut p_scalar = p_vec.clone();
        let mut adam_vec = Adam::with_betas(n, beta1, beta2);
        let mut adam_scalar = adam_vec.clone();
        for _ in 0..steps {
            let g: Vec<f32> = (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect();
            adam_vec.step_slice(&mut p_vec, &g, 3e-3);
            step_slice_scalar(&mut adam_scalar, &mut p_scalar, &g, 3e-3);
            let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&p_vec), bits(&p_scalar), "params drift");
            prop_assert_eq!(adam_vec.state(), adam_scalar.state(), "moment drift");
        }
    }

    /// Fused bias+activation epilogues must be bit-identical to the unfused
    /// pipeline through the full network forward (all activations, odd
    /// shapes, any worker count).
    #[test]
    fn fused_forward_matches_unfused_pipeline(
        dims in dims_strategy(),
        batch in 1usize..8,
        seed in 0u64..1000,
        workers in 1usize..4,
    ) {
        use lipiz_tensor::ops;
        let mut rng = Rng64::seed_from(seed);
        let net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Sigmoid, &mut rng);
        let x = rng.uniform_matrix(batch, dims[0], -1.0, 1.0);
        // Unfused reference: explicit matmul → bias → activation per layer.
        let mut a = x.clone();
        for (i, spec) in net.specs().iter().enumerate() {
            let w = Matrix::from_vec(spec.fan_in, spec.fan_out, net.weight(i).to_vec()).unwrap();
            let mut next = ops::matmul(&a, &w);
            ops::add_row_vector(&mut next, net.bias(i));
            spec.act.apply_inplace(&mut next);
            a = next;
        }
        let fused = net.forward_pooled(&x, &Pool::uncapped(workers));
        prop_assert_eq!(fused.as_slice(), a.as_slice());
    }

    #[test]
    fn genome_load_is_idempotent(dims in dims_strategy(), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from(seed);
        let mut net = Mlp::from_dims(&dims, Activation::Tanh, Activation::Identity, &mut rng);
        let g = net.genome().to_vec();
        net.load_genome(&g);
        net.load_genome(&g);
        prop_assert_eq!(net.genome(), g.as_slice());
    }
}
