//! The master's heartbeat monitor thread (§III-B).
//!
//! "During the execution, the master periodically performs control
//! activities to determine if all slaves are working properly, are on time,
//! or are delayed … handled by a thread of the master process (the
//! heartbeat thread), in order to perform the system monitoring in
//! background."

use crate::comm_manager::CommManager;
use crate::state::SlaveState;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One slave's status at one heartbeat round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatRecord {
    /// Slave WORLD rank.
    pub slave: usize,
    /// Reported state, if the slave answered in time.
    pub state: Option<SlaveState>,
    /// Iterations the slave reported having completed.
    pub iterations_done: u64,
    /// True when the slave missed the response deadline (the paper's
    /// "delayed" condition).
    pub delayed: bool,
}

/// Full heartbeat log of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeartbeatLog {
    /// One entry per round; each round has one record per slave.
    pub rounds: Vec<Vec<HeartbeatRecord>>,
}

impl HeartbeatLog {
    /// Number of rounds performed.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Did any slave ever miss a deadline?
    pub fn any_delayed(&self) -> bool {
        self.rounds.iter().flatten().any(|r| r.delayed)
    }

    /// Highest iteration count ever reported by any slave.
    pub fn max_reported_iteration(&self) -> u64 {
        self.rounds.iter().flatten().map(|r| r.iterations_done).max().unwrap_or(0)
    }
}

/// Run heartbeat rounds until `stop` is set. Each round polls every slave
/// with `response_timeout`, waits `interval` between rounds, and records
/// results. Designed to run on its own thread of the master process.
pub fn run_heartbeat_loop(
    cm: &CommManager,
    interval: Duration,
    response_timeout: Duration,
    stop: &AtomicBool,
) -> HeartbeatLog {
    let mut log = HeartbeatLog::default();
    while !stop.load(Ordering::Acquire) {
        let mut round = Vec::with_capacity(cm.num_slaves());
        for slave in 1..=cm.num_slaves() {
            cm.request_status(slave);
        }
        for slave in 1..=cm.num_slaves() {
            match cm.await_status(slave, response_timeout) {
                Some(status) => round.push(HeartbeatRecord {
                    slave,
                    state: SlaveState::from_id(status.state),
                    iterations_done: status.iterations_done,
                    delayed: false,
                }),
                None => round.push(HeartbeatRecord {
                    slave,
                    state: None,
                    iterations_done: 0,
                    delayed: true,
                }),
            }
        }
        log.rounds.push(round);
        // Sleep in small slices so a stop request is honored promptly.
        let mut remaining = interval;
        let slice = Duration::from_millis(5);
        while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
            let nap = remaining.min(slice);
            std::thread::sleep(nap);
            remaining = remaining.saturating_sub(nap);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::StatusReport;
    use lipiz_mpi::Universe;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn heartbeat_records_responsive_slaves() {
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                // Run exactly two rounds, then stop.
                let log = {
                    let mut log = HeartbeatLog::default();
                    for _ in 0..2 {
                        let partial = run_one_round(&cm);
                        log.rounds.push(partial);
                    }
                    stop.store(true, Ordering::Release);
                    log
                };
                Some(log)
            } else {
                // Answer exactly two status requests.
                for i in 0..2u64 {
                    assert!(cm.poll_status_request(Duration::from_secs(5)));
                    cm.respond_status(&StatusReport {
                        state: SlaveState::Processing.id(),
                        iterations_done: i,
                    });
                }
                None
            }
        });
        let log = results[0].as_ref().unwrap();
        assert_eq!(log.len(), 2);
        assert!(!log.any_delayed());
        assert_eq!(log.max_reported_iteration(), 1);
        for round in &log.rounds {
            assert_eq!(round.len(), 2);
            assert!(round.iter().all(|r| r.state == Some(SlaveState::Processing)));
        }
    }

    fn run_one_round(cm: &CommManager) -> Vec<HeartbeatRecord> {
        for slave in 1..=cm.num_slaves() {
            cm.request_status(slave);
        }
        (1..=cm.num_slaves())
            .map(|slave| match cm.await_status(slave, Duration::from_secs(5)) {
                Some(s) => HeartbeatRecord {
                    slave,
                    state: SlaveState::from_id(s.state),
                    iterations_done: s.iterations_done,
                    delayed: false,
                },
                None => {
                    HeartbeatRecord { slave, state: None, iterations_done: 0, delayed: true }
                }
            })
            .collect()
    }

    #[test]
    fn unresponsive_slave_is_flagged_delayed() {
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                cm.request_status(1);
                let got = cm.await_status(1, Duration::from_millis(30));
                Some(got.is_none())
            } else {
                // Deliberately never answer; just drain the request so the
                // mailbox is clean.
                let _ = cm.poll_status_request(Duration::from_secs(1));
                None
            }
        });
        assert_eq!(results[0], Some(true));
    }

    #[test]
    fn deaf_slave_is_reported_delayed_without_wedging_the_master() {
        // Failure injection for the full master lifecycle: one slave runs
        // the complete protocol *except* it never answers a status request
        // (a hung communication thread, in the paper's terms). The master
        // must flag it via `HeartbeatLog::any_delayed()` and still finish
        // the run — the heartbeat deadline bounds every wait, so a silent
        // peer can degrade monitoring but never wedge `run_master`.
        use crate::comm_manager::CommManager;
        use crate::master::run_master;
        use crate::protocol::{ProfileRowMsg, SlaveResult};
        use crate::slave::run_slave;
        use lipiz_core::{CellEngine, CellSnapshot, Grid, Profiler, TrainConfig};

        let mut cfg = TrainConfig::smoke(2);
        cfg.grid.rows = 1;
        cfg.grid.cols = 2;
        cfg.coevolution.iterations = 3;
        let toy_data = |cfg: &TrainConfig| {
            let mut rng = lipiz_tensor::Rng64::seed_from(cfg.training.data_seed);
            rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
        };

        let results = Universe::run(3, |world| {
            let mut cm = CommManager::new(world);
            if cm.is_master() {
                return Some(run_master(&cm, &cfg, Duration::from_millis(2)));
            }
            if cm.world_rank() == 1 {
                run_slave(&cm, &|_, cfg: &TrainConfig| toy_data(cfg), "healthy");
                return None;
            }
            // Deaf slave: announces, trains, exchanges, gathers — but never
            // touches the status tags. Slowed down so heartbeat rounds are
            // guaranteed to land (and expire) mid-training.
            cm.announce_node("deaf");
            let task = cm.recv_run_task();
            let slave_cfg = task.config.into_config();
            let grid = Grid::from_config(&slave_cfg.grid);
            let mut engine = CellEngine::new(task.cell_index, &slave_cfg, toy_data(&slave_cfg));
            let mut profiler = Profiler::new();
            for _ in 0..slave_cfg.coevolution.iterations {
                std::thread::sleep(Duration::from_millis(60));
                let snapshot = engine.snapshot();
                let all = cm.exchange_centers(&snapshot);
                let neighbors: Vec<CellSnapshot> = grid
                    .neighbors(task.cell_index)
                    .into_iter()
                    .map(|n| all[n].clone())
                    .collect();
                engine.run_iteration(&neighbors, &mut profiler);
            }
            let ensemble = engine.ensemble();
            let disc_pop = engine.disc_population();
            cm.gather_results(Some(SlaveResult {
                cell: task.cell_index,
                gen_fitness: engine.best_gen_fitness(),
                disc_fitness: disc_pop.members()[disc_pop.best_index()].fitness,
                mixture: ensemble.weights.weights().to_vec(),
                ensemble: ensemble.genomes,
                profile: Vec::<ProfileRowMsg>::new(),
                wall_seconds: 0.0,
            }));
            None
        });

        let outcome = results[0].as_ref().expect("master outcome");
        // The run completed despite the deaf slave...
        assert_eq!(outcome.report.cells.len(), 2);
        assert!(outcome.report.cells.iter().all(|c| c.gen_fitness.is_finite()));
        // ...and the monitoring saw the failure.
        assert!(!outcome.heartbeat.is_empty(), "no heartbeat rounds ran");
        assert!(outcome.heartbeat.any_delayed(), "deaf slave was never flagged");
        let deaf_flagged =
            outcome.heartbeat.rounds.iter().flatten().any(|r| r.slave == 2 && r.delayed);
        assert!(deaf_flagged, "the delayed flag must name the deaf slave");
        let healthy_answered =
            outcome.heartbeat.rounds.iter().flatten().any(|r| r.slave == 1 && !r.delayed);
        assert!(healthy_answered, "healthy slave should still be seen alive");
    }

    #[test]
    fn heartbeat_loop_stops_on_flag() {
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                let answered = AtomicU64::new(0);
                let log = std::thread::scope(|s| {
                    let handle = s.spawn(|| {
                        run_heartbeat_loop(
                            &cm,
                            Duration::from_millis(10),
                            Duration::from_millis(50),
                            &stop,
                        )
                    });
                    std::thread::sleep(Duration::from_millis(80));
                    stop.store(true, Ordering::Release);
                    let log = handle.join().unwrap();
                    answered.store(log.len() as u64, Ordering::Relaxed);
                    log
                });
                assert!(!log.is_empty(), "no heartbeat rounds ran");
                Some(log.len())
            } else {
                // Keep answering until the master goes quiet for a while.
                let mut answered = 0u32;
                while cm.poll_status_request(Duration::from_millis(200)) {
                    cm.respond_status(&StatusReport {
                        state: SlaveState::Processing.id(),
                        iterations_done: 0,
                    });
                    answered += 1;
                }
                assert!(answered > 0);
                None
            }
        });
        assert!(results[0].unwrap() >= 1);
    }
}
