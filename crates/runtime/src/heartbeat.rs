//! The master's heartbeat monitor thread (§III-B).
//!
//! "During the execution, the master periodically performs control
//! activities to determine if all slaves are working properly, are on time,
//! or are delayed … handled by a thread of the master process (the
//! heartbeat thread), in order to perform the system monitoring in
//! background."

use crate::comm_manager::CommManager;
use crate::state::SlaveState;
use lipiz_telemetry::{EventKind, SharedTelemetry};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::Duration;

/// One slave's status at one heartbeat round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatRecord {
    /// Slave WORLD rank.
    pub slave: usize,
    /// Reported state, if the slave answered in time.
    pub state: Option<SlaveState>,
    /// Iterations the slave reported having completed.
    pub iterations_done: u64,
    /// True when the slave missed the response deadline (the paper's
    /// "delayed" condition).
    pub delayed: bool,
}

/// Full heartbeat log of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeartbeatLog {
    /// One entry per round; each round has one record per slave.
    pub rounds: Vec<Vec<HeartbeatRecord>>,
}

impl HeartbeatLog {
    /// Number of rounds performed.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Did any slave ever miss a deadline?
    pub fn any_delayed(&self) -> bool {
        self.rounds.iter().flatten().any(|r| r.delayed)
    }

    /// Highest iteration count ever reported by any slave.
    pub fn max_reported_iteration(&self) -> u64 {
        self.rounds.iter().flatten().map(|r| r.iterations_done).max().unwrap_or(0)
    }
}

/// Sentinel for "no slave declared dead yet" in the dead-rank flag.
pub const NO_DEAD_SLAVE: i64 = -1;

/// Run heartbeat rounds until `stop` is set. Each round polls every slave
/// with `response_timeout`, waits `interval` between rounds, and records
/// results. Designed to run on its own thread of the master process.
pub fn run_heartbeat_loop(
    cm: &CommManager,
    interval: Duration,
    response_timeout: Duration,
    stop: &AtomicBool,
) -> HeartbeatLog {
    let first_dead = AtomicI64::new(NO_DEAD_SLAVE);
    run_heartbeat_loop_with_deadline(cm, interval, response_timeout, 0, stop, &first_dead, None)
}

/// [`run_heartbeat_loop`] with a death deadline: a slave that misses
/// `deadline_misses` *consecutive* rounds is declared dead — its WORLD rank
/// is published into `first_dead` (first death wins; the flag starts at
/// [`NO_DEAD_SLAVE`]). `deadline_misses == 0` never declares anyone dead,
/// reproducing the monitor-only behavior. The loop keeps observing after a
/// declaration — the master aborts its gather on the flag and stops the
/// loop itself.
///
/// A slave that ever reported the *finished* state is exempt from
/// conviction: its communication thread legitimately stops answering once
/// training ends, while its result may sit in the gather queue for as long
/// as slower cells keep training. Convicting it would kill healthy runs
/// with uneven per-cell wall times; a finished slave whose *connection*
/// actually dies is still caught by the transport's doomed-peer check.
///
/// The exemption also covers the master clearing a conviction as stale
/// (the convicted rank's result had already arrived): once cleared, that
/// rank is never convicted again, so a genuinely wedged rank behind it in
/// round order still gets its death declared instead of being starved by
/// an endless convict/clear cycle.
///
/// When `tel` is supplied, every miss and every conviction is journaled on
/// the master's timeline: a miss event names the suspect rank and its
/// consecutive-miss count; a conviction event names the convicted rank and
/// the iteration it last reported — the forensic record the fault suite
/// asserts against.
#[allow(clippy::too_many_arguments)]
pub fn run_heartbeat_loop_with_deadline(
    cm: &CommManager,
    interval: Duration,
    response_timeout: Duration,
    deadline_misses: usize,
    stop: &AtomicBool,
    first_dead: &AtomicI64,
    tel: Option<&SharedTelemetry>,
) -> HeartbeatLog {
    let mut log = HeartbeatLog::default();
    let mut consecutive_misses = vec![0usize; cm.num_slaves() + 1];
    let mut finished = vec![false; cm.num_slaves() + 1];
    let mut convicted = vec![false; cm.num_slaves() + 1];
    let mut last_reported = vec![0u64; cm.num_slaves() + 1];
    while !stop.load(Ordering::Acquire) {
        let mut round = Vec::with_capacity(cm.num_slaves());
        for slave in 1..=cm.num_slaves() {
            cm.request_status(slave);
        }
        let slaves = consecutive_misses.iter_mut().zip(finished.iter_mut()).enumerate();
        for (slave, (misses, done)) in slaves.skip(1) {
            match cm.await_status(slave, response_timeout) {
                Some(status) => {
                    *misses = 0;
                    last_reported[slave] = status.iterations_done;
                    if status.state == SlaveState::Finished.id() {
                        *done = true;
                    }
                    round.push(HeartbeatRecord {
                        slave,
                        state: SlaveState::from_id(status.state),
                        iterations_done: status.iterations_done,
                        delayed: false,
                    });
                }
                None => {
                    *misses += 1;
                    if let Some(t) = tel {
                        t.instant(
                            EventKind::HeartbeatMiss,
                            slave as u32,
                            last_reported[slave] as u32,
                            *misses as u64,
                        );
                    }
                    if convicted[slave] && first_dead.load(Ordering::Acquire) != slave as i64 {
                        // We convicted this rank and the master cleared the
                        // verdict as stale (its result had already arrived —
                        // it finished and went quiet before a Finished report
                        // ever landed here). Exempt it permanently:
                        // re-convicting it every round would win the
                        // first-death CAS forever and starve the conviction
                        // of a rank that is genuinely wedged with its
                        // connection still open.
                        *done = true;
                    } else if !*done && deadline_misses > 0 && *misses >= deadline_misses {
                        // First declared death wins; later ones keep the log
                        // but not the flag.
                        if first_dead
                            .compare_exchange(
                                NO_DEAD_SLAVE,
                                slave as i64,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                        {
                            convicted[slave] = true;
                            if let Some(t) = tel {
                                t.instant(
                                    EventKind::Conviction,
                                    slave as u32,
                                    last_reported[slave] as u32,
                                    *misses as u64,
                                );
                            }
                        }
                    }
                    round.push(HeartbeatRecord {
                        slave,
                        state: None,
                        iterations_done: 0,
                        delayed: true,
                    });
                }
            }
        }
        log.rounds.push(round);
        // Sleep in small slices so a stop request is honored promptly.
        let mut remaining = interval;
        let slice = Duration::from_millis(5);
        while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
            let nap = remaining.min(slice);
            std::thread::sleep(nap);
            remaining = remaining.saturating_sub(nap);
        }
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::StatusReport;
    use lipiz_mpi::Universe;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn heartbeat_records_responsive_slaves() {
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                // Run exactly two rounds, then stop.
                let log = {
                    let mut log = HeartbeatLog::default();
                    for _ in 0..2 {
                        let partial = run_one_round(&cm);
                        log.rounds.push(partial);
                    }
                    stop.store(true, Ordering::Release);
                    log
                };
                Some(log)
            } else {
                // Answer exactly two status requests.
                for i in 0..2u64 {
                    assert!(cm.poll_status_request(Duration::from_secs(5)));
                    cm.respond_status(&StatusReport {
                        state: SlaveState::Processing.id(),
                        iterations_done: i,
                    });
                }
                None
            }
        });
        let log = results[0].as_ref().unwrap();
        assert_eq!(log.len(), 2);
        assert!(!log.any_delayed());
        assert_eq!(log.max_reported_iteration(), 1);
        for round in &log.rounds {
            assert_eq!(round.len(), 2);
            assert!(round.iter().all(|r| r.state == Some(SlaveState::Processing)));
        }
    }

    fn run_one_round(cm: &CommManager) -> Vec<HeartbeatRecord> {
        for slave in 1..=cm.num_slaves() {
            cm.request_status(slave);
        }
        (1..=cm.num_slaves())
            .map(|slave| match cm.await_status(slave, Duration::from_secs(5)) {
                Some(s) => HeartbeatRecord {
                    slave,
                    state: SlaveState::from_id(s.state),
                    iterations_done: s.iterations_done,
                    delayed: false,
                },
                None => {
                    HeartbeatRecord { slave, state: None, iterations_done: 0, delayed: true }
                }
            })
            .collect()
    }

    #[test]
    fn unresponsive_slave_is_flagged_delayed() {
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                cm.request_status(1);
                let got = cm.await_status(1, Duration::from_millis(30));
                Some(got.is_none())
            } else {
                // Deliberately never answer; just drain the request so the
                // mailbox is clean.
                let _ = cm.poll_status_request(Duration::from_secs(1));
                None
            }
        });
        assert_eq!(results[0], Some(true));
    }

    #[test]
    fn deaf_slave_is_reported_delayed_without_wedging_the_master() {
        // Failure injection for the full master lifecycle: one slave runs
        // the complete protocol *except* it never answers a status request
        // (a hung communication thread, in the paper's terms). The master
        // must flag it via `HeartbeatLog::any_delayed()` and still finish
        // the run — the heartbeat deadline bounds every wait, so a silent
        // peer can degrade monitoring but never wedge `run_master`.
        use crate::comm_manager::CommManager;
        use crate::master::run_master;
        use crate::protocol::{ProfileRowMsg, SlaveResult};
        use crate::slave::run_slave;
        use lipiz_core::{CellEngine, CellSnapshot, Grid, Profiler, TrainConfig};

        let mut cfg = TrainConfig::smoke(2);
        cfg.grid.rows = 1;
        cfg.grid.cols = 2;
        cfg.coevolution.iterations = 3;
        let toy_data = |cfg: &TrainConfig| {
            let mut rng = lipiz_tensor::Rng64::seed_from(cfg.training.data_seed);
            rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
        };

        let results = Universe::run(3, |world| {
            let mut cm = CommManager::new(world);
            if cm.is_master() {
                return Some(run_master(&cm, &cfg, Duration::from_millis(2)));
            }
            if cm.world_rank() == 1 {
                run_slave(&cm, &|_, cfg: &TrainConfig| toy_data(cfg), "healthy");
                return None;
            }
            // Deaf slave: announces, trains, exchanges, gathers — but never
            // touches the status tags. Slowed down so heartbeat rounds are
            // guaranteed to land (and expire) mid-training.
            cm.announce_node("deaf");
            let task = cm.recv_run_task();
            let slave_cfg = task.config.into_config();
            let grid = Grid::from_config(&slave_cfg.grid);
            let mut engine = CellEngine::new(task.cell_index, &slave_cfg, toy_data(&slave_cfg));
            let mut profiler = Profiler::new();
            for _ in 0..slave_cfg.coevolution.iterations {
                std::thread::sleep(Duration::from_millis(60));
                let snapshot = engine.snapshot();
                let all = cm.exchange_centers(&snapshot);
                let neighbors: Vec<CellSnapshot> = grid
                    .neighbors(task.cell_index)
                    .into_iter()
                    .map(|n| all[n].clone())
                    .collect();
                engine.run_iteration(&neighbors, &mut profiler);
            }
            let ensemble = engine.ensemble();
            let disc_pop = engine.disc_population();
            cm.gather_results(Some(SlaveResult {
                cell: task.cell_index,
                gen_fitness: engine.best_gen_fitness(),
                disc_fitness: disc_pop.members()[disc_pop.best_index()].fitness,
                mixture: ensemble.weights.weights().to_vec(),
                ensemble: ensemble.genomes,
                profile: Vec::<ProfileRowMsg>::new(),
                wall_seconds: 0.0,
                telemetry: None,
            }));
            None
        });

        let outcome = results[0].as_ref().expect("master outcome");
        // The run completed despite the deaf slave...
        assert_eq!(outcome.report.cells.len(), 2);
        assert!(outcome.report.cells.iter().all(|c| c.gen_fitness.is_finite()));
        // ...and the monitoring saw the failure.
        assert!(!outcome.heartbeat.is_empty(), "no heartbeat rounds ran");
        assert!(outcome.heartbeat.any_delayed(), "deaf slave was never flagged");
        let deaf_flagged =
            outcome.heartbeat.rounds.iter().flatten().any(|r| r.slave == 2 && r.delayed);
        assert!(deaf_flagged, "the delayed flag must name the deaf slave");
        let healthy_answered =
            outcome.heartbeat.rounds.iter().flatten().any(|r| r.slave == 1 && !r.delayed);
        assert!(healthy_answered, "healthy slave should still be seen alive");
    }

    #[test]
    fn deadline_declares_a_dead_slave_by_rank() {
        // One silent slave: with a 2-miss deadline, the heartbeat must
        // publish exactly that slave's WORLD rank into the dead flag.
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                let first_dead = AtomicI64::new(NO_DEAD_SLAVE);
                let log = std::thread::scope(|s| {
                    let handle = s.spawn(|| {
                        run_heartbeat_loop_with_deadline(
                            &cm,
                            Duration::from_millis(5),
                            Duration::from_millis(20),
                            2,
                            &stop,
                            &first_dead,
                            None,
                        )
                    });
                    // Wait for the declaration, then stop.
                    let deadline = std::time::Instant::now() + Duration::from_secs(10);
                    while first_dead.load(Ordering::Acquire) == NO_DEAD_SLAVE {
                        assert!(std::time::Instant::now() < deadline, "never declared dead");
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    stop.store(true, Ordering::Release);
                    handle.join().unwrap()
                });
                assert!(log.any_delayed());
                Some(first_dead.load(Ordering::Acquire))
            } else if cm.world_rank() == 1 {
                // Healthy slave answers until the master goes quiet.
                while cm.poll_status_request(Duration::from_millis(200)) {
                    cm.respond_status(&StatusReport {
                        state: SlaveState::Processing.id(),
                        iterations_done: 3,
                    });
                }
                None
            } else {
                // Rank 2 is deaf: drain requests without ever answering.
                while cm.poll_status_request(Duration::from_millis(200)) {}
                None
            }
        });
        assert_eq!(results[0], Some(2), "the deaf slave's rank must be declared");
    }

    #[test]
    fn stale_cleared_conviction_cannot_starve_a_real_death() {
        // Rank 1 finished, delivered its result, and went quiet before the
        // loop ever saw a Finished report — so it keeps getting convicted,
        // and the master keeps clearing the verdict as stale. Rank 2 is
        // genuinely wedged (silent, connection open). Without the
        // cleared-conviction exemption, rank 1 re-wins the first-death CAS
        // every round and rank 2's conviction never lands.
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                let first_dead = AtomicI64::new(NO_DEAD_SLAVE);
                let declared = std::thread::scope(|s| {
                    let handle = s.spawn(|| {
                        run_heartbeat_loop_with_deadline(
                            &cm,
                            Duration::from_millis(5),
                            Duration::from_millis(20),
                            2,
                            &stop,
                            &first_dead,
                            None,
                        )
                    });
                    // The master's abort predicate, in miniature: rank 1 is
                    // not pending (its result arrived), so its conviction is
                    // stale and gets cleared; rank 2's must stick.
                    let deadline = std::time::Instant::now() + Duration::from_secs(10);
                    let declared = loop {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "wedged rank 2 was never declared dead"
                        );
                        match first_dead.load(Ordering::Acquire) {
                            1 => {
                                let _ = first_dead.compare_exchange(
                                    1,
                                    NO_DEAD_SLAVE,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                );
                            }
                            NO_DEAD_SLAVE => {}
                            rank => break rank,
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    };
                    stop.store(true, Ordering::Release);
                    handle.join().unwrap();
                    declared
                });
                Some(declared)
            } else {
                // Both slaves are deaf: they drain requests, never answer.
                while cm.poll_status_request(Duration::from_millis(200)) {}
                None
            }
        });
        assert_eq!(results[0], Some(2), "the wedged slave's rank must win eventually");
    }

    #[test]
    fn finished_slave_is_never_convicted_by_silence() {
        // A slave that reports Finished and then legitimately goes quiet
        // (its result is waiting in the gather while slower cells train)
        // must NOT be declared dead, no matter how many rounds pass.
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                let first_dead = AtomicI64::new(NO_DEAD_SLAVE);
                let log = std::thread::scope(|s| {
                    let handle = s.spawn(|| {
                        run_heartbeat_loop_with_deadline(
                            &cm,
                            Duration::from_millis(5),
                            Duration::from_millis(15),
                            1, // the harshest possible deadline
                            &stop,
                            &first_dead,
                            None,
                        )
                    });
                    // Give the loop time to see the Finished report and
                    // then plenty of silent rounds.
                    std::thread::sleep(Duration::from_millis(250));
                    stop.store(true, Ordering::Release);
                    handle.join().unwrap()
                });
                assert!(log.any_delayed(), "the silent rounds must still be logged");
                Some(first_dead.load(Ordering::Acquire))
            } else {
                // Answer exactly one request with Finished, then go silent.
                assert!(cm.poll_status_request(Duration::from_secs(5)));
                cm.respond_status(&StatusReport {
                    state: SlaveState::Finished.id(),
                    iterations_done: 9,
                });
                std::thread::sleep(Duration::from_millis(300));
                while cm.poll_status_request(Duration::from_millis(10)) {}
                None
            }
        });
        assert_eq!(results[0], Some(NO_DEAD_SLAVE), "finished slave was convicted");
    }

    #[test]
    fn heartbeat_loop_stops_on_flag() {
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let stop = AtomicBool::new(false);
                let answered = AtomicU64::new(0);
                let log = std::thread::scope(|s| {
                    let handle = s.spawn(|| {
                        run_heartbeat_loop(
                            &cm,
                            Duration::from_millis(10),
                            Duration::from_millis(50),
                            &stop,
                        )
                    });
                    std::thread::sleep(Duration::from_millis(80));
                    stop.store(true, Ordering::Release);
                    let log = handle.join().unwrap();
                    answered.store(log.len() as u64, Ordering::Relaxed);
                    log
                });
                assert!(!log.is_empty(), "no heartbeat rounds ran");
                Some(log.len())
            } else {
                // Keep answering until the master goes quiet for a while.
                let mut answered = 0u32;
                while cm.poll_status_request(Duration::from_millis(200)) {
                    cm.respond_status(&StatusReport {
                        state: SlaveState::Processing.id(),
                        iterations_done: 0,
                    });
                    answered += 1;
                }
                assert!(answered > 0);
                None
            }
        });
        assert!(results[0].unwrap() >= 1);
    }
}
