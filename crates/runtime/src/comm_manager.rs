//! The `comm-manager` class (§III-C): every communication the runtime
//! performs, wrapped behind typed methods.
//!
//! Three communicators are used, exactly as §III-D describes:
//!
//! * **WORLD** — global configuration, run-task messages, status control;
//! * **LOCAL** — slave-only collectives (the per-iteration allgather of
//!   center snapshots), so gathers never involve the master or inactive
//!   processes;
//! * **GLOBAL** — collectives involving all processes (the final result
//!   gather at the master).
//!
//! The underlying transport is `lipiz-mpi`; nothing outside this module
//! touches raw tags or payload encoding, which is what lets a real MPI
//! binding replace the in-process fabric without touching master/slave
//! logic (the decoupling the paper calls out).

use crate::protocol::{
    tags, CacheResponse, NodeAnnouncement, RunTask, SlaveResult, SnapshotMsg, StatusReport,
    TelemetrySummaryMsg,
};
use lipiz_core::CellSnapshot;
use lipiz_mpi::wire::Wire;
use lipiz_mpi::{
    Comm, DegradedGather, FaultPlan, FrozenFrameHandle, PendingAllgather, RecvFrom,
};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the master's announcement collector re-checks for arrivals
/// (and, when idle, for dead connections) during the Fig. 3 bootstrap.
const ANNOUNCE_POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How often the master re-polls for a respawned replacement's
/// announcement while waiting out the rejoin deadline.
const REPLACEMENT_POLL_INTERVAL: Duration = Duration::from_millis(25);
/// How long one frozen-frame response wait runs before re-checking the
/// fetch deadline.
const FROZEN_FRAME_POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Pause between frozen-frame re-requests while the root has not frozen a
/// frame yet.
const FROZEN_FRAME_RETRY_DELAY: Duration = Duration::from_millis(20);

/// Typed communication facade for one rank.
#[derive(Debug, Clone)]
pub struct CommManager {
    world: Comm,
    local: Option<Comm>,
    global: Comm,
    /// Reusable encode buffer for the per-iteration snapshot allgather —
    /// grows to genome size once, then every exchange reuses it instead of
    /// allocating a fresh wire buffer.
    snapshot_scratch: Vec<u8>,
}

impl CommManager {
    /// WORLD rank of the master process.
    pub const MASTER: usize = 0;

    /// Build the three communicators from the WORLD communicator. Must be
    /// called collectively by every rank (subgroup creation is collective).
    pub fn new(mut world: Comm) -> Self {
        let n = world.size();
        assert!(n >= 2, "need a master and at least one slave");
        let slaves: Vec<usize> = (1..n).collect();
        let local = world.subgroup(&slaves);
        let all: Vec<usize> = (0..n).collect();
        let global = world.subgroup(&all).expect("every rank is in GLOBAL");
        Self { world, local, global, snapshot_scratch: Vec::new() }
    }

    /// Is this rank the master?
    pub fn is_master(&self) -> bool {
        self.world.rank() == Self::MASTER
    }

    /// This rank's WORLD rank.
    pub fn world_rank(&self) -> usize {
        self.world.rank()
    }

    /// Number of slave ranks.
    pub fn num_slaves(&self) -> usize {
        self.world.size() - 1
    }

    /// The slave-only communicator.
    ///
    /// # Panics
    /// Panics when called on the master (which is not a LOCAL member).
    pub fn local(&self) -> &Comm {
        self.local.as_ref().expect("master has no LOCAL communicator")
    }

    /// LOCAL rank of this slave (= its grid cell index under the uniform
    /// assignment).
    pub fn local_rank(&self) -> usize {
        self.local().rank()
    }

    // ---- startup protocol -------------------------------------------------

    /// Slave: announce this rank's node name to the master (Fig. 3).
    pub fn announce_node(&self, node_name: &str) {
        let msg =
            NodeAnnouncement { rank: self.world.rank(), node_name: node_name.to_string() };
        self.world.send(Self::MASTER, tags::NODE_NAME, &msg);
    }

    /// Master: collect every slave's announcement (any arrival order).
    ///
    /// # Panics
    /// Panics if a slave's connection dies before it announces (the
    /// monitored master uses [`CommManager::collect_announcements_monitored`]
    /// to turn that into a recoverable abort instead).
    pub fn collect_announcements(&self) -> Vec<NodeAnnouncement> {
        self.collect_announcements_monitored(ANNOUNCE_POLL_INTERVAL)
            .unwrap_or_else(|rank| panic!("slave rank {rank} died before announcing"))
    }

    /// [`CommManager::collect_announcements`] that fails with the dead
    /// WORLD rank instead of wedging when a slave's connection dies before
    /// its announcement arrives — this phase runs *before* the heartbeat
    /// thread exists, so without the check a slave killed in the
    /// bootstrap-to-announce window would hang the master forever.
    pub fn collect_announcements_monitored(
        &self,
        poll: Duration,
    ) -> Result<Vec<NodeAnnouncement>, usize> {
        let mut out: Vec<NodeAnnouncement> = Vec::with_capacity(self.num_slaves());
        let mut outstanding: Vec<usize> = (1..=self.num_slaves()).collect();
        while !outstanding.is_empty() {
            if let Some((msg, _src)) = self.world.recv_timeout::<NodeAnnouncement>(
                RecvFrom::Any,
                tags::NODE_NAME,
                poll,
            ) {
                outstanding.retain(|&r| r != msg.rank);
                out.push(msg);
                continue;
            }
            // Nothing arrived this poll: every still-missing slave must at
            // least have a live connection. (Re-check the queue first — an
            // announcement may have landed between the timeout and here,
            // and a queued message from a dead peer is still valid.) Only
            // the outstanding set is probed — announced ranks never get
            // re-scanned on later idle polls.
            if self.world.probe(RecvFrom::Any, tags::NODE_NAME) {
                continue;
            }
            for &rank in &outstanding {
                if self.world.peer_connection_dead(rank) {
                    return Err(rank);
                }
            }
        }
        out.sort_by_key(|a| a.rank);
        Ok(out)
    }

    /// Master: assign a workload to a slave (run-task message, Fig. 2's
    /// inactive→processing trigger).
    pub fn send_run_task(&self, slave_world_rank: usize, task: &RunTask) {
        self.world.send(slave_world_rank, tags::RUN_TASK, task);
    }

    /// Slave: block until the master's run-task message arrives.
    pub fn recv_run_task(&self) -> RunTask {
        let (task, _): (RunTask, usize) =
            self.world.recv(RecvFrom::Rank(Self::MASTER), tags::RUN_TASK);
        task
    }

    /// Master: await the announcement of an in-flight replacement for
    /// `world_rank` (the respawned process re-runs the Fig. 3 bootstrap).
    /// Returns `None` if the deadline passes first.
    pub fn await_announcement_from(
        &self,
        world_rank: usize,
        timeout: Duration,
    ) -> Option<NodeAnnouncement> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((msg, _)) = self.world.recv_timeout::<NodeAnnouncement>(
                RecvFrom::Rank(world_rank),
                tags::NODE_NAME,
                REPLACEMENT_POLL_INTERVAL,
            ) {
                return Some(msg);
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    // ---- fault injection ---------------------------------------------------

    /// Arm the transport's sever/delay/blackhole enforcement with the
    /// scripted plan (no-op when the plan is empty or a plan is already
    /// installed — the in-process fabric arms at construction).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.world.install_fault_plan(plan);
    }

    /// Advance this rank's fault-plan logical clock to `iter`.
    pub fn tick_fault_clock(&self, iter: usize) {
        self.world.tick_fault_clock(iter);
    }

    // ---- heartbeat protocol -----------------------------------------------

    /// Master: ask a slave for its status.
    pub fn request_status(&self, slave_world_rank: usize) {
        self.world.send(slave_world_rank, tags::STATUS_REQ, &());
    }

    /// Master: await a slave's status response with a deadline.
    pub fn await_status(
        &self,
        slave_world_rank: usize,
        timeout: Duration,
    ) -> Option<StatusReport> {
        self.world
            .recv_timeout::<StatusReport>(
                RecvFrom::Rank(slave_world_rank),
                tags::STATUS_RESP,
                timeout,
            )
            .map(|(r, _)| r)
    }

    /// Slave: check for a pending status request (non-blocking-ish).
    pub fn poll_status_request(&self, timeout: Duration) -> bool {
        self.world
            .recv_timeout::<()>(RecvFrom::Rank(Self::MASTER), tags::STATUS_REQ, timeout)
            .is_some()
    }

    /// Slave: answer a status request.
    pub fn respond_status(&self, report: &StatusReport) {
        self.world.send(Self::MASTER, tags::STATUS_RESP, report);
    }

    /// Slave: ship a telemetry summary to the master (fire-and-forget; the
    /// master drains [`tags::TELEMETRY`] opportunistically while waiting on
    /// the result gather).
    pub fn send_telemetry(&self, msg: &TelemetrySummaryMsg) {
        self.world.send(Self::MASTER, tags::TELEMETRY, msg);
    }

    /// Master: drain one pending telemetry summary, if any arrived within
    /// `timeout` (pass [`Duration::ZERO`] for a pure poll).
    pub fn try_recv_telemetry(&self, timeout: Duration) -> Option<TelemetrySummaryMsg> {
        self.world.recv_timeout(RecvFrom::Any, tags::TELEMETRY, timeout).map(|(m, _)| m)
    }

    // ---- training collectives ----------------------------------------------

    /// Slave: per-iteration allgather of center snapshots on LOCAL.
    /// Returns all cells' snapshots in cell order.
    ///
    /// Encodes straight from the snapshot into a scratch buffer owned by
    /// this manager (no `SnapshotMsg` clone, no fresh wire allocation), so
    /// the steady-state gather cost is the transport alone.
    pub fn exchange_centers(&mut self, snapshot: &CellSnapshot) -> Vec<CellSnapshot> {
        self.snapshot_scratch.clear();
        SnapshotMsg::encode_snapshot(snapshot, &mut self.snapshot_scratch);
        self.local()
            .allgather_bytes(&self.snapshot_scratch)
            .into_iter()
            .map(|part| {
                SnapshotMsg::from_bytes(&part).expect("snapshot decode").into_snapshot()
            })
            .collect()
    }

    /// [`CommManager::exchange_centers`] through the degraded collective:
    /// the fan-in root (cell 0) substitutes a missing peer's slot from its
    /// stale cache under `ctl`'s bounds instead of wedging. Non-root ranks
    /// send byte-identical traffic either way; `round` is this slave's
    /// iteration counter, which every healthy rank advances in lockstep.
    pub fn exchange_centers_degraded(
        &mut self,
        snapshot: &CellSnapshot,
        round: usize,
        ctl: &mut DegradedGather,
    ) -> Vec<CellSnapshot> {
        self.snapshot_scratch.clear();
        SnapshotMsg::encode_snapshot(snapshot, &mut self.snapshot_scratch);
        self.local()
            .allgather_bytes_degraded(&self.snapshot_scratch, round, ctl)
            .into_iter()
            .map(|part| {
                SnapshotMsg::from_bytes(&part).expect("snapshot decode").into_snapshot()
            })
            .collect()
    }

    /// Slave: kick off generation `round`'s snapshot allgather without
    /// waiting for it — the non-blocking half of the `--exchange async`
    /// pipeline. The contribution leaves this rank immediately (non-root
    /// ranks send to the fan-in root; the root just stashes its own part);
    /// the returned pending collective is handed to the
    /// [`AsyncExchanger`], whose background thread runs the blocking
    /// completion while this thread trains.
    pub fn begin_exchange(&mut self, snapshot: &CellSnapshot) -> PendingAllgather {
        self.snapshot_scratch.clear();
        SnapshotMsg::encode_snapshot(snapshot, &mut self.snapshot_scratch);
        self.local().allgather_bytes_split(&self.snapshot_scratch)
    }

    /// Slave: spawn the background exchange thread for `--exchange async`.
    /// The thread owns a clone of the LOCAL communicator and — on the
    /// fan-in root under degraded gathers — the [`DegradedGather`] control
    /// block (clone its frozen-frame handle *before* passing it in if the
    /// main thread must keep serving death-frame requests).
    pub fn start_async_exchange(&self, mut ctl: Option<DegradedGather>) -> AsyncExchanger {
        let comm = self.local().clone();
        let (job_tx, job_rx) = mpsc::channel::<(PendingAllgather, usize)>();
        let (done_tx, done_rx) = mpsc::channel::<Vec<CellSnapshot>>();
        let handle = std::thread::spawn(move || {
            for (pending, round) in job_rx {
                let parts = match ctl.as_mut() {
                    Some(ctl) => comm.allgather_bytes_complete_degraded(pending, round, ctl),
                    None => comm.allgather_bytes_complete(pending),
                };
                let frame: Vec<CellSnapshot> = parts
                    .into_iter()
                    .map(|part| {
                        SnapshotMsg::from_bytes(&part).expect("snapshot decode").into_snapshot()
                    })
                    .collect();
                if done_tx.send(frame).is_err() {
                    break;
                }
            }
        });
        AsyncExchanger { jobs: Some(job_tx), done: done_rx, in_flight: 0, handle: Some(handle) }
    }

    /// Fan-in root's main thread: answer one pending death-frame request
    /// from a catching-up replacement, if any is queued. The frame lives
    /// behind the shared handle so this thread can serve it while the
    /// execution thread is mid-collective. Returns whether a request was
    /// answered.
    pub fn serve_frozen_frame(&self, frame: &FrozenFrameHandle) -> bool {
        let Some(((), src)) =
            self.world.recv_timeout::<()>(RecvFrom::Any, tags::CACHE_REQ, Duration::ZERO)
        else {
            return false;
        };
        let resp = CacheResponse { frame: frame.lock().clone() };
        self.world.send(src, tags::CACHE_RESP, &resp);
        true
    }

    /// Replacement slave: fetch the frozen death-frame from the fan-in root
    /// (WORLD rank 1), polling until the root has frozen one or `timeout`
    /// passes. One request is answered by exactly one response, so the
    /// request/response pairing never skews.
    ///
    /// The deadline is authoritative: every wait below is capped at the
    /// time remaining, and nothing — not a response poll, not the retry
    /// pause, not a late response from a slow root — is accepted once it
    /// has passed. (The previous version let a full poll interval and retry
    /// sleep run past the deadline and would take a frame that arrived
    /// after it, so the fetch could overshoot its budget by whole poll
    /// rounds.)
    pub fn fetch_frozen_frame(&self, timeout: Duration) -> Option<Vec<Vec<u8>>> {
        const ROOT_WORLD: usize = 1;
        let deadline = Instant::now() + timeout;
        loop {
            self.world.send(ROOT_WORLD, tags::CACHE_REQ, &());
            // One response per request; a root that never answers (it died
            // too) bounds out instead of wedging the replacement.
            let resp = loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break None;
                }
                if let Some((resp, _)) = self.world.recv_timeout::<CacheResponse>(
                    RecvFrom::Rank(ROOT_WORLD),
                    tags::CACHE_RESP,
                    remaining.min(FROZEN_FRAME_POLL_INTERVAL),
                ) {
                    break Some(resp);
                }
            };
            match resp {
                Some(CacheResponse { frame: Some(frame) }) => return Some(frame),
                Some(CacheResponse { frame: None }) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return None;
                    }
                    std::thread::sleep(remaining.min(FROZEN_FRAME_RETRY_DELAY));
                    if Instant::now() >= deadline {
                        return None;
                    }
                }
                None => return None,
            }
        }
    }

    /// Final gather of results on GLOBAL: slaves pass `Some(result)`, the
    /// master passes `None` and receives every slave's result (cell order).
    pub fn gather_results(&self, mine: Option<SlaveResult>) -> Option<Vec<SlaveResult>> {
        let gathered = self.global.gather(Self::MASTER, &mine)?;
        let mut results: Vec<SlaveResult> = gathered.into_iter().flatten().collect();
        results.sort_by_key(|r| r.cell);
        Some(results)
    }

    /// Master side of [`CommManager::gather_results`] with an abort hook:
    /// wire-compatible with slaves calling the plain gather, but the
    /// collection is abandoned (returning the still-pending WORLD ranks)
    /// once `should_abort` turns true — the elastic-recovery path where a
    /// heartbeat-declared death must not wedge the master forever.
    ///
    /// # Panics
    /// Panics when called on a slave rank.
    pub fn gather_results_abortable(
        &self,
        poll: Duration,
        should_abort: &dyn Fn(&[usize]) -> bool,
    ) -> Result<Vec<SlaveResult>, Vec<usize>> {
        assert!(self.is_master(), "only the master collects results abortably");
        let mine: Option<SlaveResult> = None;
        match self.global.gather_abortable(Self::MASTER, &mine, poll, should_abort) {
            Ok(gathered) => {
                let mut results: Vec<SlaveResult> = gathered
                    .expect("master receives the gather")
                    .into_iter()
                    .flatten()
                    .collect();
                results.sort_by_key(|r| r.cell);
                Ok(results)
            }
            // GLOBAL group rank == WORLD rank (it spans all ranks in order).
            Err(pending) => Err(pending),
        }
    }

    /// Is the transport connection to `world_rank` known to be gone?
    /// (Always `false` on the in-process fabric.)
    pub fn connection_dead(&self, world_rank: usize) -> bool {
        // GLOBAL spans all ranks in order, so its group ranks ARE world ranks.
        self.global.peer_connection_dead(world_rank)
    }
}

/// Background half of the `--exchange async` pipeline (tentpole of the
/// overlap work): the training thread *begins* generation `i`'s allgather
/// (a non-blocking contribution send via [`CommManager::begin_exchange`]),
/// submits the pending collective here, and trains iteration `i` against
/// the already-completed generation `i-1` while this thread runs the
/// blocking completion.
///
/// Exactly one completion is outstanding at a time and per-(peer, tag)
/// delivery is FIFO on every transport, so the consumed frames — and
/// therefore the run's result — are a pure function of (seed, config),
/// never of how the exchange thread is scheduled.
#[derive(Debug)]
pub struct AsyncExchanger {
    jobs: Option<mpsc::Sender<(PendingAllgather, usize)>>,
    done: mpsc::Receiver<Vec<CellSnapshot>>,
    in_flight: usize,
    handle: Option<JoinHandle<()>>,
}

impl AsyncExchanger {
    /// Hand an in-flight collective (from [`CommManager::begin_exchange`])
    /// to the exchange thread for completion. `round` is the generation's
    /// iteration index — the degraded fan-in root keys its staleness
    /// accounting on it.
    pub fn submit(&mut self, pending: PendingAllgather, round: usize) {
        self.jobs
            .as_ref()
            .expect("exchanger not stopped")
            .send((pending, round))
            .expect("exchange thread alive");
        self.in_flight += 1;
    }

    /// Block until the oldest submitted exchange completes and return its
    /// frame (all cells' snapshots in cell order).
    ///
    /// # Panics
    /// Panics when nothing is in flight — the pipeline invariant (begin
    /// generation `i` before retrieving `i-1`) has been broken.
    pub fn retrieve(&mut self) -> Vec<CellSnapshot> {
        assert!(self.in_flight > 0, "no exchange in flight to retrieve");
        let frame = self.done.recv().expect("exchange thread alive");
        self.in_flight -= 1;
        frame
    }

    /// Number of submitted-but-not-retrieved exchanges (0 or 1 in the
    /// steady-state pipeline).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Shut the exchange thread down, completing any still-queued
    /// collective first (every rank must finish the final generation or
    /// its peers' completions would wedge).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.jobs.take();
        if let Some(handle) = self.handle.take() {
            handle.join().expect("exchange thread panicked");
        }
    }
}

impl Drop for AsyncExchanger {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Avoid a double panic (and a wedge on a dead peer) while
            // unwinding; leak the thread instead.
            self.jobs.take();
            return;
        }
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ConfigMsg;
    use lipiz_core::TrainConfig;
    use lipiz_mpi::Universe;

    #[test]
    fn communicator_roles() {
        let results = Universe::run(4, |world| {
            let cm = CommManager::new(world);
            let local = if cm.is_master() { None } else { Some(cm.local_rank()) };
            (cm.is_master(), cm.num_slaves(), local)
        });
        assert_eq!(results[0], (true, 3, None));
        for (i, r) in results.iter().enumerate().skip(1) {
            assert_eq!(*r, (false, 3, Some(i - 1)), "slave {i}");
        }
    }

    #[test]
    fn announcement_and_run_task_flow() {
        let cfg = TrainConfig::smoke(2);
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let announcements = cm.collect_announcements();
                for (i, a) in announcements.iter().enumerate() {
                    assert_eq!(a.rank, i + 1);
                    let task = RunTask {
                        config: ConfigMsg::from(&TrainConfig::smoke(2)),
                        cell_index: i,
                        resume_from: None,
                        rejoin_round: None,
                    };
                    cm.send_run_task(a.rank, &task);
                }
                announcements.len()
            } else {
                cm.announce_node(&format!("node{:02}", cm.world_rank()));
                let task = cm.recv_run_task();
                assert_eq!(task.cell_index, cm.world_rank() - 1);
                assert_eq!(task.config.clone().into_config(), TrainConfig::smoke(2));
                0
            }
        });
        assert_eq!(results[0], 2);
        let _ = cfg;
    }

    #[test]
    fn center_exchange_orders_by_cell() {
        let results = Universe::run(5, |world| {
            let mut cm = CommManager::new(world);
            if cm.is_master() {
                return vec![];
            }
            let cell = cm.local_rank();
            let snap = CellSnapshot {
                cell,
                gen_genome: vec![cell as f32; 3],
                gen_lr: 1e-4,
                gen_loss: lipiz_nn::GanLoss::Heuristic,
                gen_fitness: cell as f64,
                disc_genome: vec![-(cell as f32); 2],
                disc_lr: 1e-4,
                disc_fitness: 0.0,
            };
            cm.exchange_centers(&snap)
                .into_iter()
                .map(|s| s.gen_genome[0])
                .collect::<Vec<f32>>()
        });
        for r in results.iter().skip(1) {
            assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn async_exchange_consumes_exactly_one_generation_behind() {
        const ITERS: usize = 5;
        const DRAIN_AT: usize = 2; // simulated commit boundary mid-run
        let results = Universe::run(4, |world| {
            let mut cm = CommManager::new(world);
            if cm.is_master() {
                return vec![];
            }
            let cell = cm.local_rank();
            let snap_at = |iter: usize| CellSnapshot {
                cell,
                gen_genome: vec![(cell * 100 + iter) as f32],
                gen_lr: 1e-4,
                gen_loss: lipiz_nn::GanLoss::Heuristic,
                gen_fitness: 0.0,
                disc_genome: vec![0.0],
                disc_lr: 1e-4,
                disc_fitness: 0.0,
            };
            let mut ex = cm.start_async_exchange(None);
            let mut ready: Option<Vec<CellSnapshot>> = None;
            let mut consumed: Vec<Vec<f32>> = Vec::new();
            for iter in 0..ITERS {
                let pending = cm.begin_exchange(&snap_at(iter));
                ex.submit(pending, iter);
                let frame = match ready.take() {
                    Some(f) => f,
                    None => ex.retrieve(),
                };
                consumed.push(frame.iter().map(|s| s.gen_genome[0]).collect());
                if iter == 0 {
                    // Generation 0 bootstraps iteration 0 AND feeds
                    // iteration 1 (the structural staleness starts there).
                    ready = Some(frame);
                }
                if iter == DRAIN_AT && ready.is_none() {
                    // A commit boundary drains the in-flight generation so
                    // the checkpoint can carry it; consuming the stashed
                    // frame next iteration must not change anything.
                    ready = Some(ex.retrieve());
                }
            }
            ex.stop();
            consumed
        });
        for (rank, consumed) in results.iter().enumerate().skip(1) {
            assert_eq!(consumed.len(), ITERS);
            for (iter, frame) in consumed.iter().enumerate() {
                let gen = iter.saturating_sub(1);
                let want: Vec<f32> = (0..3).map(|c| (c * 100 + gen) as f32).collect();
                assert_eq!(frame, &want, "rank {rank} iter {iter}");
            }
        }
    }

    #[test]
    fn frozen_frame_fetch_respects_its_deadline() {
        let results = Universe::run(3, |world| {
            let cm = CommManager::new(world);
            match cm.world_rank() {
                1 => {
                    // A root slower than the replacement's budget: the
                    // first answer (no frame yet) comes quickly, the second
                    // carries a frame but lands after the deadline — it
                    // must not be accepted.
                    for i in 0..2 {
                        let Some(((), src)) = cm.world.recv_timeout::<()>(
                            RecvFrom::Any,
                            tags::CACHE_REQ,
                            Duration::from_secs(5),
                        ) else {
                            break;
                        };
                        std::thread::sleep(Duration::from_millis(if i == 0 { 30 } else { 80 }));
                        let frame = (i > 0).then(|| vec![vec![1u8, 2, 3]]);
                        cm.world.send(src, tags::CACHE_RESP, &CacheResponse { frame });
                    }
                    None
                }
                2 => {
                    let start = Instant::now();
                    let got = cm.fetch_frozen_frame(Duration::from_millis(120));
                    let elapsed = start.elapsed();
                    assert!(got.is_none(), "accepted a frame that arrived after the deadline");
                    assert!(
                        elapsed < Duration::from_millis(360),
                        "fetch overshot its deadline: {elapsed:?}"
                    );
                    Some(elapsed.as_millis() as u64)
                }
                _ => None,
            }
        });
        assert!(results[2].is_some(), "replacement rank never measured");
    }

    #[test]
    fn heartbeat_round_trip() {
        let results = Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                cm.request_status(1);
                let status = cm.await_status(1, Duration::from_secs(5));
                status.map(|s| (s.state, s.iterations_done))
            } else {
                assert!(cm.poll_status_request(Duration::from_secs(5)));
                cm.respond_status(&StatusReport { state: 1, iterations_done: 7 });
                None
            }
        });
        assert_eq!(results[0], Some((1, 7)));
    }

    #[test]
    fn result_gather_collects_all_slaves() {
        let results = Universe::run(4, |world| {
            let cm = CommManager::new(world);
            if cm.is_master() {
                let all = cm.gather_results(None).expect("master receives");
                Some(all.iter().map(|r| (r.cell, r.gen_fitness)).collect::<Vec<_>>())
            } else {
                let cell = cm.local_rank();
                cm.gather_results(Some(SlaveResult {
                    cell,
                    gen_fitness: cell as f64 * 0.1,
                    disc_fitness: 0.0,
                    mixture: vec![1.0],
                    ensemble: vec![vec![0.5; 3]],
                    profile: vec![],
                    wall_seconds: 0.0,
                    telemetry: None,
                }));
                None
            }
        });
        assert_eq!(results[0].as_ref().unwrap(), &[(0, 0.0), (1, 0.1), (2, 0.2)]);
    }

    #[test]
    fn status_poll_times_out_quietly() {
        Universe::run(2, |world| {
            let cm = CommManager::new(world);
            if !cm.is_master() {
                assert!(!cm.poll_status_request(Duration::from_millis(10)));
            }
        });
    }
}
