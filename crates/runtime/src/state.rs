//! Slave state machine (Fig. 2 of the paper).

/// States of a slave process.
///
/// Transitions (Fig. 2): `Inactive → Processing` on receiving a *run task*
/// message; `Processing → Finished` after the last training iteration.
/// No other transition is legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlaveState {
    /// No workload received yet.
    Inactive,
    /// Executing the assigned training task.
    Processing,
    /// Training complete; waiting for the master to gather results.
    Finished,
}

impl SlaveState {
    /// Whether `self → next` is a legal transition.
    pub fn can_transition(self, next: SlaveState) -> bool {
        matches!(
            (self, next),
            (SlaveState::Inactive, SlaveState::Processing)
                | (SlaveState::Processing, SlaveState::Finished)
        )
    }

    /// Apply a transition.
    ///
    /// # Panics
    /// Panics on an illegal transition — state bugs must be loud.
    pub fn transition(self, next: SlaveState) -> SlaveState {
        assert!(self.can_transition(next), "illegal slave transition {self:?} -> {next:?}");
        next
    }

    /// Stable id for the wire protocol.
    pub fn id(self) -> u8 {
        match self {
            SlaveState::Inactive => 0,
            SlaveState::Processing => 1,
            SlaveState::Finished => 2,
        }
    }

    /// Inverse of [`SlaveState::id`].
    pub fn from_id(id: u8) -> Option<SlaveState> {
        match id {
            0 => Some(SlaveState::Inactive),
            1 => Some(SlaveState::Processing),
            2 => Some(SlaveState::Finished),
            _ => None,
        }
    }

    /// Display name (matches Fig. 2 labels).
    pub fn name(self) -> &'static str {
        match self {
            SlaveState::Inactive => "inactive",
            SlaveState::Processing => "processing",
            SlaveState::Finished => "finished",
        }
    }

    /// ASCII rendering of the full state machine (the `repro fig2` target).
    pub fn render_machine() -> String {
        concat!(
            "          run task message            last iteration\n",
            "[inactive] ----------------> [processing] ----------------> [finished]\n",
        )
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_transitions() {
        assert!(SlaveState::Inactive.can_transition(SlaveState::Processing));
        assert!(SlaveState::Processing.can_transition(SlaveState::Finished));
    }

    #[test]
    fn illegal_transitions() {
        assert!(!SlaveState::Inactive.can_transition(SlaveState::Finished));
        assert!(!SlaveState::Finished.can_transition(SlaveState::Processing));
        assert!(!SlaveState::Processing.can_transition(SlaveState::Inactive));
        assert!(!SlaveState::Inactive.can_transition(SlaveState::Inactive));
    }

    #[test]
    #[should_panic(expected = "illegal slave transition")]
    fn transition_panics_on_violation() {
        SlaveState::Finished.transition(SlaveState::Processing);
    }

    #[test]
    fn full_lifecycle() {
        let s = SlaveState::Inactive;
        let s = s.transition(SlaveState::Processing);
        let s = s.transition(SlaveState::Finished);
        assert_eq!(s, SlaveState::Finished);
    }

    #[test]
    fn id_round_trip() {
        for s in [SlaveState::Inactive, SlaveState::Processing, SlaveState::Finished] {
            assert_eq!(SlaveState::from_id(s.id()), Some(s));
        }
        assert_eq!(SlaveState::from_id(7), None);
    }

    #[test]
    fn machine_rendering_names_all_states() {
        let art = SlaveState::render_machine();
        for s in [SlaveState::Inactive, SlaveState::Processing, SlaveState::Finished] {
            assert!(art.contains(s.name()));
        }
    }
}
