//! Checkpoint/restore subsystem: versioned, `Wire`-encoded full training
//! state per cell, committed atomically and written by an async background
//! writer so training never blocks on disk.
//!
//! # On-disk layout
//!
//! A checkpoint directory holds one manifest plus per-cell, per-iteration
//! state files:
//!
//! ```text
//! DIR/manifest.lpzm                     # the run's full TrainConfig
//! DIR/cell_0003_iter_00000040.ckpt      # cell 3's state after iteration 40
//! ```
//!
//! Every file is `MAGIC ∥ version ∥ payload ∥ fnv1a64(payload)`; writes go
//! to a `.tmp` sibling, are fsynced, and then **renamed onto the final
//! name** — a reader can never observe a half-written checkpoint, and a
//! crash mid-write leaves only an ignored temp file. Because slaves commit
//! asynchronously, different cells may momentarily disagree on their newest
//! iteration; [`latest_consistent_iteration`] finds the newest cut at which
//! *every* cell has a committed file, which is the only state a resume is
//! allowed to start from. The writer keeps the previous cut around (see
//! [`DirSink`] pruning) so a crash mid-commit-wave still leaves one
//! complete cut on disk.
//!
//! # The async writer
//!
//! [`CheckpointWriter`] owns a background thread: the training thread
//! captures a [`CellState`] (reusing a recycled buffer — double-buffered,
//! no steady-state allocation) and [`CheckpointWriter::submit`]s it, which
//! is a channel push and never blocks on I/O; serialization into a reusable
//! scratch buffer and the disk commit happen on the writer thread. The
//! non-blocking property is asserted by a unit test against a deliberately
//! wedged sink.
//!
//! Corrupt, truncated, or mismatched checkpoints fail loudly with a typed
//! [`CheckpointError`] — never a partial restore.

use crate::protocol::{ConfigMsg, SnapshotMsg};
use lipiz_core::resume::StateError;
use lipiz_core::{CellSnapshot, CellState, Individual, TrainConfig};
use lipiz_data::BatchLoaderState;
use lipiz_mpi::wire::{Wire, WireError};
use lipiz_mpi::wire_struct;
use lipiz_nn::{AdamState, GanLoss};
use lipiz_tensor::Rng64State;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// File magic for per-cell state files ("LPZK").
const CELL_MAGIC: &[u8; 4] = b"LPZK";
/// File magic for the manifest ("LPZM").
const MANIFEST_MAGIC: &[u8; 4] = b"LPZM";
/// Checkpoint format version. v2: the manifest's embedded config carries
/// the failure-semantics block (heartbeat policy, staleness bound, fault
/// plan). v3: cell states carry the pending neighbor-exchange frame (and
/// the manifest config the exchange mode) so `--exchange async` runs resume
/// bit-exactly; older versions fail loudly as
/// [`CheckpointError::UnsupportedVersion`].
/// v4: the config grew the telemetry block (enabled flag, journal dir,
/// ring capacity), widening the embedded [`ConfigMsg`].
const FORMAT_VERSION: u32 = 4;
/// Manifest file name inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "manifest.lpzm";
/// How many committed iterations [`DirSink`] keeps per cell (the newest
/// cut plus the previous one, so a crash mid-commit-wave never deletes the
/// last complete cut).
const KEEP_ITERATIONS_PER_CELL: usize = 2;

// ---- errors ---------------------------------------------------------------

/// Typed failure of a checkpoint operation. Loading never restores
/// partially: any of these aborts the whole restore.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a checkpoint file (wrong magic) .
    BadMagic,
    /// Format version newer than this build understands.
    UnsupportedVersion(u32),
    /// File shorter than its fixed framing.
    Truncated,
    /// Payload checksum mismatch (bit rot or torn write).
    ChecksumMismatch,
    /// Payload failed to decode.
    Decode(WireError),
    /// Decoded state failed semantic validation against the config.
    Invalid(StateError),
    /// The directory holds no complete checkpoint cut to resume from.
    NoCheckpoint,
    /// Structural inconsistency across files (e.g. a state file claiming
    /// the wrong cell).
    Inconsistent(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a lipizzaner checkpoint file"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated => write!(f, "truncated checkpoint file"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Decode(e) => write!(f, "corrupt checkpoint payload: {e}"),
            CheckpointError::Invalid(e) => write!(f, "checkpoint rejected: {e}"),
            CheckpointError::NoCheckpoint => {
                write!(f, "no complete checkpoint cut found to resume from")
            }
            CheckpointError::Inconsistent(what) => {
                write!(f, "inconsistent checkpoint directory: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Decode(e)
    }
}

impl From<StateError> for CheckpointError {
    fn from(e: StateError) -> Self {
        CheckpointError::Invalid(e)
    }
}

// ---- wire mirrors ---------------------------------------------------------

/// Wire mirror of [`Rng64State`].
#[derive(Debug, Clone, PartialEq)]
pub struct RngStateMsg {
    w0: u64,
    w1: u64,
    w2: u64,
    w3: u64,
    spare_gauss: Option<f64>,
}
wire_struct!(RngStateMsg { w0, w1, w2, w3, spare_gauss });

impl From<Rng64State> for RngStateMsg {
    fn from(s: Rng64State) -> Self {
        Self {
            w0: s.words[0],
            w1: s.words[1],
            w2: s.words[2],
            w3: s.words[3],
            spare_gauss: s.spare_gauss,
        }
    }
}

impl From<RngStateMsg> for Rng64State {
    fn from(m: RngStateMsg) -> Self {
        Rng64State { words: [m.w0, m.w1, m.w2, m.w3], spare_gauss: m.spare_gauss }
    }
}

/// Wire mirror of [`AdamState`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamStateMsg {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}
wire_struct!(AdamStateMsg { m, v, t, beta1, beta2, eps });

impl From<&AdamState> for AdamStateMsg {
    fn from(s: &AdamState) -> Self {
        Self {
            m: s.m.clone(),
            v: s.v.clone(),
            t: s.t,
            beta1: s.beta1,
            beta2: s.beta2,
            eps: s.eps,
        }
    }
}

impl From<AdamStateMsg> for AdamState {
    fn from(m: AdamStateMsg) -> Self {
        AdamState { m: m.m, v: m.v, t: m.t, beta1: m.beta1, beta2: m.beta2, eps: m.eps }
    }
}

/// Wire mirror of one [`Individual`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberMsg {
    genome: Vec<f32>,
    lr: f32,
    loss: u8,
    fitness: f64,
}
wire_struct!(MemberMsg { genome, lr, loss, fitness });

impl From<&Individual> for MemberMsg {
    fn from(i: &Individual) -> Self {
        Self { genome: i.genome.clone(), lr: i.lr, loss: i.loss.id(), fitness: i.fitness }
    }
}

impl MemberMsg {
    fn into_individual(self) -> Result<Individual, WireError> {
        Ok(Individual {
            genome: self.genome,
            lr: self.lr,
            loss: GanLoss::from_id(self.loss).ok_or(WireError::new("gan loss id"))?,
            fitness: self.fitness,
        })
    }
}

/// Wire mirror of [`BatchLoaderState`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoaderStateMsg {
    order: Vec<usize>,
    cursor: usize,
    epoch: u64,
    rng: RngStateMsg,
}
wire_struct!(LoaderStateMsg { order, cursor, epoch, rng });

impl From<&BatchLoaderState> for LoaderStateMsg {
    fn from(s: &BatchLoaderState) -> Self {
        Self { order: s.order.clone(), cursor: s.cursor, epoch: s.epoch, rng: s.rng.into() }
    }
}

impl From<LoaderStateMsg> for BatchLoaderState {
    fn from(m: LoaderStateMsg) -> Self {
        BatchLoaderState { order: m.order, cursor: m.cursor, epoch: m.epoch, rng: m.rng.into() }
    }
}

/// Wire mirror of a full [`CellState`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellStateMsg {
    cell: usize,
    iteration: usize,
    batch_counter: u64,
    gen_members: Vec<MemberMsg>,
    disc_members: Vec<MemberMsg>,
    mixture: Vec<f32>,
    adam_g: AdamStateMsg,
    adam_d: AdamStateMsg,
    rng_mutate: RngStateMsg,
    rng_train: RngStateMsg,
    rng_mixture: RngStateMsg,
    loader: LoaderStateMsg,
    exchange_frame: Vec<SnapshotMsg>,
}
wire_struct!(CellStateMsg {
    cell,
    iteration,
    batch_counter,
    gen_members,
    disc_members,
    mixture,
    adam_g,
    adam_d,
    rng_mutate,
    rng_train,
    rng_mixture,
    loader,
    exchange_frame,
});

/// Fallible [`SnapshotMsg`] → [`CellSnapshot`] conversion for the disk
/// path: an invalid loss id in a checkpoint is a decode error, not a
/// protocol-bug panic.
fn snapshot_from_msg(m: SnapshotMsg) -> Result<CellSnapshot, WireError> {
    Ok(CellSnapshot {
        cell: m.cell,
        gen_genome: m.gen_genome,
        gen_lr: m.gen_lr,
        gen_loss: GanLoss::from_id(m.gen_loss).ok_or(WireError::new("gan loss id"))?,
        gen_fitness: m.gen_fitness,
        disc_genome: m.disc_genome,
        disc_lr: m.disc_lr,
        disc_fitness: m.disc_fitness,
    })
}

impl From<&CellState> for CellStateMsg {
    fn from(s: &CellState) -> Self {
        Self {
            cell: s.cell,
            iteration: s.iteration,
            batch_counter: s.batch_counter,
            gen_members: s.gen_members.iter().map(MemberMsg::from).collect(),
            disc_members: s.disc_members.iter().map(MemberMsg::from).collect(),
            mixture: s.mixture.clone(),
            adam_g: (&s.adam_g).into(),
            adam_d: (&s.adam_d).into(),
            rng_mutate: s.rng_mutate.into(),
            rng_train: s.rng_train.into(),
            rng_mixture: s.rng_mixture.into(),
            loader: (&s.loader).into(),
            exchange_frame: s.exchange_frame.iter().map(SnapshotMsg::from).collect(),
        }
    }
}

impl CellStateMsg {
    /// Convert back to the core type (invalid enum ids are decode errors,
    /// not panics — checkpoints come from disk, not from trusted peers).
    pub fn into_state(self) -> Result<CellState, WireError> {
        Ok(CellState {
            cell: self.cell,
            iteration: self.iteration,
            batch_counter: self.batch_counter,
            gen_members: self
                .gen_members
                .into_iter()
                .map(MemberMsg::into_individual)
                .collect::<Result<_, _>>()?,
            disc_members: self
                .disc_members
                .into_iter()
                .map(MemberMsg::into_individual)
                .collect::<Result<_, _>>()?,
            mixture: self.mixture,
            adam_g: self.adam_g.into(),
            adam_d: self.adam_d.into(),
            rng_mutate: self.rng_mutate.into(),
            rng_train: self.rng_train.into(),
            rng_mixture: self.rng_mixture.into(),
            loader: self.loader.into(),
            exchange_frame: self
                .exchange_frame
                .into_iter()
                .map(snapshot_from_msg)
                .collect::<Result<_, _>>()?,
        })
    }
}

// ---- framing --------------------------------------------------------------

/// FNV-1a 64-bit hash (payload integrity check).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frame `payload` as `magic ∥ version ∥ payload ∥ fnv1a64(payload)` into
/// `out` (cleared first; capacity is reused across commits).
fn frame_into(magic: &[u8; 4], payload_of: impl FnOnce(&mut Vec<u8>), out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(magic);
    FORMAT_VERSION.encode(out);
    let body_start = out.len();
    payload_of(out);
    let checksum = fnv1a64(&out[body_start..]);
    checksum.encode(out);
}

/// Check framing and return the payload slice.
fn unframe<'a>(magic: &[u8; 4], bytes: &'a [u8]) -> Result<&'a [u8], CheckpointError> {
    if bytes.len() < 4 + 4 + 8 {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..4] != magic {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let payload = &bytes[8..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a64(payload) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Write `bytes` to `path` atomically: temp sibling, fsync, rename,
/// directory fsync.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // The rename alone survives a process crash but not a power loss: the
    // directory entry update must itself reach disk before a committed cut
    // counts as durable.
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

// ---- file naming ----------------------------------------------------------

/// File name of cell `cell`'s state committed after iteration `iteration`.
pub fn cell_file_name(cell: usize, iteration: usize) -> String {
    format!("cell_{cell:04}_iter_{iteration:08}.ckpt")
}

/// Parse a [`cell_file_name`]-shaped name back into `(cell, iteration)`.
fn parse_cell_file_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("cell_")?;
    let (cell, rest) = rest.split_once("_iter_")?;
    let iter = rest.strip_suffix(".ckpt")?;
    Some((cell.parse().ok()?, iter.parse().ok()?))
}

// ---- manifest -------------------------------------------------------------

/// Write the run manifest (the complete [`TrainConfig`]) into `dir`,
/// creating the directory if needed. Called once by the run's coordinator
/// before training starts.
pub fn write_manifest(dir: &Path, cfg: &TrainConfig) -> Result<(), CheckpointError> {
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    frame_into(MANIFEST_MAGIC, |out| ConfigMsg::from(cfg).encode(out), &mut bytes);
    write_atomic(&dir.join(MANIFEST_NAME), &bytes)
}

/// Load the run manifest from `dir`.
pub fn read_manifest(dir: &Path) -> Result<TrainConfig, CheckpointError> {
    let bytes = fs::read(dir.join(MANIFEST_NAME))?;
    let payload = unframe(MANIFEST_MAGIC, &bytes)?;
    Ok(ConfigMsg::from_bytes(payload)?.into_config())
}

// ---- cell state files ------------------------------------------------------

/// Serialize `state` into `scratch` in the on-disk frame (scratch capacity
/// is reused across commits) and commit it atomically under `dir`.
pub fn write_cell_state_with(
    dir: &Path,
    state: &CellState,
    scratch: &mut Vec<u8>,
) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(dir)?;
    frame_into(CELL_MAGIC, |out| CellStateMsg::from(state).encode(out), scratch);
    let path = dir.join(cell_file_name(state.cell, state.iteration));
    write_atomic(&path, scratch)?;
    Ok(path)
}

/// [`write_cell_state_with`] with a fresh scratch buffer.
pub fn write_cell_state(dir: &Path, state: &CellState) -> Result<PathBuf, CheckpointError> {
    write_cell_state_with(dir, state, &mut Vec::new())
}

/// Load and fully validate one cell state file. `cfg` is the manifest
/// config the state must be consistent with.
pub fn read_cell_state(path: &Path, cfg: &TrainConfig) -> Result<CellState, CheckpointError> {
    let bytes = fs::read(path)?;
    let payload = unframe(CELL_MAGIC, &bytes)?;
    let state = CellStateMsg::from_bytes(payload)?.into_state()?;
    state.validate(cfg)?;
    Ok(state)
}

// ---- directory scan --------------------------------------------------------

/// Map every committed iteration in `dir` to the set of cells that have a
/// state file for it.
fn committed_cuts(dir: &Path) -> Result<BTreeMap<usize, Vec<usize>>, CheckpointError> {
    let mut cuts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((cell, iter)) = parse_cell_file_name(name) {
            cuts.entry(iter).or_default().push(cell);
        }
    }
    Ok(cuts)
}

/// Is `name` a checkpoint artifact — a cell state file, the manifest, or
/// one of their temp siblings left by an interrupted [`write_atomic`]?
/// With `cell` set, only that cell's state files match: the manifest
/// belongs to the coordinator (a slave clearing its own lane must not
/// delete the manifest the master just wrote for the new run).
fn is_stale_artifact(name: &str, cell: Option<usize>) -> bool {
    if name == MANIFEST_NAME || name == "manifest.tmp" {
        return cell.is_none();
    }
    let stem = name.strip_suffix(".tmp").unwrap_or(name);
    let full = if stem == name { stem.to_string() } else { format!("{stem}.ckpt") };
    match parse_cell_file_name(&full) {
        Some((c, _)) => cell.is_none_or(|want| c == want),
        None => false,
    }
}

/// Remove every checkpoint artifact in `dir` (restricted to one cell's
/// files when `cell` is given): state files, the manifest, and temp
/// siblings. Called when a run starts **fresh** with checkpointing into a
/// directory that may hold a previous run's files — a structurally
/// compatible stale cut must never be silently adopted by a later
/// recovery scan, or it would resurrect the old run's weights as this
/// run's output. A missing directory is fine. Returns how many files were
/// removed.
pub fn clear_stale(dir: &Path, cell: Option<usize>) -> Result<usize, CheckpointError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_stale_artifact(name, cell) {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The newest iteration at which *every* cell `0..cells` has a committed
/// state file — the only cut a resume may start from. `Ok(None)` when the
/// directory holds no complete cut.
pub fn latest_consistent_iteration(
    dir: &Path,
    cells: usize,
) -> Result<Option<usize>, CheckpointError> {
    let cuts = committed_cuts(dir)?;
    Ok(cuts
        .into_iter()
        .rev()
        .find(|(_, present)| (0..cells).all(|c| present.contains(&c)))
        .map(|(iter, _)| iter))
}

/// Load the complete grid state at the newest consistent cut: returns the
/// cut's iteration and every cell's validated state in grid order.
pub fn load_grid_states(
    dir: &Path,
    cfg: &TrainConfig,
) -> Result<(usize, Vec<CellState>), CheckpointError> {
    let cells = cfg.cells();
    let iter = latest_consistent_iteration(dir, cells)?.ok_or(CheckpointError::NoCheckpoint)?;
    let states = (0..cells)
        .map(|c| load_cell_state_at(dir, cfg, c, iter))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((iter, states))
}

/// Load one cell's validated state at a specific committed iteration.
pub fn load_cell_state_at(
    dir: &Path,
    cfg: &TrainConfig,
    cell: usize,
    iteration: usize,
) -> Result<CellState, CheckpointError> {
    let state = read_cell_state(&dir.join(cell_file_name(cell, iteration)), cfg)?;
    if state.cell != cell || state.iteration != iteration {
        return Err(CheckpointError::Inconsistent("state file claims a different cell/iter"));
    }
    Ok(state)
}

// ---- async writer ----------------------------------------------------------

/// Where committed states go. The production sink is [`DirSink`]; tests
/// substitute wedged or counting sinks to pin the writer's concurrency
/// properties.
pub trait CheckpointSink: Send + 'static {
    /// Durably commit one captured state.
    fn commit(&mut self, state: &CellState) -> Result<(), CheckpointError>;
}

/// The production sink: atomic per-cell files under a directory, with a
/// reusable encode scratch and pruning of old iterations. Pruning keeps
/// the newest [`KEEP_ITERATIONS_PER_CELL`] files per cell **and** never
/// deletes anything at or above the newest *grid-consistent* cut — each
/// cell's writer drains its queue at its own pace, so a purely per-cell
/// retention window could momentarily leave no iteration at which every
/// cell has a file, and a crash in that window would force a
/// restart-from-scratch despite committed progress.
pub struct DirSink {
    dir: PathBuf,
    /// Grid cells the directory serves (the consistent-cut denominator).
    cells: usize,
    scratch: Vec<u8>,
}

impl DirSink {
    /// Sink committing into `dir` for a `cells`-cell grid.
    pub fn new(dir: impl Into<PathBuf>, cells: usize) -> Self {
        Self { dir: dir.into(), cells, scratch: Vec::new() }
    }

    /// Delete this cell's older iteration files beyond the retention
    /// window, never touching the newest complete cut (or anything newer).
    /// Best-effort: pruning failures never fail a commit.
    fn prune(&self, cell: usize) {
        let protected_from =
            latest_consistent_iteration(&self.dir, self.cells).ok().flatten().unwrap_or(0);
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        let mut iters: Vec<usize> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().and_then(parse_cell_file_name))
            .filter(|&(c, _)| c == cell)
            .map(|(_, iter)| iter)
            .collect();
        iters.sort_unstable_by(|a, b| b.cmp(a));
        for &iter in iters.iter().skip(KEEP_ITERATIONS_PER_CELL) {
            if iter >= protected_from {
                continue;
            }
            let _ = fs::remove_file(self.dir.join(cell_file_name(cell, iter)));
        }
    }
}

impl CheckpointSink for DirSink {
    fn commit(&mut self, state: &CellState) -> Result<(), CheckpointError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = write_cell_state_with(&self.dir, state, &mut scratch);
        self.scratch = scratch;
        result?;
        self.prune(state.cell);
        Ok(())
    }
}

/// Async background checkpoint writer.
///
/// [`CheckpointWriter::submit`] hands a captured state to the writer thread
/// and returns immediately — it never blocks on serialization or disk, so a
/// training iteration's critical path only pays the in-memory capture.
/// Committed states flow back through a recycle channel
/// ([`CheckpointWriter::recycled`]) so steady-state capture reuses their
/// buffers instead of allocating.
pub struct CheckpointWriter {
    tx: Option<mpsc::Sender<CellState>>,
    recycle: mpsc::Receiver<CellState>,
    commits: Arc<AtomicU64>,
    handle: Option<JoinHandle<Result<u64, CheckpointError>>>,
}

impl CheckpointWriter {
    /// Writer committing into `dir` (serving a `cells`-cell grid) through
    /// the production [`DirSink`].
    pub fn to_dir(dir: impl Into<PathBuf>, cells: usize) -> Self {
        Self::with_sink(DirSink::new(dir, cells))
    }

    /// Writer over an arbitrary sink (tests).
    pub fn with_sink(mut sink: impl CheckpointSink) -> Self {
        let (tx, rx) = mpsc::channel::<CellState>();
        // Bounded recycle lane: if the trainer never drains it, old states
        // are simply dropped instead of accumulating.
        let (recycle_tx, recycle_rx) = mpsc::sync_channel::<CellState>(2);
        let commits = Arc::new(AtomicU64::new(0));
        let commits_thread = Arc::clone(&commits);
        let handle = std::thread::spawn(move || {
            let mut done = 0u64;
            for state in rx {
                sink.commit(&state)?;
                commits_thread.fetch_add(1, Ordering::Release);
                done += 1;
                let _ = recycle_tx.try_send(state);
            }
            Ok(done)
        });
        Self { tx: Some(tx), recycle: recycle_rx, commits, handle: Some(handle) }
    }

    /// Enqueue a captured state for committing. Returns immediately; the
    /// state is serialized and written by the background thread. Submitting
    /// after the writer thread has failed is a silent no-op — the error
    /// surfaces from [`CheckpointWriter::finish`].
    pub fn submit(&self, state: CellState) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(state);
        }
    }

    /// Take back a committed state's buffers for the next capture
    /// (double-buffering). `None` when no commit has drained yet.
    pub fn recycled(&self) -> Option<CellState> {
        self.recycle.try_recv().ok()
    }

    /// Number of states durably committed so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Acquire)
    }

    /// Close the queue, wait for every pending commit, and surface the
    /// first sink error if any. Returns the total number of commits.
    pub fn finish(mut self) -> Result<u64, CheckpointError> {
        self.tx.take();
        let handle = self.handle.take().expect("finish called once");
        handle.join().unwrap_or(Err(CheckpointError::Inconsistent("writer thread panicked")))
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_core::CellEngine;
    use lipiz_tensor::{Matrix, Rng64};
    use parking_lot::Mutex;
    use std::time::{Duration, Instant};

    fn toy_data(cfg: &TrainConfig) -> Matrix {
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    fn captured(cfg: &TrainConfig, cell: usize, iters: usize) -> CellState {
        let mut engine = CellEngine::new(cell, cfg, toy_data(cfg));
        let mut prof = lipiz_core::Profiler::new();
        let snaps: Vec<_> =
            (0..cfg.subpopulation_size() - 1).map(|_| engine.snapshot()).collect();
        for _ in 0..iters {
            engine.run_iteration(&snaps, &mut prof);
        }
        engine.capture_state()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lipiz_checkpoint_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cell_state_file_round_trips_bit_exactly() {
        let cfg = TrainConfig::smoke(2);
        let state = captured(&cfg, 1, 1);
        let dir = tmpdir("round_trip");
        let path = write_cell_state(&dir, &state).unwrap();
        let back = read_cell_state(&path, &cfg).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn async_exchange_frame_round_trips_bit_exactly() {
        // Async runs checkpoint the frame the next iteration will consume;
        // it must survive the disk round trip exactly like the rest of the
        // state, and a frame that disagrees with the grid must be rejected.
        let cfg = TrainConfig::smoke(2);
        let mut state = captured(&cfg, 1, 1);
        let mut donor = CellEngine::new(0, &cfg, toy_data(&cfg));
        state.exchange_frame = (0..cfg.cells()).map(|_| donor.snapshot()).collect();
        let dir = tmpdir("exchange_frame");
        let path = write_cell_state(&dir, &state).unwrap();
        let back = read_cell_state(&path, &cfg).unwrap();
        assert_eq!(back, state);

        state.exchange_frame.pop();
        assert!(state.validate(&cfg).is_err(), "short frame must not validate");
    }

    #[test]
    fn manifest_round_trips() {
        let dir = tmpdir("manifest");
        let cfg = TrainConfig::smoke(3).with_mustangs().with_checkpoints("x", 2);
        write_manifest(&dir, &cfg).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), cfg);
    }

    #[test]
    fn corruption_fails_loudly_with_typed_errors() {
        let cfg = TrainConfig::smoke(2);
        let state = captured(&cfg, 0, 0);
        let dir = tmpdir("corruption");
        let path = write_cell_state(&dir, &state).unwrap();
        let original = fs::read(&path).unwrap();

        // Truncation below the fixed framing.
        fs::write(&path, &original[..10]).unwrap();
        assert!(matches!(read_cell_state(&path, &cfg), Err(CheckpointError::Truncated)));

        // Truncated payload: checksum can no longer match.
        fs::write(&path, &original[..original.len() - 20]).unwrap();
        assert!(matches!(read_cell_state(&path, &cfg), Err(CheckpointError::ChecksumMismatch)));

        // Bit flip in the payload.
        let mut flipped = original.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(read_cell_state(&path, &cfg), Err(CheckpointError::ChecksumMismatch)));

        // Wrong magic.
        let mut bad_magic = original.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(read_cell_state(&path, &cfg), Err(CheckpointError::BadMagic)));

        // Future version.
        let mut future = original.clone();
        future[4] = 99;
        fs::write(&path, &future).unwrap();
        assert!(matches!(
            read_cell_state(&path, &cfg),
            Err(CheckpointError::UnsupportedVersion(99))
        ));

        // Valid frame, but the state disagrees with the config.
        fs::write(&path, &original).unwrap();
        let mut other = cfg.clone();
        other.network.hidden_units += 1;
        assert!(matches!(read_cell_state(&path, &other), Err(CheckpointError::Invalid(_))));
    }

    #[test]
    fn clear_stale_removes_previous_run_artifacts() {
        let cfg = TrainConfig::smoke(2);
        let dir = tmpdir("clear_stale");
        write_manifest(&dir, &cfg).unwrap();
        for cell in 0..2 {
            write_cell_state(&dir, &captured(&cfg, cell, 0)).unwrap();
        }
        // An interrupted write_atomic leaves a temp sibling behind.
        fs::write(dir.join("cell_0001_iter_00000007.tmp"), b"partial").unwrap();
        // Unrelated files must survive the sweep.
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();

        // Per-cell clear: cell 1's lane only; the manifest stays (it
        // belongs to the coordinator, not the slave clearing its lane).
        assert_eq!(clear_stale(&dir, Some(1)).unwrap(), 2);
        assert!(read_manifest(&dir).is_ok());
        assert!(dir.join(cell_file_name(0, 0)).exists());
        assert!(!dir.join(cell_file_name(1, 0)).exists());

        // Whole-directory clear: every artifact goes, the scan comes back
        // empty, and foreign files are untouched.
        assert_eq!(clear_stale(&dir, None).unwrap(), 2);
        assert_eq!(latest_consistent_iteration(&dir, 2).unwrap(), None);
        assert!(matches!(read_manifest(&dir), Err(CheckpointError::Io(_))));
        assert!(dir.join("notes.txt").exists());

        // A directory that does not exist is a clean no-op.
        assert_eq!(clear_stale(Path::new("/nonexistent/lipiz"), None).unwrap(), 0);
    }

    #[test]
    fn consistent_cut_requires_every_cell() {
        let mut cfg = TrainConfig::smoke(2); // 4 cells
        cfg.coevolution.iterations = 10; // room for the cuts below
        let dir = tmpdir("cuts");
        assert_eq!(latest_consistent_iteration(&dir, 4).unwrap(), None);
        // Iteration 2: all four cells. Iteration 4: only cells 0 and 1
        // (slaves commit asynchronously).
        for cell in 0..4 {
            let mut s = captured(&cfg, cell, 0);
            s.iteration = 2;
            write_cell_state(&dir, &s).unwrap();
        }
        for cell in 0..2 {
            let mut s = captured(&cfg, cell, 0);
            s.iteration = 4;
            write_cell_state(&dir, &s).unwrap();
        }
        assert_eq!(latest_consistent_iteration(&dir, 4).unwrap(), Some(2));
        // Completing iteration 4 moves the cut forward.
        for cell in 2..4 {
            let mut s = captured(&cfg, cell, 0);
            s.iteration = 4;
            write_cell_state(&dir, &s).unwrap();
        }
        assert_eq!(latest_consistent_iteration(&dir, 4).unwrap(), Some(4));

        let (iter, states) = load_grid_states(&dir, &cfg).unwrap();
        assert_eq!(iter, 4);
        assert_eq!(states.len(), 4);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.cell, i);
            assert_eq!(s.iteration, 4);
        }
    }

    #[test]
    fn missing_checkpoint_is_typed() {
        let dir = tmpdir("empty");
        let cfg = TrainConfig::smoke(2);
        assert!(matches!(load_grid_states(&dir, &cfg), Err(CheckpointError::NoCheckpoint)));
    }

    fn present_iters(dir: &Path, cell: usize) -> Vec<usize> {
        let mut present: Vec<usize> = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().to_str().and_then(parse_cell_file_name))
            .filter(|&(c, _)| c == cell)
            .map(|(_, iter)| iter)
            .collect();
        present.sort_unstable();
        present
    }

    #[test]
    fn dir_sink_prunes_but_keeps_previous_cut() {
        let cfg = TrainConfig::smoke(2);
        let dir = tmpdir("prune");
        let mut sink = DirSink::new(&dir, 1); // single-cell grid: cut == own newest
        for iter in [1usize, 2, 3, 4, 5] {
            let mut s = captured(&cfg, 0, 0);
            s.iteration = iter;
            sink.commit(&s).unwrap();
        }
        assert_eq!(present_iters(&dir, 0), vec![4, 5], "retention window violated");
    }

    #[test]
    fn pruning_never_deletes_the_newest_consistent_cut() {
        // Writers drain at their own pace: cell 0 races ahead to iteration
        // 5 while cell 1 has only committed up to 2. Cell 0's pruning must
        // keep iteration 2 alive — it is part of the only cut every cell
        // has — or a crash here would force a restart from scratch.
        let mut cfg = TrainConfig::smoke(2);
        cfg.grid.rows = 1;
        cfg.grid.cols = 2;
        cfg.coevolution.iterations = 10;
        let dir = tmpdir("prune_cut");
        let mut sink = DirSink::new(&dir, 2);
        for iter in [1usize, 2] {
            let mut s = captured(&cfg, 1, 0);
            s.iteration = iter;
            sink.commit(&s).unwrap();
        }
        for iter in [1usize, 2, 3, 4, 5] {
            let mut s = captured(&cfg, 0, 0);
            s.iteration = iter;
            sink.commit(&s).unwrap();
        }
        // Cell 0 kept its newest two AND everything at/above the cut (2).
        assert_eq!(present_iters(&dir, 0), vec![2, 3, 4, 5]);
        assert_eq!(latest_consistent_iteration(&dir, 2).unwrap(), Some(2));
        // The grid state at the cut is loadable end to end.
        let (iter, states) = load_grid_states(&dir, &cfg).unwrap();
        assert_eq!(iter, 2);
        assert_eq!(states.len(), 2);
    }

    #[test]
    fn tmp_files_are_ignored_by_the_scan() {
        let cfg = TrainConfig::smoke(2);
        let dir = tmpdir("tmp_ignored");
        let mut s = captured(&cfg, 0, 0);
        s.iteration = 1;
        write_cell_state(&dir, &s).unwrap();
        // A torn write leaves a .tmp sibling; it must not count as a commit.
        fs::write(dir.join("cell_0001_iter_00000001.tmp"), b"torn").unwrap();
        assert_eq!(latest_consistent_iteration(&dir, 2).unwrap(), None);
    }

    /// A sink wedged on a lock the test holds: commits cannot proceed until
    /// the gate opens.
    struct GatedSink {
        gate: Arc<Mutex<()>>,
        committed: Arc<AtomicU64>,
    }

    impl CheckpointSink for GatedSink {
        fn commit(&mut self, _state: &CellState) -> Result<(), CheckpointError> {
            let _open = self.gate.lock();
            self.committed.fetch_add(1, Ordering::Release);
            Ok(())
        }
    }

    #[test]
    fn submit_never_blocks_on_a_wedged_disk() {
        // The acceptance assertion for the async writer: with the sink
        // stalled (disk wedged), submissions — the only thing on the
        // training thread's critical path — must return immediately.
        let gate = Arc::new(Mutex::new(()));
        let committed = Arc::new(AtomicU64::new(0));
        let writer = CheckpointWriter::with_sink(GatedSink {
            gate: Arc::clone(&gate),
            committed: Arc::clone(&committed),
        });

        let cfg = TrainConfig::smoke(2);
        let state = captured(&cfg, 0, 0);
        let stall = gate.lock(); // wedge the disk
        let start = Instant::now();
        for _ in 0..8 {
            writer.submit(state.clone());
        }
        let submit_time = start.elapsed();
        // Nothing committed, yet all submissions returned.
        assert_eq!(committed.load(Ordering::Acquire), 0, "sink ran while wedged");
        assert!(
            submit_time < Duration::from_millis(200),
            "submit blocked on the wedged sink: {submit_time:?}"
        );
        drop(stall); // un-wedge
        let total = writer.finish().unwrap();
        assert_eq!(total, 8);
        assert_eq!(committed.load(Ordering::Acquire), 8);
    }

    #[test]
    fn writer_commits_real_files_and_recycles_buffers() {
        let cfg = TrainConfig::smoke(2);
        let dir = tmpdir("writer");
        let writer = CheckpointWriter::to_dir(&dir, cfg.cells());
        let state = captured(&cfg, 2, 1);
        writer.submit(state.clone());
        // Drain the recycle lane (bounded, best-effort).
        let deadline = Instant::now() + Duration::from_secs(5);
        while writer.commits() == 0 {
            assert!(Instant::now() < deadline, "commit never landed");
            std::thread::sleep(Duration::from_millis(2));
        }
        let recycled = writer.recycled();
        assert!(recycled.is_some(), "committed state was not recycled");
        assert_eq!(writer.finish().unwrap(), 1);
        let back =
            read_cell_state(&dir.join(cell_file_name(2, state.iteration)), &cfg).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn finish_surfaces_sink_errors() {
        struct FailingSink;
        impl CheckpointSink for FailingSink {
            fn commit(&mut self, _: &CellState) -> Result<(), CheckpointError> {
                Err(CheckpointError::Inconsistent("disk on fire"))
            }
        }
        let writer = CheckpointWriter::with_sink(FailingSink);
        let cfg = TrainConfig::smoke(2);
        writer.submit(captured(&cfg, 0, 0));
        assert!(writer.finish().is_err());
    }
}
