//! Master/slave distributed runtime (§III of the paper).
//!
//! This crate is the paper's contribution proper: the distributed-memory
//! parallel implementation of cellular GAN training. It maps one grid cell
//! to one slave rank plus a master rank (Table II: an `m×m` grid uses
//! `m² + 1` cores), communicating over `lipiz-mpi`:
//!
//! * [`comm_manager::CommManager`] — the paper's new `comm-manager` class:
//!   wraps the three communicators (WORLD for control traffic, LOCAL for
//!   slave-only collectives, GLOBAL for final result gathering) behind an
//!   abstract API so the transport can be swapped;
//! * [`state::SlaveState`] — the Fig. 2 state machine
//!   (inactive → processing → finished);
//! * [`master`] — workload assignment, configuration distribution, the
//!   heartbeat monitor thread, final gather + reduction;
//! * [`slave`] — per-rank main/communication thread plus a training
//!   execution thread (the two-thread design of Fig. 3);
//! * [`protocol`] — the typed wire messages exchanged between ranks;
//! * [`driver::run_distributed`] — one-call entry point.
//!
//! Training results are bit-identical to `lipiz_core::sequential` given the
//! same config (the per-cell engines are deterministic and the allgather
//! reproduces the sequential snapshot semantics); the integration tests
//! assert this equivalence.
//!
//! # Example
//!
//! ```
//! use lipiz_core::TrainConfig;
//! use lipiz_runtime::driver::run_distributed_report;
//! use lipiz_tensor::Rng64;
//!
//! let cfg = TrainConfig::smoke(2); // 2×2 grid -> 4 slave ranks + 1 master
//! let report = run_distributed_report(&cfg, |_cell, cfg| {
//!     let mut rng = Rng64::seed_from(cfg.training.data_seed);
//!     rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
//! });
//! assert_eq!(report.driver, "distributed");
//! assert_eq!(report.cells.len(), 4);
//! ```

pub mod checkpoint;
pub mod comm_manager;
pub mod driver;
pub mod heartbeat;
pub mod master;
pub mod protocol;
pub mod slave;
pub mod state;

pub use comm_manager::CommManager;
pub use driver::{run_distributed, DistributedOptions};
pub use state::SlaveState;
