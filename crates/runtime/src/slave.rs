//! Slave process logic (Fig. 3, right side).
//!
//! Each slave runs two threads, exactly like the paper's design: the *main
//! thread* is the communication interface with the master (it answers
//! heartbeat status requests), while the *execution thread* performs the
//! training. The execution thread also performs the per-iteration LOCAL
//! allgather with the neighboring slaves — communication with peers
//! overlaps the master's monitoring traffic without interference because
//! they use different communicators.

use crate::comm_manager::CommManager;
use crate::protocol::{ProfileRowMsg, SlaveResult, StatusReport};
use crate::state::SlaveState;
use lipiz_core::{CellEngine, CellSnapshot, Grid, Profiler, TrainConfig};
use lipiz_tensor::Matrix;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How a slave builds its local dataset for an assigned cell ("download
/// data" in Fig. 3 — every rank synthesizes the same data deterministically
/// from the config's data seed).
pub type DataFactory<'a> = &'a (dyn Fn(usize, &TrainConfig) -> Matrix + Sync);

/// Run the complete slave lifecycle. Returns the final state (always
/// `Finished` on a healthy run).
pub fn run_slave(cm: &CommManager, make_data: DataFactory<'_>, node_name: &str) -> SlaveState {
    let mut state = SlaveState::Inactive;

    // Fig. 3: announce the node, then wait for the workload.
    cm.announce_node(node_name);
    let task = cm.recv_run_task();
    let cfg = task.config.into_config();
    let cell_index = task.cell_index;
    state = state.transition(SlaveState::Processing);

    // Shared status for the heartbeat answers.
    let state_atomic = AtomicU8::new(state.id());
    let iterations_done = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    // "Download data (optional)" + engine assembly happen on the execution
    // side of the fork below so the main thread can already answer
    // heartbeats while data synthesis runs.
    let mut result_slot: Option<SlaveResult> = None;

    std::thread::scope(|s| {
        // Execution thread: training loop with per-iteration allgather.
        let mut exec_cm = cm.clone();
        let exec_cfg = cfg.clone();
        let exec = s.spawn({
            let iterations_done = &iterations_done;
            let done = &done;
            let state_atomic = &state_atomic;
            move || {
                let start = Instant::now();
                let data = make_data(cell_index, &exec_cfg);
                let grid = Grid::from_config(&exec_cfg.grid);
                let mut engine = CellEngine::new(cell_index, &exec_cfg, data);
                let mut profiler = Profiler::new();
                for _ in 0..exec_cfg.coevolution.iterations {
                    // Gather: allgather my center, pick my neighbors.
                    let gather_start = Instant::now();
                    let snapshot = engine.snapshot();
                    let all = exec_cm.exchange_centers(&snapshot);
                    let neighbors: Vec<CellSnapshot> = grid
                        .neighbors(cell_index)
                        .into_iter()
                        .map(|n| all[n].clone())
                        .collect();
                    profiler.record(lipiz_core::Routine::Gather, gather_start.elapsed());
                    engine.run_iteration(&neighbors, &mut profiler);
                    iterations_done.fetch_add(1, Ordering::Release);
                }
                state_atomic.store(SlaveState::Finished.id(), Ordering::Release);
                done.store(true, Ordering::Release);
                let disc_pop = engine.disc_population();
                let disc_fitness = disc_pop.members()[disc_pop.best_index()].fitness;
                let ensemble = engine.ensemble();
                SlaveResult {
                    cell: cell_index,
                    gen_fitness: engine.best_gen_fitness(),
                    disc_fitness,
                    mixture: ensemble.weights.weights().to_vec(),
                    ensemble: ensemble.genomes,
                    profile: profiler
                        .report()
                        .rows
                        .into_iter()
                        .map(|r| ProfileRowMsg {
                            routine: r.routine,
                            seconds: r.seconds,
                            calls: r.calls,
                        })
                        .collect(),
                    wall_seconds: start.elapsed().as_secs_f64(),
                }
            }
        });

        // Main thread: answer the master's heartbeats until training ends.
        while !done.load(Ordering::Acquire) {
            if cm.poll_status_request(Duration::from_millis(10)) {
                cm.respond_status(&StatusReport {
                    state: state_atomic.load(Ordering::Acquire),
                    iterations_done: iterations_done.load(Ordering::Acquire),
                });
            }
        }
        // Drain any last status request so the master's final round is not
        // left hanging until its timeout.
        while cm.poll_status_request(Duration::from_millis(1)) {
            cm.respond_status(&StatusReport {
                state: state_atomic.load(Ordering::Acquire),
                iterations_done: iterations_done.load(Ordering::Acquire),
            });
        }
        result_slot = Some(exec.join().expect("execution thread panicked"));
    });

    state = state.transition(SlaveState::Finished);

    // Final gather: hand the result to the master on GLOBAL.
    let result = result_slot.expect("execution thread produced a result");
    cm.gather_results(Some(result));
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full slave flow is exercised end-to-end in driver.rs tests and the
    // workspace integration suite; here we pin unit-level properties.

    #[test]
    fn state_ids_used_by_slave_match_enum() {
        assert_eq!(
            SlaveState::from_id(SlaveState::Processing.id()),
            Some(SlaveState::Processing)
        );
        assert_eq!(SlaveState::from_id(SlaveState::Finished.id()), Some(SlaveState::Finished));
    }
}
