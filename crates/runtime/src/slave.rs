//! Slave process logic (Fig. 3, right side).
//!
//! Each slave runs two threads, exactly like the paper's design: the *main
//! thread* is the communication interface with the master (it answers
//! heartbeat status requests), while the *execution thread* performs the
//! training. The execution thread also performs the per-iteration LOCAL
//! allgather with the neighboring slaves — communication with peers
//! overlaps the master's monitoring traffic without interference because
//! they use different communicators.

use crate::checkpoint::{self, CheckpointWriter};
use crate::comm_manager::CommManager;
use crate::protocol::{
    ProfileRowMsg, SlaveResult, SnapshotMsg, StatusReport, TelemetrySummaryMsg,
};
use crate::state::SlaveState;
use lipiz_core::{CellEngine, CellSnapshot, Grid, Profiler, TrainConfig};
use lipiz_mpi::wire::Wire;
use lipiz_mpi::{process_faults_enabled, replacement_schedule, DegradedGather, FaultPlan};
use lipiz_telemetry::{EventKind, SpanKind, Telemetry};
use lipiz_tensor::{Matrix, Pool};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Enact a scripted kill: die as a real crash would — no unwinding, no
/// destructors, no result gather. SIGKILL leaves nothing to chance; the
/// abort is the fallback when no `kill` binary exists.
fn fault_self_kill() -> ! {
    let pid = std::process::id();
    let _ = std::process::Command::new("kill").arg("-9").arg(pid.to_string()).status();
    std::process::abort();
}

/// Submit an async checkpoint capture if the cadence commits after `iter`.
///
/// `frame_for_next` is the gathered frame the *next* iteration will
/// consume — `Some` only under `--exchange async`, where the cut must
/// carry it for the resumed run to stay bit-exact (the caller drains the
/// in-flight generation first so the frame is always available here).
fn maybe_commit_checkpoint(
    writer: &Option<CheckpointWriter>,
    cfg: &TrainConfig,
    engine: &mut CellEngine,
    iter: usize,
    profiler: &mut Profiler,
    frame_for_next: Option<&[CellSnapshot]>,
) {
    let Some(w) = writer else { return };
    if !cfg.checkpoint.commits_after(iter) {
        return;
    }
    let ckpt_start = Instant::now();
    let mut state = match w.recycled() {
        Some(mut recycled) => {
            engine.capture_state_into(&mut recycled);
            recycled
        }
        None => engine.capture_state(),
    };
    match frame_for_next {
        Some(frame) => {
            state.exchange_frame.resize_with(frame.len(), CellSnapshot::empty);
            for (dst, src) in state.exchange_frame.iter_mut().zip(frame) {
                dst.copy_from(src);
            }
        }
        None => state.exchange_frame.clear(),
    }
    w.submit(state);
    // Charged to "other": capture is the only checkpoint cost on the
    // training thread.
    profiler.record(lipiz_core::Routine::Other, ckpt_start.elapsed());
}

/// How a slave builds its local dataset for an assigned cell ("download
/// data" in Fig. 3 — every rank synthesizes the same data deterministically
/// from the config's data seed).
pub type DataFactory<'a> = &'a (dyn Fn(usize, &TrainConfig) -> Matrix + Sync);

/// Run the complete slave lifecycle. Returns the final state (always
/// `Finished` on a healthy run).
pub fn run_slave(cm: &CommManager, make_data: DataFactory<'_>, node_name: &str) -> SlaveState {
    let mut state = SlaveState::Inactive;

    // Fig. 3: announce the node, then wait for the workload.
    cm.announce_node(node_name);
    let task = cm.recv_run_task();
    let cfg = task.config.into_config();
    let cell_index = task.cell_index;
    let resume_from = task.resume_from;
    let rejoin_round = task.rejoin_round;
    state = state.transition(SlaveState::Processing);

    // Fault wiring. The plan rides in the config, so every rank arms the
    // same message-level enforcement and derives the same replacement
    // schedule without exchanging a byte.
    let fault_plan = cfg.fault.plan.as_deref().and_then(|s| FaultPlan::parse(s).ok());
    if let Some(plan) = fault_plan.clone() {
        cm.install_fault_plan(plan);
    }
    let sched = fault_plan.as_ref().and_then(|plan| {
        replacement_schedule(
            plan,
            cfg.fault.max_stale_iters,
            cfg.checkpoint.every,
            cfg.checkpoint.effective_iterations(cfg.coevolution.iterations),
            cfg.cells(),
        )
    });
    // A scripted kill of this rank is enacted only when each rank is a
    // real OS process (the CLI slave path arms this) and this process is
    // not itself the replacement re-running the victim's rank.
    let my_kill = if process_faults_enabled() && rejoin_round.is_none() {
        fault_plan.as_ref().and_then(|p| p.kill_iteration(cm.world_rank()))
    } else {
        None
    };
    // The fan-in root (cell 0) owns the degraded-gather controller whenever
    // graceful degradation is enabled; the *planned* absence window is
    // armed only when the kill will really happen (process faults on), so
    // threaded runs carrying a kill-bearing plan stay synchronous.
    let mut gather_ctl = (cm.world_rank() == 1 && cfg.fault.degradation_enabled())
        .then(|| DegradedGather::new(cfg.cells(), cfg.fault.max_stale_iters));
    if let (Some(ctl), Some(sched)) = (gather_ctl.as_mut(), sched) {
        if process_faults_enabled() {
            ctl.plan_absence(sched.cell, sched.kill_iter, sched.rejoin_round);
        }
    }
    let frame_handle = gather_ctl.as_ref().map(|c| c.frozen_frame());

    // Shared status for the heartbeat answers.
    let state_atomic = AtomicU8::new(state.id());
    let iterations_done = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    // "Download data (optional)" + engine assembly happen on the execution
    // side of the fork below so the main thread can already answer
    // heartbeats while data synthesis runs.
    let mut result_slot: Option<SlaveResult> = None;

    // Journal files are keyed by NODE NAME, not rank: a replacement process
    // re-running a victim's rank announces a different name, so the
    // victim's kill-flushed journal is never clobbered.
    let journal_file = format!("{node_name}.jsonl");

    std::thread::scope(|s| {
        // Execution thread: training loop with per-iteration allgather.
        let mut exec_cm = cm.clone();
        let exec_cfg = cfg.clone();
        let journal_file = journal_file.clone();
        let exec = s.spawn({
            let iterations_done = &iterations_done;
            let done = &done;
            let state_atomic = &state_atomic;
            move || {
                // The main thread spins on `done` while answering
                // heartbeats; if this thread unwinds (e.g. a collective
                // failed because a peer died), `done` must still be set or
                // the slave would wedge instead of exiting loudly.
                struct DoneGuard<'a>(&'a AtomicBool);
                impl Drop for DoneGuard<'_> {
                    fn drop(&mut self) {
                        self.0.store(true, Ordering::Release);
                    }
                }
                let _done_on_exit = DoneGuard(done);

                // Run telemetry: free when the config gate is off (no ring,
                // dead branches), observational-only when on — it never
                // touches RNG or training state, so the `.lpz` stays
                // byte-identical either way.
                let mut tel = Telemetry::from_gate(
                    exec_cfg.telemetry.enabled,
                    exec_cm.world_rank() as u32,
                    exec_cfg.telemetry.ring_capacity,
                );
                let cell_u32 = cell_index as u32;
                if exec_cfg.exchange.is_async() {
                    tel.metrics.staleness.set(1);
                }
                let flush_journal = |tel: &Telemetry| {
                    if let Some(dir) = exec_cfg.telemetry.dir.as_deref() {
                        let path = Path::new(dir).join(&journal_file);
                        if let Err(e) = tel.write_journal(&path) {
                            eprintln!(
                                "telemetry: journal write failed ({}): {e}",
                                path.display()
                            );
                        }
                    }
                };

                let start = Instant::now();
                let data = make_data(cell_index, &exec_cfg);
                let grid = Grid::from_config(&exec_cfg.grid);

                // Fresh engine, or restore this cell from the committed
                // checkpoint the master's resume marker names. Restore
                // failures are fatal and loud — a half-restored slave must
                // never train.
                let mut resume_frame: Vec<CellSnapshot> = Vec::new();
                let mut engine = match resume_from {
                    None => CellEngine::new(cell_index, &exec_cfg, data),
                    Some(iter) => {
                        let dir = exec_cfg
                            .checkpoint
                            .dir
                            .as_deref()
                            .expect("resume requires a checkpoint dir in the config");
                        let state = checkpoint::load_cell_state_at(
                            Path::new(dir),
                            &exec_cfg,
                            cell_index,
                            iter,
                        )
                        .unwrap_or_else(|e| {
                            panic!("cell {cell_index}: restore from iteration {iter}: {e}")
                        });
                        let pool = Pool::new(exec_cfg.training.workers_per_cell);
                        let engine = CellEngine::from_state(&exec_cfg, data, pool, &state);
                        // Async runs checkpoint the frame the next
                        // iteration consumes; carry it into the pipeline.
                        resume_frame = state.exchange_frame;
                        engine
                    }
                };
                iterations_done.store(engine.iterations_done() as u64, Ordering::Release);

                // Async checkpoint writer: capture on the training thread
                // (into a recycled buffer), serialize + commit on the
                // writer thread — training never blocks on disk.
                let mut writer = if exec_cfg.checkpoint.enabled() {
                    let dir = exec_cfg.checkpoint.dir.as_deref().expect("enabled has dir");
                    if resume_from.is_none() {
                        // Fresh start: drop any stale files for this cell
                        // left in the directory by a previous run (on a
                        // multi-machine run only the coordinator's own host
                        // gets cleaned) — a recovery scan must never adopt
                        // another run's cut.
                        checkpoint::clear_stale(Path::new(dir), Some(cell_index))
                            .unwrap_or_else(|e| {
                                panic!("cell {cell_index}: clearing stale checkpoints: {e}")
                            });
                    }
                    Some(CheckpointWriter::to_dir(Path::new(dir), exec_cfg.cells()))
                } else {
                    None
                };

                let mut profiler = Profiler::new();
                let target =
                    exec_cfg.checkpoint.effective_iterations(exec_cfg.coevolution.iterations);
                // Recycled per-iteration buffers: the outgoing center
                // snapshot and the neighbor fan-out (genome buffers are
                // reused; the allgather decode itself still owns its
                // payloads).
                let mut snapshot = CellSnapshot::empty();
                let mut neighbors: Vec<CellSnapshot> = Vec::new();
                let neighbor_ids = grid.neighbors(cell_index);

                let async_mode = exec_cfg.exchange.is_async();
                // The completed-but-unconsumed frame of the async pipeline:
                // the frame the next loop iteration trains against. `None`
                // means it is still in flight on the exchange thread (or,
                // at a fresh start, not begun yet).
                let mut ready: Option<Vec<CellSnapshot>> = None;

                // In-flight replacement catch-up: train solo against the
                // frozen death-frame neighborhood (streamed from the fan-in
                // root) until this engine's counter reaches the rejoin
                // round — no exchanges, so the survivors' cadence is never
                // perturbed, and the same frame for every solo iteration
                // keeps the replay a pure function of (seed, plan).
                if let Some(rejoin) = rejoin_round {
                    let frame = exec_cm
                        .fetch_frozen_frame(Duration::from_secs(60))
                        .unwrap_or_else(|| {
                            panic!("cell {cell_index}: no frozen death-frame to catch up from")
                        });
                    let frozen: Vec<CellSnapshot> = frame
                        .iter()
                        .map(|part| {
                            SnapshotMsg::from_bytes(part)
                                .expect("death-frame decode")
                                .into_snapshot()
                        })
                        .collect();
                    let frozen_neighbors: Vec<CellSnapshot> =
                        neighbor_ids.iter().map(|&n| frozen[n].clone()).collect();
                    while engine.iterations_done() < rejoin {
                        let iter = engine.iterations_done();
                        // Catch-up gathers run against the frozen frame.
                        tel.instant(
                            EventKind::Degraded,
                            cell_u32,
                            iter as u32,
                            cell_u32 as u64,
                        );
                        tel.metrics.degraded_iters.inc();
                        engine.run_iteration_with(&frozen_neighbors, &mut profiler, &mut tel);
                        iterations_done.fetch_add(1, Ordering::Release);
                        maybe_commit_checkpoint(
                            &writer,
                            &exec_cfg,
                            &mut engine,
                            iter,
                            &mut profiler,
                            async_mode.then_some(frozen.as_slice()),
                        );
                        if writer.is_some() && exec_cfg.checkpoint.commits_after(iter) {
                            tel.metrics.checkpoints.inc();
                            tel.instant(
                                EventKind::CheckpointCommit,
                                cell_u32,
                                iter as u32,
                                (iter + 1) as u64,
                            );
                        }
                    }
                    tel.metrics.rejoined.inc();
                    tel.instant(EventKind::Rejoin, cell_u32, rejoin as u32, 0);
                    // Under async the rejoiner never received generation
                    // `rejoin - 1`; the frozen death-frame stands in as the
                    // frame its first live iteration consumes — still a
                    // pure function of (seed, plan).
                    if async_mode {
                        ready = Some(frozen);
                    }
                } else if async_mode && !resume_frame.is_empty() {
                    ready = Some(resume_frame);
                } else if async_mode && resume_from.is_some() {
                    panic!(
                        "cell {cell_index}: async resume needs the checkpointed exchange frame"
                    );
                }

                // `--exchange async`: the blocking half of every allgather
                // runs on a background thread (which also owns the degraded
                // fan-in controller — the death-frame handle was cloned for
                // the main thread before this move).
                let mut exchanger =
                    async_mode.then(|| exec_cm.start_async_exchange(gather_ctl.take()));

                // Degraded-gather observability (sync fan-in root only: the
                // async controller lives on the exchange thread): previous
                // per-rank stale-run counts, so a round that substituted a
                // rank's contribution journals who was absent.
                let mut prev_stale: Vec<usize> = vec![0; exec_cfg.cells()];
                // Submit time of the in-flight async generation (staleness
                // is fixed at 1, so at most one is pending).
                let mut inflight_submit: Option<Instant> = None;

                while engine.iterations_done() < target {
                    let iter = engine.iterations_done();
                    exec_cm.tick_fault_clock(iter);
                    if my_kill == Some(iter) {
                        // Die exactly at the scripted boundary: the last
                        // exchanged round was `iter - 1`, exactly `iter`
                        // iterations are complete, and every committed
                        // cadence cut is durable first so the replacement
                        // can restore from it.
                        if let Some(w) = writer.take() {
                            w.finish().unwrap_or_else(|e| {
                                panic!("cell {cell_index}: checkpoint commit failed: {e}")
                            });
                        }
                        // Last words: journal the scripted death and flush —
                        // SIGKILL runs no destructors, so the file must be
                        // durable before the signal.
                        tel.instant(EventKind::Kill, cell_u32, iter as u32, 0);
                        flush_journal(&tel);
                        fault_self_kill();
                    }
                    // Gather: allgather my center, pick my neighbors. In
                    // async mode, begin generation `iter`'s gather and train
                    // against the completed generation `iter - 1` (gen 0
                    // bootstraps iteration 0 synchronously); only the
                    // exposed (non-overlapped) wait is paid here.
                    let gather_span = tel.begin(SpanKind::Gather, cell_u32, iter as u32);
                    engine.snapshot_into(&mut snapshot);
                    let all = match exchanger.as_mut() {
                        Some(ex) => {
                            let pending = exec_cm.begin_exchange(&snapshot);
                            ex.submit(pending, iter);
                            tel.instant(
                                EventKind::ExchangeBegin,
                                cell_u32,
                                iter as u32,
                                iter as u64,
                            );
                            let prev_submit = inflight_submit.replace(Instant::now());
                            let frame = match ready.take() {
                                Some(frame) => frame,
                                None => ex.retrieve(),
                            };
                            // Submit-to-consume wall of the generation just
                            // consumed (`iter - 1`; gen 0 bootstraps itself).
                            let consumed = iter.saturating_sub(1);
                            let since = prev_submit.unwrap_or_else(|| {
                                inflight_submit.expect("submit recorded above")
                            });
                            tel.metrics.exchange_wall_ns.add(since.elapsed().as_nanos() as u64);
                            tel.instant(
                                EventKind::ExchangeComplete,
                                cell_u32,
                                iter as u32,
                                consumed as u64,
                            );
                            frame
                        }
                        None => {
                            tel.instant(
                                EventKind::ExchangeBegin,
                                cell_u32,
                                iter as u32,
                                iter as u64,
                            );
                            let t0 = Instant::now();
                            let all = match gather_ctl.as_mut() {
                                Some(ctl) => {
                                    let all =
                                        exec_cm.exchange_centers_degraded(&snapshot, iter, ctl);
                                    // Journal which ranks this round had to
                                    // substitute with stale frames.
                                    let mut degraded = false;
                                    for (r, prev) in prev_stale.iter_mut().enumerate() {
                                        let run = ctl.stale_run(r);
                                        if run > *prev {
                                            tel.instant(
                                                EventKind::Degraded,
                                                cell_u32,
                                                iter as u32,
                                                r as u64,
                                            );
                                            degraded = true;
                                        }
                                        *prev = run;
                                    }
                                    if degraded {
                                        tel.metrics.degraded_iters.inc();
                                    }
                                    all
                                }
                                None => exec_cm.exchange_centers(&snapshot),
                            };
                            tel.metrics.exchange_wall_ns.add(t0.elapsed().as_nanos() as u64);
                            tel.instant(
                                EventKind::ExchangeComplete,
                                cell_u32,
                                iter as u32,
                                iter as u64,
                            );
                            all
                        }
                    };
                    neighbors.resize_with(neighbor_ids.len(), CellSnapshot::empty);
                    for (slot, &n) in neighbor_ids.iter().enumerate() {
                        neighbors[slot].copy_from(&all[n]);
                    }
                    profiler.record(
                        lipiz_core::Routine::Gather,
                        tel.end(SpanKind::Gather, cell_u32, iter as u32, gather_span),
                    );
                    engine.run_iteration_with(&neighbors, &mut profiler, &mut tel);
                    iterations_done.fetch_add(1, Ordering::Release);
                    if exchanger.is_some() && iter == 0 {
                        // The structural staleness starts here: generation 0
                        // also feeds iteration 1.
                        ready = Some(all);
                    }
                    if let Some(ex) = exchanger.as_mut() {
                        // A commit boundary drains the in-flight generation
                        // so the cut can carry the frame the next iteration
                        // consumes. The drain point is a pure function of
                        // the config, so uninterrupted and resumed runs
                        // stay byte-identical.
                        if writer.is_some()
                            && exec_cfg.checkpoint.commits_after(iter)
                            && ready.is_none()
                        {
                            ready = Some(ex.retrieve());
                        }
                    }
                    maybe_commit_checkpoint(
                        &writer,
                        &exec_cfg,
                        &mut engine,
                        iter,
                        &mut profiler,
                        if async_mode { ready.as_deref() } else { None },
                    );
                    if writer.is_some() && exec_cfg.checkpoint.commits_after(iter) {
                        tel.metrics.checkpoints.inc();
                        tel.instant(
                            EventKind::CheckpointCommit,
                            cell_u32,
                            iter as u32,
                            (iter + 1) as u64,
                        );
                        // Commit boundaries double as reporting boundaries:
                        // ship the running aggregate so the master's status
                        // line tracks the fleet live.
                        if tel.is_enabled() {
                            exec_cm.send_telemetry(&TelemetrySummaryMsg::from(
                                &tel.summary(cell_u32),
                            ));
                        }
                    }
                }
                if let Some(ex) = exchanger.take() {
                    // Finish the final generation collectively — every rank
                    // must complete it or its peers' exchange threads would
                    // wedge mid-broadcast.
                    ex.stop();
                }
                if let Some(w) = writer.take() {
                    // Drain the queue so every committed cut is durable
                    // before the result ships; a failed commit is fatal.
                    w.finish().unwrap_or_else(|e| {
                        panic!("cell {cell_index}: checkpoint commit failed: {e}")
                    });
                }
                state_atomic.store(SlaveState::Finished.id(), Ordering::Release);
                done.store(true, Ordering::Release);
                flush_journal(&tel);
                let telemetry =
                    tel.is_enabled().then(|| TelemetrySummaryMsg::from(&tel.summary(cell_u32)));
                let disc_pop = engine.disc_population();
                let disc_fitness = disc_pop.members()[disc_pop.best_index()].fitness;
                let ensemble = engine.ensemble();
                SlaveResult {
                    cell: cell_index,
                    gen_fitness: engine.best_gen_fitness(),
                    disc_fitness,
                    mixture: ensemble.weights.weights().to_vec(),
                    ensemble: ensemble.genomes,
                    profile: profiler
                        .report()
                        .rows
                        .into_iter()
                        .map(|r| ProfileRowMsg {
                            routine: r.routine,
                            seconds: r.seconds,
                            calls: r.calls,
                        })
                        .collect(),
                    wall_seconds: start.elapsed().as_secs_f64(),
                    telemetry,
                }
            }
        });

        // Main thread: answer the master's heartbeats until training ends.
        // The fan-in root also serves the frozen death-frame to a
        // catching-up replacement here — the execution thread may be
        // mid-collective, which is exactly why the frame sits behind a
        // shared handle.
        while !done.load(Ordering::Acquire) {
            if let Some(h) = &frame_handle {
                while cm.serve_frozen_frame(h) {}
            }
            if cm.poll_status_request(Duration::from_millis(10)) {
                cm.respond_status(&StatusReport {
                    state: state_atomic.load(Ordering::Acquire),
                    iterations_done: iterations_done.load(Ordering::Acquire),
                });
            }
        }
        // Drain any last status request so the master's final round is not
        // left hanging until its timeout.
        while cm.poll_status_request(Duration::from_millis(1)) {
            cm.respond_status(&StatusReport {
                state: state_atomic.load(Ordering::Acquire),
                iterations_done: iterations_done.load(Ordering::Acquire),
            });
        }
        result_slot = Some(exec.join().expect("execution thread panicked"));
    });

    state = state.transition(SlaveState::Finished);

    // Final gather: hand the result to the master on GLOBAL.
    let result = result_slot.expect("execution thread produced a result");
    cm.gather_results(Some(result));
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full slave flow is exercised end-to-end in driver.rs tests and the
    // workspace integration suite; here we pin unit-level properties.

    #[test]
    fn state_ids_used_by_slave_match_enum() {
        assert_eq!(
            SlaveState::from_id(SlaveState::Processing.id()),
            Some(SlaveState::Processing)
        );
        assert_eq!(SlaveState::from_id(SlaveState::Finished.id()), Some(SlaveState::Finished));
    }
}
