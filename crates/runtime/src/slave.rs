//! Slave process logic (Fig. 3, right side).
//!
//! Each slave runs two threads, exactly like the paper's design: the *main
//! thread* is the communication interface with the master (it answers
//! heartbeat status requests), while the *execution thread* performs the
//! training. The execution thread also performs the per-iteration LOCAL
//! allgather with the neighboring slaves — communication with peers
//! overlaps the master's monitoring traffic without interference because
//! they use different communicators.

use crate::checkpoint::{self, CheckpointWriter};
use crate::comm_manager::CommManager;
use crate::protocol::{ProfileRowMsg, SlaveResult, StatusReport};
use crate::state::SlaveState;
use lipiz_core::{CellEngine, CellSnapshot, Grid, Profiler, TrainConfig};
use lipiz_tensor::{Matrix, Pool};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How a slave builds its local dataset for an assigned cell ("download
/// data" in Fig. 3 — every rank synthesizes the same data deterministically
/// from the config's data seed).
pub type DataFactory<'a> = &'a (dyn Fn(usize, &TrainConfig) -> Matrix + Sync);

/// Run the complete slave lifecycle. Returns the final state (always
/// `Finished` on a healthy run).
pub fn run_slave(cm: &CommManager, make_data: DataFactory<'_>, node_name: &str) -> SlaveState {
    let mut state = SlaveState::Inactive;

    // Fig. 3: announce the node, then wait for the workload.
    cm.announce_node(node_name);
    let task = cm.recv_run_task();
    let cfg = task.config.into_config();
    let cell_index = task.cell_index;
    let resume_from = task.resume_from;
    state = state.transition(SlaveState::Processing);

    // Shared status for the heartbeat answers.
    let state_atomic = AtomicU8::new(state.id());
    let iterations_done = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    // "Download data (optional)" + engine assembly happen on the execution
    // side of the fork below so the main thread can already answer
    // heartbeats while data synthesis runs.
    let mut result_slot: Option<SlaveResult> = None;

    std::thread::scope(|s| {
        // Execution thread: training loop with per-iteration allgather.
        let mut exec_cm = cm.clone();
        let exec_cfg = cfg.clone();
        let exec = s.spawn({
            let iterations_done = &iterations_done;
            let done = &done;
            let state_atomic = &state_atomic;
            move || {
                // The main thread spins on `done` while answering
                // heartbeats; if this thread unwinds (e.g. a collective
                // failed because a peer died), `done` must still be set or
                // the slave would wedge instead of exiting loudly.
                struct DoneGuard<'a>(&'a AtomicBool);
                impl Drop for DoneGuard<'_> {
                    fn drop(&mut self) {
                        self.0.store(true, Ordering::Release);
                    }
                }
                let _done_on_exit = DoneGuard(done);

                let start = Instant::now();
                let data = make_data(cell_index, &exec_cfg);
                let grid = Grid::from_config(&exec_cfg.grid);

                // Fresh engine, or restore this cell from the committed
                // checkpoint the master's resume marker names. Restore
                // failures are fatal and loud — a half-restored slave must
                // never train.
                let mut engine = match resume_from {
                    None => CellEngine::new(cell_index, &exec_cfg, data),
                    Some(iter) => {
                        let dir = exec_cfg
                            .checkpoint
                            .dir
                            .as_deref()
                            .expect("resume requires a checkpoint dir in the config");
                        let state = checkpoint::load_cell_state_at(
                            Path::new(dir),
                            &exec_cfg,
                            cell_index,
                            iter,
                        )
                        .unwrap_or_else(|e| {
                            panic!("cell {cell_index}: restore from iteration {iter}: {e}")
                        });
                        let pool = Pool::new(exec_cfg.training.workers_per_cell);
                        CellEngine::from_state(&exec_cfg, data, pool, &state)
                    }
                };
                iterations_done.store(engine.iterations_done() as u64, Ordering::Release);

                // Async checkpoint writer: capture on the training thread
                // (into a recycled buffer), serialize + commit on the
                // writer thread — training never blocks on disk.
                let mut writer = if exec_cfg.checkpoint.enabled() {
                    let dir = exec_cfg.checkpoint.dir.as_deref().expect("enabled has dir");
                    if resume_from.is_none() {
                        // Fresh start: drop any stale files for this cell
                        // left in the directory by a previous run (on a
                        // multi-machine run only the coordinator's own host
                        // gets cleaned) — a recovery scan must never adopt
                        // another run's cut.
                        checkpoint::clear_stale(Path::new(dir), Some(cell_index))
                            .unwrap_or_else(|e| {
                                panic!("cell {cell_index}: clearing stale checkpoints: {e}")
                            });
                    }
                    Some(CheckpointWriter::to_dir(Path::new(dir), exec_cfg.cells()))
                } else {
                    None
                };

                let mut profiler = Profiler::new();
                let target =
                    exec_cfg.checkpoint.effective_iterations(exec_cfg.coevolution.iterations);
                // Recycled per-iteration buffers: the outgoing center
                // snapshot and the neighbor fan-out (genome buffers are
                // reused; the allgather decode itself still owns its
                // payloads).
                let mut snapshot = CellSnapshot::empty();
                let mut neighbors: Vec<CellSnapshot> = Vec::new();
                let neighbor_ids = grid.neighbors(cell_index);
                while engine.iterations_done() < target {
                    // Gather: allgather my center, pick my neighbors.
                    let gather_start = Instant::now();
                    engine.snapshot_into(&mut snapshot);
                    let all = exec_cm.exchange_centers(&snapshot);
                    neighbors.resize_with(neighbor_ids.len(), CellSnapshot::empty);
                    for (slot, &n) in neighbor_ids.iter().enumerate() {
                        neighbors[slot].copy_from(&all[n]);
                    }
                    profiler.record(lipiz_core::Routine::Gather, gather_start.elapsed());
                    let iter = engine.iterations_done();
                    engine.run_iteration(&neighbors, &mut profiler);
                    iterations_done.fetch_add(1, Ordering::Release);
                    if let Some(w) = &writer {
                        if exec_cfg.checkpoint.commits_after(iter) {
                            let ckpt_start = Instant::now();
                            let state = match w.recycled() {
                                Some(mut recycled) => {
                                    engine.capture_state_into(&mut recycled);
                                    recycled
                                }
                                None => engine.capture_state(),
                            };
                            w.submit(state);
                            // Charged to "other": capture is the only
                            // checkpoint cost on the training thread.
                            profiler.record(lipiz_core::Routine::Other, ckpt_start.elapsed());
                        }
                    }
                }
                if let Some(w) = writer.take() {
                    // Drain the queue so every committed cut is durable
                    // before the result ships; a failed commit is fatal.
                    w.finish().unwrap_or_else(|e| {
                        panic!("cell {cell_index}: checkpoint commit failed: {e}")
                    });
                }
                state_atomic.store(SlaveState::Finished.id(), Ordering::Release);
                done.store(true, Ordering::Release);
                let disc_pop = engine.disc_population();
                let disc_fitness = disc_pop.members()[disc_pop.best_index()].fitness;
                let ensemble = engine.ensemble();
                SlaveResult {
                    cell: cell_index,
                    gen_fitness: engine.best_gen_fitness(),
                    disc_fitness,
                    mixture: ensemble.weights.weights().to_vec(),
                    ensemble: ensemble.genomes,
                    profile: profiler
                        .report()
                        .rows
                        .into_iter()
                        .map(|r| ProfileRowMsg {
                            routine: r.routine,
                            seconds: r.seconds,
                            calls: r.calls,
                        })
                        .collect(),
                    wall_seconds: start.elapsed().as_secs_f64(),
                }
            }
        });

        // Main thread: answer the master's heartbeats until training ends.
        while !done.load(Ordering::Acquire) {
            if cm.poll_status_request(Duration::from_millis(10)) {
                cm.respond_status(&StatusReport {
                    state: state_atomic.load(Ordering::Acquire),
                    iterations_done: iterations_done.load(Ordering::Acquire),
                });
            }
        }
        // Drain any last status request so the master's final round is not
        // left hanging until its timeout.
        while cm.poll_status_request(Duration::from_millis(1)) {
            cm.respond_status(&StatusReport {
                state: state_atomic.load(Ordering::Acquire),
                iterations_done: iterations_done.load(Ordering::Acquire),
            });
        }
        result_slot = Some(exec.join().expect("execution thread panicked"));
    });

    state = state.transition(SlaveState::Finished);

    // Final gather: hand the result to the master on GLOBAL.
    let result = result_slot.expect("execution thread produced a result");
    cm.gather_results(Some(result));
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full slave flow is exercised end-to-end in driver.rs tests and the
    // workspace integration suite; here we pin unit-level properties.

    #[test]
    fn state_ids_used_by_slave_match_enum() {
        assert_eq!(
            SlaveState::from_id(SlaveState::Processing.id()),
            Some(SlaveState::Processing)
        );
        assert_eq!(SlaveState::from_id(SlaveState::Finished.id()), Some(SlaveState::Finished));
    }
}
