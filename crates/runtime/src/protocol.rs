//! Typed wire messages exchanged between master and slaves.
//!
//! The orphan rule keeps `Wire` impls out of `lipiz-core`, so this module
//! defines mirror structs for everything that crosses a rank boundary and
//! converts to/from the core types at the edges.

use lipiz_core::config::{NetworkSettings, WireGanLoss};
use lipiz_core::profiling::ProfileRow;
use lipiz_core::{
    AdversaryStrategy, CellSnapshot, CheckpointConfig, CoevolutionConfig, ExchangeMode,
    FaultConfig, GridConfig, LossMode, MutationConfig, NeighborhoodPattern, ProfileReport,
    TelemetryConfig, TrainConfig, TrainingConfig,
};
#[allow(unused_imports)]
use lipiz_mpi::wire::Wire;
use lipiz_mpi::wire::WireError;
use lipiz_mpi::wire_struct;
use lipiz_nn::GanLoss;

/// User-tag allocations on the WORLD communicator.
pub mod tags {
    /// Slave → master: node name announcement (Fig. 3 "send node name").
    pub const NODE_NAME: u32 = 10;
    /// Master → slave: run-task message (config + cell assignment).
    pub const RUN_TASK: u32 = 11;
    /// Master → slave: heartbeat status request.
    pub const STATUS_REQ: u32 = 12;
    /// Slave → master: heartbeat status response.
    pub const STATUS_RESP: u32 = 13;
    /// Replacement slave → fan-in root: request for the frozen death-frame
    /// snapshot cache (the rejoin bootstrap when no checkpoint exists).
    pub const CACHE_REQ: u32 = 14;
    /// Fan-in root → replacement slave: frozen death-frame response.
    pub const CACHE_RESP: u32 = 15;
    /// Slave → master: telemetry summary (commit boundaries + final).
    pub const TELEMETRY: u32 = 16;
}

/// Fig. 3 "send node name to master".
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnnouncement {
    /// WORLD rank of the slave.
    pub rank: usize,
    /// Host the slave runs on (synthetic hostname in-process).
    pub node_name: String,
}
wire_struct!(NodeAnnouncement { rank, node_name });

/// Master → slave workload assignment: the full configuration plus which
/// grid cell this slave owns.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTask {
    /// Serialized training configuration.
    pub config: ConfigMsg,
    /// Flat grid index assigned to this slave.
    pub cell_index: usize,
    /// Resume marker: `Some(k)` tells the slave to restore its cell from
    /// the committed checkpoint at iteration `k` (found under the config's
    /// checkpoint directory) instead of initializing fresh — the elastic
    /// recovery and `lipizzaner resume` path.
    pub resume_from: Option<usize>,
    /// In-flight replacement marker: `Some(r)` tells the slave it replaces
    /// a dead rank mid-run — it must catch up solo (training against the
    /// frozen death-frame neighborhood) until its iteration counter reaches
    /// `r`, then join the live exchange at round `r`. `None` for every
    /// ordinary start or full-fleet resume.
    pub rejoin_round: Option<usize>,
}
wire_struct!(RunTask { config, cell_index, resume_from, rejoin_round });

/// Fan-in root → replacement: the frozen death-frame, one encoded
/// [`SnapshotMsg`] per LOCAL group rank (= cell index). `None` while the
/// root has not frozen a frame yet — the requester polls.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheResponse {
    /// Encoded per-cell snapshots, or `None` when nothing is frozen.
    pub frame: Option<Vec<Vec<u8>>>,
}
wire_struct!(CacheResponse { frame });

/// Heartbeat status response.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Current state id ([`crate::state::SlaveState`]).
    pub state: u8,
    /// Iterations completed so far.
    pub iterations_done: u64,
}
wire_struct!(StatusReport { state, iterations_done });

/// Wire mirror of [`CellSnapshot`] (the LOCAL allgather payload).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMsg {
    /// Originating cell.
    pub cell: usize,
    /// Generator genome.
    pub gen_genome: Vec<f32>,
    /// Generator learning rate.
    pub gen_lr: f32,
    /// Generator loss id.
    pub gen_loss: u8,
    /// Generator fitness.
    pub gen_fitness: f64,
    /// Discriminator genome.
    pub disc_genome: Vec<f32>,
    /// Discriminator learning rate.
    pub disc_lr: f32,
    /// Discriminator fitness.
    pub disc_fitness: f64,
}
wire_struct!(SnapshotMsg {
    cell,
    gen_genome,
    gen_lr,
    gen_loss,
    gen_fitness,
    disc_genome,
    disc_lr,
    disc_fitness,
});

impl From<&CellSnapshot> for SnapshotMsg {
    fn from(s: &CellSnapshot) -> Self {
        Self {
            cell: s.cell,
            gen_genome: s.gen_genome.clone(),
            gen_lr: s.gen_lr,
            gen_loss: s.gen_loss.id(),
            gen_fitness: s.gen_fitness,
            disc_genome: s.disc_genome.clone(),
            disc_lr: s.disc_lr,
            disc_fitness: s.disc_fitness,
        }
    }
}

impl SnapshotMsg {
    /// Encode a [`CellSnapshot`] directly into `buf` in `SnapshotMsg` wire
    /// order, without materializing the message struct — the per-iteration
    /// allgather used to clone both genomes into a `SnapshotMsg` and then
    /// serialize that copy; this writes the one wire buffer straight from
    /// the snapshot. Byte-identical to `SnapshotMsg::from(s).to_bytes()`
    /// appended to `buf`.
    pub fn encode_snapshot(s: &CellSnapshot, buf: &mut Vec<u8>) {
        s.cell.encode(buf);
        s.gen_genome.encode(buf);
        s.gen_lr.encode(buf);
        s.gen_loss.id().encode(buf);
        s.gen_fitness.encode(buf);
        s.disc_genome.encode(buf);
        s.disc_lr.encode(buf);
        s.disc_fitness.encode(buf);
    }

    /// Convert back into the core type.
    ///
    /// # Panics
    /// Panics on an invalid loss id (protocol bug).
    pub fn into_snapshot(self) -> CellSnapshot {
        CellSnapshot {
            cell: self.cell,
            gen_genome: self.gen_genome,
            gen_lr: self.gen_lr,
            gen_loss: GanLoss::from_id(self.gen_loss).expect("valid loss id"),
            gen_fitness: self.gen_fitness,
            disc_genome: self.disc_genome,
            disc_lr: self.disc_lr,
            disc_fitness: self.disc_fitness,
        }
    }
}

/// One profile row on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRowMsg {
    /// Routine label.
    pub routine: String,
    /// Accumulated seconds.
    pub seconds: f64,
    /// Call count.
    pub calls: u64,
}
wire_struct!(ProfileRowMsg { routine, seconds, calls });

/// Slave → master final result (gathered on the GLOBAL communicator).
#[derive(Debug, Clone, PartialEq)]
pub struct SlaveResult {
    /// Grid cell this slave trained.
    pub cell: usize,
    /// Best generator fitness in the final sub-population.
    pub gen_fitness: f64,
    /// Best discriminator fitness.
    pub disc_fitness: f64,
    /// Final mixture weights.
    pub mixture: Vec<f32>,
    /// Final ensemble generator genomes, aligned with `mixture` — the
    /// trained model itself, so the master can persist the winning
    /// ensemble without re-deriving it locally (on a real multi-machine
    /// run the master has nothing else to derive it from).
    pub ensemble: Vec<Vec<f32>>,
    /// Per-routine profile rows.
    pub profile: Vec<ProfileRowMsg>,
    /// Wall seconds this slave spent in the training loop.
    pub wall_seconds: f64,
    /// Final telemetry summary (`None` when telemetry is off).
    pub telemetry: Option<TelemetrySummaryMsg>,
}
wire_struct!(SlaveResult {
    cell,
    gen_fitness,
    disc_fitness,
    mixture,
    ensemble,
    profile,
    wall_seconds,
    telemetry,
});

/// Wire mirror of [`lipiz_telemetry::TelemetrySummary`] — the compact
/// per-rank aggregate shipped on [`tags::TELEMETRY`] at checkpoint commit
/// boundaries and inside the final [`SlaveResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummaryMsg {
    /// Reporting world rank.
    pub rank: u32,
    /// Grid cell the rank trains.
    pub cell: u32,
    /// Iterations completed.
    pub iterations: u64,
    /// Gather-latency histogram: 64 log2 buckets, then count, then sum.
    pub gather_buckets: Vec<u64>,
    /// Gather observation count.
    pub gather_count: u64,
    /// Gather total nanoseconds.
    pub gather_sum: u64,
    /// Train-latency histogram buckets.
    pub train_buckets: Vec<u64>,
    /// Train observation count.
    pub train_count: u64,
    /// Train total nanoseconds.
    pub train_sum: u64,
    /// Exchange submit-to-consume wall nanoseconds.
    pub exchange_wall_ns: u64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Iterations gathered against a frozen death-frame.
    pub degraded_iters: u64,
    /// Snapshot staleness bound in effect.
    pub staleness: u64,
    /// In-flight rejoins performed.
    pub rejoined: u64,
    /// Ranks replaced in-flight (master-side).
    pub replaced_ranks: u64,
    /// Journal records lost to ring overwrites.
    pub dropped_events: u64,
}
wire_struct!(TelemetrySummaryMsg {
    rank,
    cell,
    iterations,
    gather_buckets,
    gather_count,
    gather_sum,
    train_buckets,
    train_count,
    train_sum,
    exchange_wall_ns,
    checkpoints,
    degraded_iters,
    staleness,
    rejoined,
    replaced_ranks,
    dropped_events,
});

impl From<&lipiz_telemetry::TelemetrySummary> for TelemetrySummaryMsg {
    fn from(s: &lipiz_telemetry::TelemetrySummary) -> Self {
        Self {
            rank: s.rank,
            cell: s.cell,
            iterations: s.iterations,
            gather_buckets: s.gather_ns.buckets.to_vec(),
            gather_count: s.gather_ns.count,
            gather_sum: s.gather_ns.sum,
            train_buckets: s.train_ns.buckets.to_vec(),
            train_count: s.train_ns.count,
            train_sum: s.train_ns.sum,
            exchange_wall_ns: s.exchange_wall_ns,
            checkpoints: s.checkpoints,
            degraded_iters: s.degraded_iters,
            staleness: s.staleness,
            rejoined: s.rejoined,
            replaced_ranks: s.replaced_ranks,
            dropped_events: s.dropped_events,
        }
    }
}

impl TelemetrySummaryMsg {
    /// Rebuild the telemetry-crate summary. Bucket vectors of the wrong
    /// length are truncated/zero-padded to the fixed 64 — a decoding
    /// summary must never panic the master over a malformed report.
    pub fn into_summary(self) -> lipiz_telemetry::TelemetrySummary {
        let mut s = lipiz_telemetry::TelemetrySummary::empty();
        s.rank = self.rank;
        s.cell = self.cell;
        s.iterations = self.iterations;
        for (dst, src) in s.gather_ns.buckets.iter_mut().zip(&self.gather_buckets) {
            *dst = *src;
        }
        s.gather_ns.count = self.gather_count;
        s.gather_ns.sum = self.gather_sum;
        for (dst, src) in s.train_ns.buckets.iter_mut().zip(&self.train_buckets) {
            *dst = *src;
        }
        s.train_ns.count = self.train_count;
        s.train_ns.sum = self.train_sum;
        s.exchange_wall_ns = self.exchange_wall_ns;
        s.checkpoints = self.checkpoints;
        s.degraded_iters = self.degraded_iters;
        s.staleness = self.staleness;
        s.rejoined = self.rejoined;
        s.replaced_ranks = self.replaced_ranks;
        s.dropped_events = self.dropped_events;
        s
    }
}

impl SlaveResult {
    /// Convert the profile rows into a core [`ProfileReport`].
    pub fn profile_report(&self) -> ProfileReport {
        ProfileReport {
            rows: self
                .profile
                .iter()
                .map(|r| ProfileRow {
                    routine: r.routine.clone(),
                    seconds: r.seconds,
                    calls: r.calls,
                })
                .collect(),
        }
    }
}

/// Wire mirror of [`TrainConfig`] — flattened scalars only.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMsg {
    grid_rows: usize,
    grid_cols: usize,
    pattern: u8,
    latent_dim: usize,
    hidden_layers: usize,
    hidden_units: usize,
    data_dim: usize,
    iterations: usize,
    population_per_cell: usize,
    tournament_size: usize,
    mixture_sigma: f32,
    mixture_every: usize,
    adversary_kind: u8,
    adversary_k: usize,
    initial_lr: f32,
    mutation_rate: f32,
    mutation_probability: f64,
    loss_mode: u8,
    fixed_loss: u8,
    batch_size: usize,
    batches_per_iteration: usize,
    skip_disc_steps: usize,
    dataset_size: usize,
    data_seed: u64,
    eval_batch: usize,
    workers_per_cell: usize,
    shard_data: bool,
    checkpoint_every: usize,
    checkpoint_dir: Option<String>,
    checkpoint_pause_after: Option<usize>,
    fault_heartbeat_interval_ms: u64,
    fault_heartbeat_misses: usize,
    fault_max_stale_iters: usize,
    fault_plan: Option<String>,
    exchange_mode: u8,
    telemetry_enabled: bool,
    telemetry_dir: Option<String>,
    telemetry_ring: usize,
    seed: u64,
}
wire_struct!(ConfigMsg {
    grid_rows,
    grid_cols,
    pattern,
    latent_dim,
    hidden_layers,
    hidden_units,
    data_dim,
    iterations,
    population_per_cell,
    tournament_size,
    mixture_sigma,
    mixture_every,
    adversary_kind,
    adversary_k,
    initial_lr,
    mutation_rate,
    mutation_probability,
    loss_mode,
    fixed_loss,
    batch_size,
    batches_per_iteration,
    skip_disc_steps,
    dataset_size,
    data_seed,
    eval_batch,
    workers_per_cell,
    shard_data,
    checkpoint_every,
    checkpoint_dir,
    checkpoint_pause_after,
    fault_heartbeat_interval_ms,
    fault_heartbeat_misses,
    fault_max_stale_iters,
    fault_plan,
    exchange_mode,
    telemetry_enabled,
    telemetry_dir,
    telemetry_ring,
    seed,
});

fn exchange_id(m: ExchangeMode) -> u8 {
    match m {
        ExchangeMode::Sync => 0,
        ExchangeMode::Async => 1,
    }
}

fn exchange_from_id(id: u8) -> Result<ExchangeMode, WireError> {
    match id {
        0 => Ok(ExchangeMode::Sync),
        1 => Ok(ExchangeMode::Async),
        _ => Err(WireError::new("exchange mode id")),
    }
}

fn pattern_id(p: NeighborhoodPattern) -> u8 {
    match p {
        NeighborhoodPattern::Cross5 => 0,
        NeighborhoodPattern::Moore9 => 1,
        NeighborhoodPattern::Isolated => 2,
    }
}

fn pattern_from_id(id: u8) -> Result<NeighborhoodPattern, WireError> {
    match id {
        0 => Ok(NeighborhoodPattern::Cross5),
        1 => Ok(NeighborhoodPattern::Moore9),
        2 => Ok(NeighborhoodPattern::Isolated),
        _ => Err(WireError::new("neighborhood pattern id")),
    }
}

fn wire_loss_id(l: WireGanLoss) -> u8 {
    let g: GanLoss = l.into();
    g.id()
}

impl From<&TrainConfig> for ConfigMsg {
    fn from(c: &TrainConfig) -> Self {
        let (adversary_kind, adversary_k) = match c.coevolution.adversary {
            AdversaryStrategy::Tournament(k) => (0u8, k),
            AdversaryStrategy::All => (1u8, 0),
        };
        let (loss_mode, fixed_loss) = match c.mutation.loss_mode {
            LossMode::Fixed(l) => (0u8, wire_loss_id(l)),
            LossMode::Mutate => (1u8, 0),
        };
        Self {
            grid_rows: c.grid.rows,
            grid_cols: c.grid.cols,
            pattern: pattern_id(c.grid.pattern),
            latent_dim: c.network.latent_dim,
            hidden_layers: c.network.hidden_layers,
            hidden_units: c.network.hidden_units,
            data_dim: c.network.data_dim,
            iterations: c.coevolution.iterations,
            population_per_cell: c.coevolution.population_per_cell,
            tournament_size: c.coevolution.tournament_size,
            mixture_sigma: c.coevolution.mixture_sigma,
            mixture_every: c.coevolution.mixture_every,
            adversary_kind,
            adversary_k,
            initial_lr: c.mutation.initial_lr,
            mutation_rate: c.mutation.rate,
            mutation_probability: c.mutation.probability,
            loss_mode,
            fixed_loss,
            batch_size: c.training.batch_size,
            batches_per_iteration: c.training.batches_per_iteration,
            skip_disc_steps: c.training.skip_disc_steps,
            dataset_size: c.training.dataset_size,
            data_seed: c.training.data_seed,
            eval_batch: c.training.eval_batch,
            workers_per_cell: c.training.workers_per_cell,
            shard_data: c.training.shard_data,
            checkpoint_every: c.checkpoint.every,
            checkpoint_dir: c.checkpoint.dir.clone(),
            checkpoint_pause_after: c.checkpoint.pause_after,
            fault_heartbeat_interval_ms: c.fault.heartbeat_interval_ms,
            fault_heartbeat_misses: c.fault.heartbeat_misses,
            fault_max_stale_iters: c.fault.max_stale_iters,
            fault_plan: c.fault.plan.clone(),
            exchange_mode: exchange_id(c.exchange),
            telemetry_enabled: c.telemetry.enabled,
            telemetry_dir: c.telemetry.dir.clone(),
            telemetry_ring: c.telemetry.ring_capacity,
            seed: c.seed,
        }
    }
}

impl ConfigMsg {
    /// Rebuild the core config.
    ///
    /// # Panics
    /// Panics on invalid enum ids (protocol bug).
    pub fn into_config(self) -> TrainConfig {
        let adversary = match self.adversary_kind {
            0 => AdversaryStrategy::Tournament(self.adversary_k),
            1 => AdversaryStrategy::All,
            other => panic!("bad adversary kind {other}"),
        };
        let loss_mode = match self.loss_mode {
            0 => {
                let g = GanLoss::from_id(self.fixed_loss).expect("valid fixed loss id");
                LossMode::Fixed(g.into())
            }
            1 => LossMode::Mutate,
            other => panic!("bad loss mode {other}"),
        };
        TrainConfig {
            grid: GridConfig {
                rows: self.grid_rows,
                cols: self.grid_cols,
                pattern: pattern_from_id(self.pattern).expect("valid pattern id"),
            },
            network: NetworkSettings {
                latent_dim: self.latent_dim,
                hidden_layers: self.hidden_layers,
                hidden_units: self.hidden_units,
                data_dim: self.data_dim,
            },
            coevolution: CoevolutionConfig {
                iterations: self.iterations,
                population_per_cell: self.population_per_cell,
                tournament_size: self.tournament_size,
                mixture_sigma: self.mixture_sigma,
                mixture_every: self.mixture_every,
                adversary,
            },
            mutation: MutationConfig {
                initial_lr: self.initial_lr,
                rate: self.mutation_rate,
                probability: self.mutation_probability,
                loss_mode,
            },
            training: TrainingConfig {
                batch_size: self.batch_size,
                batches_per_iteration: self.batches_per_iteration,
                skip_disc_steps: self.skip_disc_steps,
                dataset_size: self.dataset_size,
                data_seed: self.data_seed,
                eval_batch: self.eval_batch,
                workers_per_cell: self.workers_per_cell,
                shard_data: self.shard_data,
            },
            checkpoint: CheckpointConfig {
                every: self.checkpoint_every,
                dir: self.checkpoint_dir,
                pause_after: self.checkpoint_pause_after,
            },
            fault: FaultConfig {
                heartbeat_interval_ms: self.fault_heartbeat_interval_ms,
                heartbeat_misses: self.fault_heartbeat_misses,
                max_stale_iters: self.fault_max_stale_iters,
                plan: self.fault_plan,
            },
            exchange: exchange_from_id(self.exchange_mode).expect("valid exchange mode id"),
            telemetry: TelemetryConfig {
                enabled: self.telemetry_enabled,
                dir: self.telemetry_dir,
                ring_capacity: self.telemetry_ring,
            },
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_exactly() {
        for cfg in [
            TrainConfig::paper_table1(),
            TrainConfig::smoke(2),
            TrainConfig::smoke(3).with_mustangs(),
            TrainConfig::smoke(2).with_workers(4),
            TrainConfig::smoke(2).with_shards(true),
            TrainConfig::smoke(2).with_checkpoints("/tmp/ckpt", 3).with_pause_after(1),
            TrainConfig::smoke(2).with_fault_plan("kill:3@2;delay:1>2:*@4:50", 2),
            TrainConfig::smoke(2).with_heartbeat(25, 4),
            TrainConfig::smoke(2).with_exchange(ExchangeMode::Async),
            TrainConfig::smoke(2).with_telemetry("tel/run1", 4096),
        ] {
            let msg = ConfigMsg::from(&cfg);
            let bytes = msg.to_bytes();
            let back = ConfigMsg::from_bytes(&bytes).unwrap().into_config();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn config_with_all_strategy_round_trips() {
        let mut cfg = TrainConfig::smoke(2);
        cfg.coevolution.adversary = AdversaryStrategy::All;
        cfg.grid.pattern = NeighborhoodPattern::Moore9;
        let back =
            ConfigMsg::from_bytes(&ConfigMsg::from(&cfg).to_bytes()).unwrap().into_config();
        assert_eq!(back, cfg);
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = CellSnapshot {
            cell: 7,
            gen_genome: vec![1.0, -2.0, 3.0],
            gen_lr: 2e-4,
            gen_loss: GanLoss::LeastSquares,
            gen_fitness: 0.75,
            disc_genome: vec![0.5; 8],
            disc_lr: 1e-4,
            disc_fitness: 0.25,
        };
        let msg = SnapshotMsg::from(&snap);
        let back = SnapshotMsg::from_bytes(&msg.to_bytes()).unwrap().into_snapshot();
        assert_eq!(back, snap);
    }

    #[test]
    fn direct_snapshot_encode_matches_message_encode() {
        // The scratch-buffer fast path must stay byte-identical to the
        // struct-based encoding, or mixed-version ranks would diverge.
        let snap = CellSnapshot {
            cell: 3,
            gen_genome: vec![0.25; 17],
            gen_lr: 3e-4,
            gen_loss: GanLoss::Minimax,
            gen_fitness: -1.5,
            disc_genome: vec![-0.75; 9],
            disc_lr: 5e-4,
            disc_fitness: 2.25,
        };
        let mut direct = Vec::new();
        SnapshotMsg::encode_snapshot(&snap, &mut direct);
        assert_eq!(direct, SnapshotMsg::from(&snap).to_bytes());
        // And it appends (scratch reuse clears before encoding, not here).
        let mut appended = vec![0xAA];
        SnapshotMsg::encode_snapshot(&snap, &mut appended);
        assert_eq!(&appended[1..], &direct[..]);
    }

    #[test]
    fn run_task_round_trips() {
        for (resume_from, rejoin_round) in
            [(None, None), (Some(7usize), None), (Some(2), Some(4))]
        {
            let task = RunTask {
                config: ConfigMsg::from(&TrainConfig::smoke(2)),
                cell_index: 3,
                resume_from,
                rejoin_round,
            };
            let back = RunTask::from_bytes(&task.to_bytes()).unwrap();
            assert_eq!(back, task);
        }
    }

    #[test]
    fn cache_response_round_trips() {
        for frame in [None, Some(vec![vec![1u8, 2, 3], vec![], vec![9u8; 5]])] {
            let resp = CacheResponse { frame };
            assert_eq!(CacheResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }

    #[test]
    fn slave_result_round_trips() {
        let r = SlaveResult {
            cell: 2,
            gen_fitness: 0.5,
            disc_fitness: 0.75,
            mixture: vec![0.2, 0.8],
            ensemble: vec![vec![1.0, -2.0, 3.0], vec![0.5; 4]],
            profile: vec![ProfileRowMsg { routine: "train".into(), seconds: 1.5, calls: 10 }],
            wall_seconds: 2.25,
            telemetry: None,
        };
        let back = SlaveResult::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
        let report = back.profile_report();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].routine, "train");
    }

    #[test]
    fn status_and_announcement_round_trip() {
        let s = StatusReport { state: 1, iterations_done: 42 };
        assert_eq!(StatusReport::from_bytes(&s.to_bytes()).unwrap(), s);
        let a = NodeAnnouncement { rank: 5, node_name: "node03".into() };
        assert_eq!(NodeAnnouncement::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn telemetry_summary_round_trips() {
        let mut s = lipiz_telemetry::TelemetrySummary::empty();
        s.rank = 3;
        s.cell = 2;
        s.iterations = 6;
        s.gather_ns.observe(1_500);
        s.gather_ns.observe(900_000);
        s.train_ns.observe(4_000_000);
        s.exchange_wall_ns = 5_000_000;
        s.checkpoints = 3;
        s.degraded_iters = 2;
        s.staleness = 1;
        s.rejoined = 1;
        s.dropped_events = 9;
        let msg = TelemetrySummaryMsg::from(&s);
        let back = TelemetrySummaryMsg::from_bytes(&msg.to_bytes()).unwrap().into_summary();
        assert_eq!(back, s);

        // A result carrying a summary round-trips too.
        let r = SlaveResult {
            cell: 2,
            gen_fitness: 0.5,
            disc_fitness: 0.75,
            mixture: vec![1.0],
            ensemble: vec![vec![0.5]],
            profile: Vec::new(),
            wall_seconds: 1.0,
            telemetry: Some(msg),
        };
        assert_eq!(SlaveResult::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn corrupted_config_is_rejected() {
        let msg = ConfigMsg::from(&TrainConfig::smoke(2));
        let bytes = msg.to_bytes();
        assert!(ConfigMsg::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn tags_are_distinct() {
        let all = [
            tags::NODE_NAME,
            tags::RUN_TASK,
            tags::STATUS_REQ,
            tags::STATUS_RESP,
            tags::CACHE_REQ,
            tags::CACHE_RESP,
            tags::TELEMETRY,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
