//! Master process logic (Fig. 3, left side).
//!
//! The master: gathers node information, decides the workload assignment,
//! distributes the parameter configuration, monitors the slaves with a
//! background heartbeat thread, and finally gathers and reduces the
//! results.

use crate::comm_manager::CommManager;
use crate::heartbeat::{run_heartbeat_loop, HeartbeatLog};
use crate::protocol::{ConfigMsg, NodeAnnouncement, RunTask, SlaveResult};
use lipiz_core::profiling::{ProfileReport, ProfileRow};
use lipiz_core::{
    CellResult, EnsembleModel, Grid, MixtureWeights, Routine, TrainConfig, TrainReport,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Everything the master learned from a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterOutcome {
    /// The combined training report (driver = "distributed").
    pub report: TrainReport,
    /// Node announcements received at startup.
    pub announcements: Vec<NodeAnnouncement>,
    /// Heartbeat monitoring log.
    pub heartbeat: HeartbeatLog,
    /// Raw per-slave results (cell order).
    pub slave_results: Vec<SlaveResult>,
}

impl MasterOutcome {
    /// Reassemble the winning cell's generative model from the genomes the
    /// slave shipped in its final gather. Byte-identical to the ensemble
    /// the slave's own engine would report (the mixture weights cross the
    /// wire exactly and are **not** renormalized), which is what the
    /// multi-process `.lpz` equivalence suite asserts.
    ///
    /// # Panics
    /// Panics if the gathered results are empty (no slaves ran).
    pub fn best_ensemble(&self, cfg: &TrainConfig) -> EnsembleModel {
        let best = &self.slave_results[self.report.best_cell];
        EnsembleModel::new(
            cfg.network.to_network_config(),
            best.ensemble.clone(),
            MixtureWeights::from_normalized(&best.mixture),
        )
    }
}

/// Workload assignment: which WORLD rank trains which grid cell.
///
/// Uniform partitioning (§III-A): the estimated workload in every cell is
/// identical, so cell `i` simply goes to slave rank `i + 1`.
pub fn assign_workload(num_slaves: usize) -> Vec<(usize, usize)> {
    (0..num_slaves).map(|cell| (cell + 1, cell)).collect()
}

/// Run the complete master lifecycle.
pub fn run_master(
    cm: &CommManager,
    cfg: &TrainConfig,
    heartbeat_interval: Duration,
) -> MasterOutcome {
    assert_eq!(
        cm.num_slaves(),
        cfg.cells(),
        "need exactly one slave per grid cell (Table II: m²+1 tasks)"
    );
    let start = Instant::now();

    // i) gather infrastructure information.
    let announcements = cm.collect_announcements();

    // ii + iii) decide placement and assign workload.
    let assignment = assign_workload(cm.num_slaves());

    // iv) share the parameter configuration and launch the slaves.
    let config_msg = ConfigMsg::from(cfg);
    for &(rank, cell) in &assignment {
        cm.send_run_task(rank, &RunTask { config: config_msg.clone(), cell_index: cell });
    }

    // Heartbeat thread monitors in the background while the master waits
    // for the final gather.
    let stop = AtomicBool::new(false);
    let (slave_results, heartbeat) = std::thread::scope(|s| {
        let hb_cm = cm.clone();
        let stop_ref = &stop;
        let hb = s.spawn(move || {
            run_heartbeat_loop(
                &hb_cm,
                heartbeat_interval,
                heartbeat_interval.max(Duration::from_millis(50)),
                stop_ref,
            )
        });
        let results = cm.gather_results(None).expect("master gathers results");
        stop.store(true, Ordering::Release);
        let log = hb.join().expect("heartbeat thread panicked");
        (results, log)
    });

    let wall_seconds = start.elapsed().as_secs_f64();
    let report = reduce_results(cfg, &slave_results, wall_seconds);
    MasterOutcome { report, announcements, heartbeat, slave_results }
}

/// Reduction phase: combine per-slave results into the final report and
/// pick the best cell (lowest generator fitness).
pub fn reduce_results(
    cfg: &TrainConfig,
    slave_results: &[SlaveResult],
    wall_seconds: f64,
) -> TrainReport {
    let grid = Grid::from_config(&cfg.grid);
    let cells: Vec<CellResult> = slave_results
        .iter()
        .map(|r| CellResult {
            cell: r.cell,
            coords: grid.coords(r.cell),
            gen_fitness: r.gen_fitness,
            disc_fitness: r.disc_fitness,
            mixture_weights: r.mixture.clone(),
        })
        .collect();
    let best_cell = cells
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.gen_fitness.partial_cmp(&b.gen_fitness).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map_or(0, |(i, _)| i);

    // Distributed profile: the mean across slaves (they run concurrently, so
    // a per-rank view — not the sum — is what Table IV's distributed column
    // reports).
    let profile = mean_profile(slave_results);

    TrainReport {
        driver: "distributed".into(),
        grid: (cfg.grid.rows, cfg.grid.cols),
        iterations: cfg.coevolution.iterations,
        wall_seconds,
        profile,
        cells,
        best_cell,
    }
}

/// Average the slaves' per-routine profiles.
pub fn mean_profile(slave_results: &[SlaveResult]) -> ProfileReport {
    let n = slave_results.len().max(1) as f64;
    let rows = Routine::ALL
        .iter()
        .map(|r| {
            let (mut secs, mut calls) = (0.0f64, 0u64);
            for s in slave_results {
                for row in &s.profile {
                    if row.routine == r.name() {
                        secs += row.seconds;
                        calls = calls.max(row.calls);
                    }
                }
            }
            ProfileRow { routine: r.name().to_string(), seconds: secs / n, calls }
        })
        .collect();
    ProfileReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProfileRowMsg;

    fn result(cell: usize, fit: f64, train_secs: f64) -> SlaveResult {
        SlaveResult {
            cell,
            gen_fitness: fit,
            disc_fitness: 0.5,
            mixture: vec![1.0],
            ensemble: vec![vec![0.0; 4]],
            profile: vec![ProfileRowMsg {
                routine: "train".into(),
                seconds: train_secs,
                calls: 4,
            }],
            wall_seconds: 1.0,
        }
    }

    #[test]
    fn workload_assignment_is_uniform() {
        let a = assign_workload(4);
        assert_eq!(a, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn reduction_picks_lowest_fitness() {
        let cfg = lipiz_core::TrainConfig::smoke(2);
        let results: Vec<SlaveResult> =
            (0..4).map(|c| result(c, 1.0 - c as f64 * 0.1, 2.0)).collect();
        let report = reduce_results(&cfg, &results, 10.0);
        assert_eq!(report.best_cell, 3);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.driver, "distributed");
        assert_eq!(report.grid, (2, 2));
    }

    #[test]
    fn mean_profile_averages_across_slaves() {
        let results = vec![result(0, 0.0, 2.0), result(1, 0.0, 4.0)];
        let profile = mean_profile(&results);
        assert!((profile.seconds(Routine::Train) - 3.0).abs() < 1e-9);
        assert_eq!(profile.seconds(Routine::Gather), 0.0);
    }

    #[test]
    fn coords_follow_grid_layout() {
        let cfg = lipiz_core::TrainConfig::smoke(2);
        let results: Vec<SlaveResult> = (0..4).map(|c| result(c, 0.1, 1.0)).collect();
        let report = reduce_results(&cfg, &results, 1.0);
        assert_eq!(report.cells[3].coords, (1, 1));
    }
}
