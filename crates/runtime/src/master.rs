//! Master process logic (Fig. 3, left side).
//!
//! The master: gathers node information, decides the workload assignment,
//! distributes the parameter configuration, monitors the slaves with a
//! background heartbeat thread, and finally gathers and reduces the
//! results.

use crate::checkpoint::{self, CheckpointError};
use crate::comm_manager::CommManager;
use crate::driver::DistributedOptions;
use crate::heartbeat::{run_heartbeat_loop_with_deadline, HeartbeatLog, NO_DEAD_SLAVE};
use crate::protocol::{ConfigMsg, NodeAnnouncement, RunTask, SlaveResult};
use lipiz_core::profiling::{ProfileReport, ProfileRow};
use lipiz_core::{
    CellResult, EnsembleModel, Grid, MixtureWeights, Routine, TrainConfig, TrainReport,
};
use lipiz_mpi::{replacement_schedule, FaultPlan, ReplacementSchedule};
use lipiz_telemetry::{EventKind, SharedTelemetry, Telemetry, TelemetrySummary, NO_CELL};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Hook the elastic master calls to bring a replacement for the given dead
/// WORLD rank onto the transport: spawn (or adopt) a fresh process and
/// complete its rejoin handshake. Returns whether the replacement is
/// connected and ready to announce. The master never tears the surviving
/// fleet down while one of these succeeds.
pub type Replacer<'a> = dyn Fn(usize) -> bool + 'a;

/// How long the master waits for a connected replacement's node
/// announcement before giving up on the in-flight path.
const REJOIN_ANNOUNCE_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a monitored master run aborted instead of completing.
///
/// The variants carry enough context for recovery logs to *name* the
/// failure: the dead slave's WORLD rank and grid cell, plus the heartbeat
/// evidence that convicted it.
#[derive(Debug)]
pub enum MasterAbort {
    /// A slave missed its heartbeat deadline (or went silent before the
    /// final gather) and was declared dead.
    SlaveDead {
        /// WORLD rank of the dead slave.
        world_rank: usize,
        /// Grid cell that slave was training.
        cell: usize,
        /// The heartbeat log up to the abort.
        heartbeat: HeartbeatLog,
    },
    /// The run's checkpoint manifest could not be written.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for MasterAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterAbort::SlaveDead { world_rank, cell, .. } => write!(
                f,
                "slave world rank {world_rank} (cell {cell}) missed its heartbeat deadline"
            ),
            MasterAbort::Checkpoint(e) => write!(f, "checkpoint setup failed: {e}"),
        }
    }
}

impl std::error::Error for MasterAbort {}

/// Everything the master learned from a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterOutcome {
    /// The combined training report (driver = "distributed").
    pub report: TrainReport,
    /// Node announcements received at startup.
    pub announcements: Vec<NodeAnnouncement>,
    /// Heartbeat monitoring log.
    pub heartbeat: HeartbeatLog,
    /// Raw per-slave results (cell order).
    pub slave_results: Vec<SlaveResult>,
    /// Run telemetry merged across all slaves (`None` when `--telemetry`
    /// is off). The CLI persists this next to the `.lpz`.
    pub telemetry: Option<TelemetrySummary>,
}

impl MasterOutcome {
    /// Reassemble the winning cell's generative model from the genomes the
    /// slave shipped in its final gather. Byte-identical to the ensemble
    /// the slave's own engine would report (the mixture weights cross the
    /// wire exactly and are **not** renormalized), which is what the
    /// multi-process `.lpz` equivalence suite asserts.
    ///
    /// # Panics
    /// Panics if the gathered results are empty (no slaves ran).
    pub fn best_ensemble(&self, cfg: &TrainConfig) -> EnsembleModel {
        let best = &self.slave_results[self.report.best_cell];
        EnsembleModel::new(
            cfg.network.to_network_config(),
            best.ensemble.clone(),
            MixtureWeights::from_normalized(&best.mixture),
        )
    }
}

/// Workload assignment: which WORLD rank trains which grid cell.
///
/// Uniform partitioning (§III-A): the estimated workload in every cell is
/// identical, so cell `i` simply goes to slave rank `i + 1`.
pub fn assign_workload(num_slaves: usize) -> Vec<(usize, usize)> {
    (0..num_slaves).map(|cell| (cell + 1, cell)).collect()
}

/// Run the complete master lifecycle with monitor-only heartbeats (a
/// silent slave is logged as delayed but never declared dead). Kept as the
/// simple entry point; the elastic path is [`run_master_monitored`].
pub fn run_master(
    cm: &CommManager,
    cfg: &TrainConfig,
    heartbeat_interval: Duration,
) -> MasterOutcome {
    let opts = DistributedOptions { heartbeat_interval, ..DistributedOptions::default() };
    run_master_monitored(cm, cfg, &opts)
        .unwrap_or_else(|e| panic!("unmonitored master run aborted: {e}"))
}

/// Run the complete master lifecycle, optionally with a death deadline
/// (`opts.deadline_misses > 0`) and a resume marker for the slaves.
///
/// On a declared death the final gather is abandoned and
/// [`MasterAbort::SlaveDead`] names the failed rank — the caller (the
/// `lipizzaner launch` recovery loop) respawns slaves and reruns from the
/// last committed checkpoint cut.
pub fn run_master_monitored(
    cm: &CommManager,
    cfg: &TrainConfig,
    opts: &DistributedOptions,
) -> Result<MasterOutcome, MasterAbort> {
    run_master_elastic(cm, cfg, opts, None)
}

/// The in-flight replacement schedule implied by the config's fault plan,
/// if its earliest kill is replaceable (same pure arithmetic on every
/// party — see [`replacement_schedule`]).
fn scheduled_replacement(cfg: &TrainConfig) -> Option<ReplacementSchedule> {
    let plan = FaultPlan::parse(cfg.fault.plan.as_deref()?).ok()?;
    replacement_schedule(
        &plan,
        cfg.fault.max_stale_iters,
        cfg.checkpoint.every,
        cfg.checkpoint.effective_iterations(cfg.coevolution.iterations),
        cfg.cells(),
    )
}

/// [`run_master_monitored`] with in-flight rank replacement: when the
/// heartbeat convicts the rank the fault plan scripts to die — and a
/// `replacer` hook is available — the master respawns *only* that rank
/// instead of aborting. The replacer brings a fresh process onto the
/// transport (rejoin handshake included); the master then awaits its
/// announcement and hands it a [`RunTask`] carrying the dead cell's newest
/// committed checkpoint cut plus the rejoin round at which it must be back
/// in the exchange. Survivors never leave iteration cadence: the fan-in
/// root bridges the gap from its stale cache while the replacement catches
/// up solo. A failed replacement (spawn, handshake, or announcement) falls
/// back to the coordinated full-teardown abort.
pub fn run_master_elastic(
    cm: &CommManager,
    cfg: &TrainConfig,
    opts: &DistributedOptions,
    replacer: Option<&Replacer<'_>>,
) -> Result<MasterOutcome, MasterAbort> {
    assert_eq!(
        cm.num_slaves(),
        cfg.cells(),
        "need exactly one slave per grid cell (Table II: m²+1 tasks)"
    );
    let start = Instant::now();

    // Master-side telemetry: the heartbeat thread journals misses and
    // convictions, the gather thread journals cleared verdicts, and the
    // tag-16 drain below folds live slave summaries into a status line.
    let tel = SharedTelemetry::new(Telemetry::from_gate(
        cfg.telemetry.enabled,
        0,
        cfg.telemetry.ring_capacity,
    ));
    let live: Mutex<HashMap<u32, TelemetrySummary>> = Mutex::new(HashMap::new());

    // The master is the run's coordinator: it owns the checkpoint manifest.
    if cfg.checkpoint.enabled() {
        let dir = cfg.checkpoint.dir.as_deref().expect("enabled checkpoint has a dir");
        checkpoint::write_manifest(Path::new(dir), cfg).map_err(MasterAbort::Checkpoint)?;
    }

    // i) gather infrastructure information. A slave dying *before* it
    // announces (the heartbeat thread does not exist yet) aborts here with
    // its rank instead of wedging the master.
    let announcements = cm
        .collect_announcements_monitored(opts.heartbeat_interval.max(Duration::from_millis(10)))
        .map_err(|world_rank| MasterAbort::SlaveDead {
            world_rank,
            cell: world_rank - 1,
            heartbeat: HeartbeatLog::default(),
        })?;

    // ii + iii) decide placement and assign workload.
    let assignment = assign_workload(cm.num_slaves());

    // iv) share the parameter configuration and launch the slaves.
    let config_msg = ConfigMsg::from(cfg);
    for &(rank, cell) in &assignment {
        cm.send_run_task(
            rank,
            &RunTask {
                config: config_msg.clone(),
                cell_index: cell,
                resume_from: opts.resume_from,
                rejoin_round: None,
            },
        );
    }

    // Heartbeat thread monitors in the background while the master waits
    // for the final gather; the gather aborts once a death is declared.
    let response_timeout = opts
        .response_timeout
        .unwrap_or_else(|| opts.heartbeat_interval.max(Duration::from_millis(50)));
    let stop = AtomicBool::new(false);
    let first_dead = AtomicI64::new(NO_DEAD_SLAVE);
    // Replacement state: the schedule the fault plan implies (if its kill
    // is replaceable) and a once-only latch — a second conviction of the
    // same rank, or of any other rank, aborts the old-fashioned way.
    let sched = scheduled_replacement(cfg);
    let replacement_started = AtomicBool::new(false);
    let (gathered, heartbeat) = std::thread::scope(|s| {
        let hb_cm = cm.clone();
        let stop_ref = &stop;
        let dead_ref = &first_dead;
        let hb_opts = *opts;
        let tel_ref = &tel;
        let hb = s.spawn(move || {
            run_heartbeat_loop_with_deadline(
                &hb_cm,
                hb_opts.heartbeat_interval,
                response_timeout,
                hb_opts.deadline_misses,
                stop_ref,
                dead_ref,
                Some(tel_ref),
            )
        });
        let poll = opts.heartbeat_interval.max(Duration::from_millis(10));
        let results = cm.gather_results_abortable(poll, &|pending: &[usize]| {
            // Fold any summaries slaves shipped at checkpoint boundaries
            // into the live status line (tag 16 is only ever sent when
            // telemetry is on, so the drain is free otherwise).
            if tel.is_enabled() {
                let mut drained = false;
                while let Some(msg) = cm.try_recv_telemetry(Duration::ZERO) {
                    let s = msg.into_summary();
                    live.lock().expect("telemetry live map").insert(s.rank, s);
                    drained = true;
                }
                if drained {
                    let mut merged = TelemetrySummary::empty();
                    for s in live.lock().expect("telemetry live map").values() {
                        merged.merge(s);
                    }
                    eprintln!("[master] {}", merged.status_line());
                }
            }
            // Who do we believe is dead? A heartbeat conviction wins;
            // absent one, a pending rank whose transport connection is gone
            // (the doomed-gather signal — it fires within milliseconds of a
            // process death, well before the heartbeat deadline can
            // convict, and even with monitoring off).
            let convicted = first_dead.load(Ordering::Acquire);
            let suspect = if convicted != NO_DEAD_SLAVE {
                if !pending.contains(&(convicted as usize)) {
                    // Stale verdict: the convicted rank's result already
                    // arrived — it finished, delivered, and legitimately
                    // went quiet (a slave stops answering heartbeats once
                    // training ends, and the Finished exemption is
                    // best-effort: the master only observes that state if a
                    // request lands in the slave's drain window). Clear the
                    // flag so a *real* death can still be recorded.
                    if first_dead
                        .compare_exchange(
                            convicted,
                            NO_DEAD_SLAVE,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        tel.instant(EventKind::ConvictionCleared, convicted as u32, 0, 0);
                    }
                    return false;
                }
                convicted as usize
            } else {
                match pending.iter().copied().find(|&r| cm.connection_dead(r)) {
                    Some(rank) => rank,
                    None => return false,
                }
            };
            // The scripted victim died and a replacer is on hand: bring a
            // replacement onto the transport in-flight instead of aborting.
            // On success any conviction is cleared, which the heartbeat
            // loop treats as a permanent exemption for that rank — the
            // replacement announces, restores, catches up solo, and rejoins
            // the exchange at the scheduled round while the gather simply
            // keeps waiting.
            if let (Some(sched), Some(replace)) = (sched, replacer) {
                if suspect == sched.victim_world {
                    if replacement_started.swap(true, Ordering::AcqRel) {
                        // Replacement already completed (the winning call
                        // runs synchronously in this same thread). A live
                        // replacement whose connection is *also* dead is a
                        // real second death: give up the old-fashioned way.
                        if cm.connection_dead(sched.victim_world) {
                            return true;
                        }
                        // Otherwise this is a leftover heartbeat conviction
                        // from the death window — clear it (the heartbeat
                        // loop then exempts the rank for good).
                        if convicted != NO_DEAD_SLAVE
                            && first_dead
                                .compare_exchange(
                                    convicted,
                                    NO_DEAD_SLAVE,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                        {
                            tel.instant(EventKind::ConvictionCleared, convicted as u32, 0, 0);
                        }
                        return false;
                    }
                    let connected = replace(sched.victim_world)
                        && cm
                            .await_announcement_from(
                                sched.victim_world,
                                REJOIN_ANNOUNCE_TIMEOUT,
                            )
                            .is_some();
                    if connected {
                        cm.send_run_task(
                            sched.victim_world,
                            &RunTask {
                                config: config_msg.clone(),
                                cell_index: sched.cell,
                                resume_from: sched.resume_cut,
                                rejoin_round: Some(sched.rejoin_round),
                            },
                        );
                        if convicted != NO_DEAD_SLAVE
                            && first_dead
                                .compare_exchange(
                                    convicted,
                                    NO_DEAD_SLAVE,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                        {
                            tel.instant(EventKind::ConvictionCleared, convicted as u32, 0, 0);
                        }
                        tel.instant(
                            EventKind::Rejoin,
                            sched.cell as u32,
                            sched.rejoin_round as u32,
                            sched.victim_world as u64,
                        );
                        return false;
                    }
                }
            }
            true
        });
        stop.store(true, Ordering::Release);
        let log = hb.join().expect("heartbeat thread panicked");
        (results, log)
    });

    // Flush the master's own journal (conviction evidence survives even an
    // aborted run) before deciding the outcome.
    if let Some(dir) = cfg.telemetry.dir.as_deref() {
        if let Err(e) = tel.write_journal(&Path::new(dir).join("master.jsonl")) {
            eprintln!("[master] telemetry journal write failed: {e}");
        }
    }

    match gathered {
        Ok(slave_results) => {
            let wall_seconds = start.elapsed().as_secs_f64();
            let report = reduce_results(cfg, &slave_results, wall_seconds);
            let telemetry = merge_telemetry(
                cfg,
                &slave_results,
                replacement_started.load(Ordering::Acquire),
            );
            if let Some(merged) = &telemetry {
                eprintln!("[master] {}", merged.status_line());
            }
            Ok(MasterOutcome { report, announcements, heartbeat, slave_results, telemetry })
        }
        Err(pending) => {
            // Name the actual casualty: the heartbeat conviction if one
            // landed, else the pending rank whose connection is really
            // gone (the doomed-gather path fires well before the deadline
            // can convict), else the first pending rank.
            let world_rank = match first_dead.load(Ordering::Acquire) {
                NO_DEAD_SLAVE => pending
                    .iter()
                    .copied()
                    .find(|&r| cm.connection_dead(r))
                    .unwrap_or(pending[0]),
                rank => rank as usize,
            };
            Err(MasterAbort::SlaveDead { world_rank, cell: world_rank - 1, heartbeat })
        }
    }
}

/// Fold the final per-slave telemetry summaries into the run-wide view
/// (`None` when telemetry is off). `replaced` records whether the master
/// performed an in-flight rank replacement — a master-side fact the
/// slaves cannot report themselves.
fn merge_telemetry(
    cfg: &TrainConfig,
    slave_results: &[SlaveResult],
    replaced: bool,
) -> Option<TelemetrySummary> {
    if !cfg.telemetry.is_enabled() {
        return None;
    }
    let mut merged = TelemetrySummary::empty();
    for r in slave_results {
        if let Some(msg) = &r.telemetry {
            merged.merge(&msg.clone().into_summary());
        }
    }
    merged.cell = NO_CELL;
    merged.replaced_ranks += u64::from(replaced);
    Some(merged)
}

/// Reduction phase: combine per-slave results into the final report and
/// pick the best cell (lowest generator fitness).
pub fn reduce_results(
    cfg: &TrainConfig,
    slave_results: &[SlaveResult],
    wall_seconds: f64,
) -> TrainReport {
    let grid = Grid::from_config(&cfg.grid);
    let cells: Vec<CellResult> = slave_results
        .iter()
        .map(|r| CellResult {
            cell: r.cell,
            coords: grid.coords(r.cell),
            gen_fitness: r.gen_fitness,
            disc_fitness: r.disc_fitness,
            mixture_weights: r.mixture.clone(),
        })
        .collect();
    let best_cell = cells
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.gen_fitness.partial_cmp(&b.gen_fitness).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map_or(0, |(i, _)| i);

    // Distributed profile: the mean across slaves (they run concurrently, so
    // a per-rank view — not the sum — is what Table IV's distributed column
    // reports).
    let profile = mean_profile(slave_results);

    TrainReport {
        driver: "distributed".into(),
        grid: (cfg.grid.rows, cfg.grid.cols),
        iterations: cfg.coevolution.iterations,
        wall_seconds,
        profile,
        cells,
        best_cell,
    }
}

/// Average the slaves' per-routine profiles.
pub fn mean_profile(slave_results: &[SlaveResult]) -> ProfileReport {
    let n = slave_results.len().max(1) as f64;
    let rows = Routine::ALL
        .iter()
        .map(|r| {
            let (mut secs, mut calls) = (0.0f64, 0u64);
            for s in slave_results {
                for row in &s.profile {
                    if row.routine == r.name() {
                        secs += row.seconds;
                        calls = calls.max(row.calls);
                    }
                }
            }
            ProfileRow { routine: r.name().to_string(), seconds: secs / n, calls }
        })
        .collect();
    ProfileReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProfileRowMsg;

    fn result(cell: usize, fit: f64, train_secs: f64) -> SlaveResult {
        SlaveResult {
            cell,
            gen_fitness: fit,
            disc_fitness: 0.5,
            mixture: vec![1.0],
            ensemble: vec![vec![0.0; 4]],
            profile: vec![ProfileRowMsg {
                routine: "train".into(),
                seconds: train_secs,
                calls: 4,
            }],
            wall_seconds: 1.0,
            telemetry: None,
        }
    }

    #[test]
    fn workload_assignment_is_uniform() {
        let a = assign_workload(4);
        assert_eq!(a, vec![(1, 0), (2, 1), (3, 2), (4, 3)]);
    }

    #[test]
    fn reduction_picks_lowest_fitness() {
        let cfg = lipiz_core::TrainConfig::smoke(2);
        let results: Vec<SlaveResult> =
            (0..4).map(|c| result(c, 1.0 - c as f64 * 0.1, 2.0)).collect();
        let report = reduce_results(&cfg, &results, 10.0);
        assert_eq!(report.best_cell, 3);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.driver, "distributed");
        assert_eq!(report.grid, (2, 2));
    }

    #[test]
    fn mean_profile_averages_across_slaves() {
        let results = vec![result(0, 0.0, 2.0), result(1, 0.0, 4.0)];
        let profile = mean_profile(&results);
        assert!((profile.seconds(Routine::Train) - 3.0).abs() < 1e-9);
        assert_eq!(profile.seconds(Routine::Gather), 0.0);
    }

    #[test]
    fn monitored_master_names_a_dead_slave_instead_of_hanging() {
        // A slave that takes its task and then dies silently: with a death
        // deadline configured, the master must abandon the final gather and
        // name the dead rank — never wedge. (1×1 grid so no surviving slave
        // is left blocked in a collective.)
        use lipiz_mpi::Universe;
        let mut cfg = lipiz_core::TrainConfig::smoke(2);
        cfg.grid.rows = 1;
        cfg.grid.cols = 1;
        let results = Universe::run(2, |world| {
            let cm = crate::comm_manager::CommManager::new(world);
            if cm.is_master() {
                let opts = crate::driver::DistributedOptions {
                    heartbeat_interval: Duration::from_millis(5),
                    response_timeout: Some(Duration::from_millis(10)),
                    deadline_misses: 3,
                    resume_from: None,
                };
                Some(run_master_monitored(&cm, &cfg, &opts))
            } else {
                // Take the workload, then die without a word.
                cm.announce_node("doomed");
                let _task = cm.recv_run_task();
                None
            }
        });
        let outcome = results.into_iter().next().unwrap().unwrap();
        match outcome {
            Err(MasterAbort::SlaveDead { world_rank, cell, heartbeat }) => {
                assert_eq!(world_rank, 1);
                assert_eq!(cell, 0);
                assert!(heartbeat.any_delayed(), "death declared without evidence");
            }
            other => panic!("expected SlaveDead, got {other:?}"),
        }
    }

    #[test]
    fn early_finisher_going_silent_is_not_convicted() {
        // The finishing-skew scenario: slave 1 delivers its result early and
        // stops answering heartbeats (exactly what a finished slave does),
        // while slave 2 keeps training well past the death deadline. The
        // conviction of the silent-but-delivered slave must be recognized
        // as stale — the run completes instead of aborting.
        use crate::protocol::StatusReport;
        use lipiz_mpi::Universe;
        let mut cfg = lipiz_core::TrainConfig::smoke(2);
        cfg.grid.rows = 1;
        cfg.grid.cols = 2;
        let results = Universe::run(3, |world| {
            let cm = crate::comm_manager::CommManager::new(world);
            if cm.is_master() {
                let opts = crate::driver::DistributedOptions {
                    heartbeat_interval: Duration::from_millis(5),
                    response_timeout: Some(Duration::from_millis(10)),
                    deadline_misses: 2, // harsh: ~30ms of silence convicts
                    resume_from: None,
                };
                return Some(run_master_monitored(&cm, &cfg, &opts));
            }
            cm.announce_node(&format!("node{}", cm.world_rank()));
            let task = cm.recv_run_task();
            if cm.world_rank() == 1 {
                // Deliver immediately, then go silent but stay alive while
                // the other slave keeps the run open far past the deadline.
                cm.gather_results(Some(result(task.cell_index, 0.5, 1.0)));
                std::thread::sleep(Duration::from_millis(300));
            } else {
                // Slow trainer: keeps answering heartbeats for a while,
                // then delivers.
                let deadline = Instant::now() + Duration::from_millis(250);
                while Instant::now() < deadline {
                    if cm.poll_status_request(Duration::from_millis(5)) {
                        cm.respond_status(&StatusReport { state: 1, iterations_done: 1 });
                    }
                }
                cm.gather_results(Some(result(task.cell_index, 0.7, 1.0)));
            }
            None
        });
        let outcome = results.into_iter().next().unwrap().unwrap();
        match outcome {
            Ok(o) => assert_eq!(o.report.cells.len(), 2),
            Err(e) => panic!("healthy skewed run was aborted: {e}"),
        }
    }

    #[test]
    fn coords_follow_grid_layout() {
        let cfg = lipiz_core::TrainConfig::smoke(2);
        let results: Vec<SlaveResult> = (0..4).map(|c| result(c, 0.1, 1.0)).collect();
        let report = reduce_results(&cfg, &results, 1.0);
        assert_eq!(report.cells[3].coords, (1, 1));
    }
}
