//! One-call entry points for a distributed run — over the in-process
//! fabric (every rank a thread) or over the TCP transport (every rank an
//! OS process; see [`lipiz_mpi::tcp::TcpFabric`]).

use crate::comm_manager::CommManager;
use crate::master::{run_master_elastic, run_master_monitored, MasterAbort, MasterOutcome};
use crate::slave::run_slave;
use crate::state::SlaveState;
use lipiz_core::{TrainConfig, TrainReport};
use lipiz_mpi::tcp::TcpFabric;
use lipiz_mpi::Universe;
use lipiz_tensor::Matrix;
use std::net::{TcpListener, ToSocketAddrs};
use std::time::Duration;

/// Knobs for the distributed runtime that are not part of the training
/// configuration proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedOptions {
    /// Delay between heartbeat rounds ("Wait X seconds" in Fig. 3).
    pub heartbeat_interval: Duration,
    /// Per-round heartbeat response deadline; `None` derives
    /// `max(heartbeat_interval, 50ms)`.
    pub response_timeout: Option<Duration>,
    /// Consecutive missed heartbeat rounds after which a slave is declared
    /// dead and the run aborts for recovery. `0` (the default) never
    /// declares death — monitoring only, the pre-elastic behavior.
    pub deadline_misses: usize,
    /// Start every slave from this committed checkpoint iteration instead
    /// of initializing fresh (the config's checkpoint directory names the
    /// files). `None` = fresh run.
    pub resume_from: Option<usize>,
}

impl Default for DistributedOptions {
    fn default() -> Self {
        Self {
            heartbeat_interval: Duration::from_millis(50),
            response_timeout: None,
            deadline_misses: 0,
            resume_from: None,
        }
    }
}

/// Launch `cells + 1` ranks (Table II: an `m×m` grid uses `m² + 1` tasks),
/// run the full master/slave protocol, and return the master's outcome.
///
/// `make_data(cell, cfg)` builds each slave's local dataset — it runs *on
/// the slave rank*, mirroring Fig. 3's "download data" step.
pub fn run_distributed(
    cfg: &TrainConfig,
    make_data: impl Fn(usize, &TrainConfig) -> Matrix + Send + Sync,
    opts: DistributedOptions,
) -> MasterOutcome {
    let n = cfg.cells() + 1;
    let mut outcomes = Universe::run(n, |world| {
        let cm = CommManager::new(world);
        if cm.is_master() {
            let outcome = run_master_monitored(&cm, cfg, &opts)
                .unwrap_or_else(|e| panic!("in-process distributed run aborted: {e}"));
            Some(outcome)
        } else {
            let node = format!("node{:02}", cm.world_rank());
            run_slave(&cm, &make_data, &node);
            None
        }
    });
    outcomes.swap_remove(0).expect("master rank produces the outcome")
}

/// Master side of a multi-process TCP run: accept `cfg.cells()` slave
/// connections on `listener`, run the full master lifecycle, and shut the
/// transport down once the final gather lands. The caller binds the
/// listener so it can advertise (or spawn slaves against) the actual port
/// before accepting starts.
///
/// The same [`run_master`] drives both transports — this function only
/// swaps the fabric underneath it, which is exactly the decoupling the
/// paper's comm-manager design argues for.
pub fn run_tcp_master(
    listener: TcpListener,
    cfg: &TrainConfig,
    opts: DistributedOptions,
) -> std::io::Result<MasterOutcome> {
    run_tcp_master_monitored(listener, cfg, opts)?
        .map_err(|e| std::io::Error::other(e.to_string()))
}

/// [`run_tcp_master`] exposing the abort outcome: the outer `Result` is
/// transport bootstrap failure, the inner one a monitored-run abort (a
/// heartbeat-declared slave death) that the caller can recover from by
/// respawning slaves and rerunning from the last committed checkpoint.
/// The fabric is shut down on every path before returning.
pub fn run_tcp_master_monitored(
    listener: TcpListener,
    cfg: &TrainConfig,
    opts: DistributedOptions,
) -> std::io::Result<Result<MasterOutcome, MasterAbort>> {
    let fabric = TcpFabric::master(listener, cfg.cells() + 1)?;
    let cm = CommManager::new(Universe::attach(fabric.clone(), 0));
    let outcome = run_master_monitored(&cm, cfg, &opts);
    fabric.shutdown();
    Ok(outcome)
}

/// [`run_tcp_master_monitored`] with in-flight rank replacement: when the
/// config's fault plan scripts a replaceable kill and the heartbeat
/// convicts that rank, the master calls `spawn_replacement(victim_rank)` —
/// the caller respawns just that one OS process (pointing it at
/// [`run_tcp_rejoin_slave`]) — then completes the rejoin handshake on its
/// retained bootstrap listener and hands the newcomer its catch-up task.
/// The surviving fleet never tears down; a failed replacement falls back
/// to the coordinated-recovery abort the caller already handles.
pub fn run_tcp_master_elastic(
    listener: TcpListener,
    cfg: &TrainConfig,
    opts: DistributedOptions,
    spawn_replacement: impl Fn(usize) -> std::io::Result<()>,
) -> std::io::Result<Result<MasterOutcome, MasterAbort>> {
    let fabric = TcpFabric::master(listener, cfg.cells() + 1)?;
    let cm = CommManager::new(Universe::attach(fabric.clone(), 0));
    let rejoin_fabric = fabric.clone();
    let replacer = move |victim: usize| -> bool {
        spawn_replacement(victim).is_ok()
            && rejoin_fabric.accept_rejoin(victim, Duration::from_secs(60)).is_ok()
    };
    let outcome = run_master_elastic(&cm, cfg, &opts, Some(&replacer));
    fabric.shutdown();
    Ok(outcome)
}

/// Replacement-slave side of an in-flight rejoin: dial the master's
/// bootstrap listener, inherit the dead rank's identity and mesh (the
/// survivors' links are re-established toward this process), then run the
/// ordinary slave lifecycle — the run task it receives carries the
/// resume-and-catch-up markers.
pub fn run_tcp_rejoin_slave(
    master_addr: impl ToSocketAddrs,
    make_data: impl Fn(usize, &TrainConfig) -> Matrix + Sync,
) -> std::io::Result<SlaveState> {
    let fabric = TcpFabric::rejoin(master_addr)?;
    let rank = fabric.rank();
    let cm = CommManager::new(Universe::attach(fabric.clone(), rank));
    let state = run_slave(&cm, &make_data, &format!("node{rank:02}r"));
    fabric.shutdown_when_drained();
    Ok(state)
}

/// Slave side of a multi-process TCP run: dial the master at
/// `master_addr`, learn this process's rank, run the full slave lifecycle
/// (identical to the in-process driver's), and drain the transport before
/// returning so the final result frame is never lost to a reset.
pub fn run_tcp_slave(
    master_addr: impl ToSocketAddrs,
    make_data: impl Fn(usize, &TrainConfig) -> Matrix + Sync,
) -> std::io::Result<SlaveState> {
    let fabric = TcpFabric::slave(master_addr)?;
    let rank = fabric.rank();
    let cm = CommManager::new(Universe::attach(fabric.clone(), rank));
    let state = run_slave(&cm, &make_data, &format!("node{rank:02}"));
    fabric.shutdown_when_drained();
    Ok(state)
}

/// Convenience wrapper returning only the training report.
pub fn run_distributed_report(
    cfg: &TrainConfig,
    make_data: impl Fn(usize, &TrainConfig) -> Matrix + Send + Sync,
) -> TrainReport {
    run_distributed(cfg, make_data, DistributedOptions::default()).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_core::Routine;
    use lipiz_tensor::Rng64;

    fn toy_data(cell: usize, cfg: &TrainConfig) -> Matrix {
        let _ = cell; // every cell trains on the same deterministic data
        let mut rng = Rng64::seed_from(cfg.training.data_seed);
        rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9)
    }

    #[test]
    fn distributed_smoke_run_completes() {
        let cfg = TrainConfig::smoke(2);
        let outcome = run_distributed(&cfg, toy_data, DistributedOptions::default());
        let report = &outcome.report;
        assert_eq!(report.driver, "distributed");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.iterations, 2);
        assert!(report.wall_seconds > 0.0);
        assert!(report.best().gen_fitness.is_finite());
        // All four slaves announced themselves.
        assert_eq!(outcome.announcements.len(), 4);
        assert!(outcome.announcements.iter().all(|a| a.node_name.starts_with("node")));
        // Training time was recorded per routine.
        assert!(report.profile.seconds(Routine::Train) > 0.0);
    }

    #[test]
    fn distributed_matches_sequential_exactly() {
        // The headline equivalence: same config + same data ⇒ identical
        // per-cell fitness and mixtures across drivers.
        let cfg = TrainConfig::smoke(2);
        let outcome = run_distributed(&cfg, toy_data, DistributedOptions::default());

        let mut seq =
            lipiz_core::sequential::SequentialTrainer::new(&cfg, |cell| toy_data(cell, &cfg));
        let seq_report = seq.run();

        for (d, s) in outcome.report.cells.iter().zip(&seq_report.cells) {
            assert_eq!(d.cell, s.cell);
            assert_eq!(d.gen_fitness, s.gen_fitness, "cell {} gen fitness", d.cell);
            assert_eq!(d.disc_fitness, s.disc_fitness, "cell {} disc fitness", d.cell);
            assert_eq!(d.mixture_weights, s.mixture_weights, "cell {} mixture", d.cell);
        }
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);
    }

    #[test]
    fn async_exchange_matches_sequential_async_exactly() {
        // The tentpole equivalence: under `--exchange async` the pipelined
        // slaves (background completion thread, structural staleness 1)
        // must be bit-identical to the sequential trainer running the same
        // staleness schedule — async results are a pure function of
        // (seed, config), never of exchange-thread scheduling.
        let cfg = TrainConfig::smoke(2).with_exchange(lipiz_core::ExchangeMode::Async);
        let outcome = run_distributed(&cfg, toy_data, DistributedOptions::default());
        let mut seq =
            lipiz_core::sequential::SequentialTrainer::new(&cfg, |cell| toy_data(cell, &cfg));
        let seq_report = seq.run();
        for (d, s) in outcome.report.cells.iter().zip(&seq_report.cells) {
            assert_eq!(d.gen_fitness, s.gen_fitness, "cell {} gen fitness", d.cell);
            assert_eq!(d.disc_fitness, s.disc_fitness, "cell {} disc fitness", d.cell);
            assert_eq!(d.mixture_weights, s.mixture_weights, "cell {} mixture", d.cell);
        }
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);

        // And the staleness is real: an async run consumes generation
        // `i - 1` at iteration `i`, so it must diverge from the sync run.
        let sync_cfg = TrainConfig::smoke(2);
        let sync = run_distributed(&sync_cfg, toy_data, DistributedOptions::default());
        assert!(
            outcome
                .report
                .cells
                .iter()
                .zip(&sync.report.cells)
                .any(|(a, s)| a.gen_fitness != s.gen_fitness),
            "async run was identical to sync — staleness never took effect"
        );
    }

    #[test]
    fn multithreaded_slaves_match_serial_slaves_exactly() {
        // Two-level parallelism end-to-end: slaves running their engines on
        // a multi-worker pool must produce byte-identical results to serial
        // slaves (and therefore to the sequential baseline).
        let serial_cfg = TrainConfig::smoke(2);
        let threaded_cfg = TrainConfig::smoke(2).with_workers(2);
        let serial = run_distributed(&serial_cfg, toy_data, DistributedOptions::default());
        let threaded = run_distributed(&threaded_cfg, toy_data, DistributedOptions::default());
        for (s, t) in serial.report.cells.iter().zip(&threaded.report.cells) {
            assert_eq!(s.gen_fitness, t.gen_fitness, "cell {} gen fitness", s.cell);
            assert_eq!(s.disc_fitness, t.disc_fitness, "cell {} disc fitness", s.cell);
            assert_eq!(s.mixture_weights, t.mixture_weights, "cell {} mixture", s.cell);
        }
    }

    #[test]
    fn shipped_ensemble_matches_sequential_rebuild() {
        // The genomes gathered from the slaves must reassemble into exactly
        // the model a sequential run computes locally — weights, genomes,
        // and network config all bit-equal.
        let cfg = TrainConfig::smoke(2);
        let outcome = run_distributed(&cfg, toy_data, DistributedOptions::default());
        let mut seq =
            lipiz_core::sequential::SequentialTrainer::new(&cfg, |cell| toy_data(cell, &cfg));
        let seq_report = seq.run();
        let mut seq_ensembles = seq.ensembles();
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);
        let shipped = outcome.best_ensemble(&cfg);
        let local = seq_ensembles.swap_remove(seq_report.best_cell);
        assert_eq!(shipped, local);
    }

    #[test]
    fn tcp_transport_matches_sequential_exactly() {
        // The full master/slave protocol over real localhost sockets (each
        // rank a thread of this test, but all traffic through TcpFabric)
        // must be bit-identical to the sequential baseline — the in-process
        // half of the equivalence the multi-OS-process suite completes.
        let cfg = TrainConfig::smoke(2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let outcome = std::thread::scope(|s| {
            for _ in 0..cfg.cells() {
                s.spawn(move || run_tcp_slave(addr, toy_data).expect("tcp slave"));
            }
            run_tcp_master(listener, &cfg, DistributedOptions::default()).expect("tcp master")
        });

        let mut seq =
            lipiz_core::sequential::SequentialTrainer::new(&cfg, |cell| toy_data(cell, &cfg));
        let seq_report = seq.run();
        for (d, s) in outcome.report.cells.iter().zip(&seq_report.cells) {
            assert_eq!(d.gen_fitness, s.gen_fitness, "cell {} gen fitness", d.cell);
            assert_eq!(d.disc_fitness, s.disc_fitness, "cell {} disc fitness", d.cell);
            assert_eq!(d.mixture_weights, s.mixture_weights, "cell {} mixture", d.cell);
        }
        assert_eq!(outcome.report.best_cell, seq_report.best_cell);
        let shipped = outcome.best_ensemble(&cfg);
        assert_eq!(shipped, seq.ensembles().swap_remove(seq_report.best_cell));
    }

    #[test]
    fn heartbeat_observes_progress() {
        let mut cfg = TrainConfig::smoke(2);
        // Enough work that at least one heartbeat round lands mid-training.
        cfg.coevolution.iterations = 6;
        let opts = DistributedOptions {
            heartbeat_interval: Duration::from_millis(5),
            ..DistributedOptions::default()
        };
        let outcome = run_distributed(&cfg, toy_data, opts);
        assert!(!outcome.heartbeat.is_empty(), "no heartbeat rounds ran");
    }
}
