//! Offline shim for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. See `crates/compat/README.md` for the migration story.

pub use serde_derive::{Deserialize, Serialize};
