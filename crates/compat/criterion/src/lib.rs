//! Offline shim for the `criterion` crate.
//!
//! Provides the API surface of `lipiz-bench`'s five benchmark targets:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a straight wall-clock mean over a
//! small number of iterations with one line of output per benchmark — it
//! keeps `cargo bench` compiling and runnable offline, not statistically
//! rigorous.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for the standard opaque-value barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().0, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the work per iteration (annotates output only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Time `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().0, self.sample_size, &mut f);
        self
    }

    /// Time `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().0, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0 };
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters > 0 { b.total / b.iters as u32 } else { Duration::ZERO };
    let path = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {path:<48} {mean:>12.2?}/iter ({} iters)", b.iters);
}

/// Passed to benchmark closures to time the measured body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus a parameter rendered into the id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Units of work per iteration (annotation only in the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("f", 4), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("inp", 7), &7usize, |b, &n| {
            b.iter(|| assert_eq!(n, 7));
        });
        group.finish();
    }

    fn target(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(shim_benches, target);

    #[test]
    fn group_macro_produces_runner() {
        shim_benches();
    }
}
