//! Offline shim for the `rand` crate.
//!
//! Provides the rand 0.9 API surface `lipiz-tensor`'s `Rng64` wrapper uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`],
//! and [`Rng::random`] / [`Rng::random_range`].
//!
//! The generator behind `StdRng` is xoshiro256++ (not upstream's ChaCha12),
//! so draw sequences differ from real `rand`; all in-tree consumers rely on
//! seeded self-consistency only.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit draw.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (the `Standard`
/// distribution in upstream terms; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange for Range<$ty> {
                type Output = $ty;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is negligible at in-tree span sizes
                    // (data-set and population indices, well under 2^32).
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
        )+
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange for Range<$ty> {
                type Output = $ty;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let unit = <$ty as Standard>::sample(rng);
                    let v = self.start + unit * (self.end - self.start);
                    // The fused expression can round up to `end` for narrow
                    // ranges; the contract (like upstream rand) is [lo, hi).
                    if v >= self.end {
                        self.end.next_down()
                    } else {
                        v
                    }
                }
            }
        )+
    };
}

impl_sample_range_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, per the xoshiro authors'
            // recommendation, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The generator's full internal state (xoshiro256++ state words).
        /// Together with [`StdRng::from_state`] this makes the stream
        /// checkpointable: a restored generator continues *exactly* where
        /// the captured one would have, which the resume machinery relies
        /// on instead of replaying draws.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let n = rng.random_range(3usize..17);
            assert!((3..17).contains(&n));
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn narrow_float_range_never_returns_end() {
        // start + unit * span can round up to `end`; the contract is [lo, hi).
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v = rng.random_range(16_777_215.0f32..16_777_216.0);
            assert!(v < 16_777_216.0, "returned exclusive end bound");
        }
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
