//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! In-tree types use `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations; nothing serializes through serde yet (the wire codec in
//! `lipiz-mpi` and the line-based persistence in `lipiz-core` are
//! hand-rolled). When the real serde is wired in, these derives start
//! emitting impls with no source change at the use sites.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
