//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` assertions, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range /
//! tuple / [`any`] / [`collection::vec`] / [`option::of`] / string-pattern
//! strategies, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design: cases are generated from a fixed
//! per-case seed (fully deterministic runs), there is no shrinking and no
//! failure-persistence file, and string "regex" strategies only support the
//! `.{a,b}` shape used in-tree (anything else falls back to short
//! printable-ASCII strings).

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic case generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for the `case`-th case of a property.
        pub fn for_case(case: u64) -> Self {
            Self { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5115_2A11_D00D_FEED }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let off = (rng.next_u64() as u128) % span;
                        (self.start as i128 + off as i128) as $ty
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        let off = (rng.next_u64() as u128) % span;
                        (lo as i128 + off as i128) as $ty
                    }
                }
            )+
        };
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        self.start + rng.unit_f64() as $ty * (self.end - self.start)
                    }
                }
            )+
        };
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// String-pattern strategy: supports the `.{a,b}` regex shape (a string
    /// of `a..=b` arbitrary non-newline chars); any other pattern yields
    /// printable-ASCII strings of length 0..=32.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            // Mostly printable ASCII with occasional multi-byte chars so
            // UTF-8 handling gets exercised.
            (0..len)
                .map(|_| {
                    if rng.below(8) == 0 {
                        char::from_u32(0xA1 + rng.next_u64() as u32 % 0x500).unwrap_or('ø')
                    } else {
                        (0x20 + rng.below(0x5F) as u8) as char
                    }
                })
                .collect()
        }
    }

    /// Parse `.{a,b}` into `(a, b)`.
    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (a, b) = body.split_once(',')?;
        Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        // Bias toward boundary values now and then: they are
                        // where codecs and arithmetic actually break.
                        match rng.below(16) {
                            0 => <$ty>::MIN,
                            1 => <$ty>::MAX,
                            2 => 0 as $ty,
                            _ => rng.next_u64() as $ty,
                        }
                    }
                }
            )+
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Arbitrary bit patterns: includes infinities, NaNs, subnormals.
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('a')
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of `T`".
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (about 1 in 4 `None`).
    pub struct OptionStrategy<S>(S);

    /// `Some` of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
                    // The case body runs in a closure so prop_assume! can
                    // abandon the *case* (via `return`) even from inside a
                    // loop in the test body.
                    #[allow(clippy::redundant_closure_call)]
                    let __case_held: bool = (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        )+
                        $body
                        true
                    })();
                    let _ = __case_held;
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// The shim has no case-rejection bookkeeping: an assumption failure simply
/// returns out of the per-case closure `proptest!` wraps the body in, so it
/// works at any nesting depth inside a property body (and only there).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return false;
        }
    };
}

pub mod prelude {
    //! The imports property tests conventionally glob in.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in -2.0f32..2.0, c in 1u64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=5).contains(&c));
        }

        #[test]
        fn flat_map_chains(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn string_pattern_respects_len(s in ".{0,16}") {
            prop_assert!(s.chars().count() <= 16);
        }

        #[test]
        fn assume_skips_case_even_inside_a_loop(n in 0usize..10) {
            for step in 0..3 {
                // Abandons the whole case (not just this loop iteration)
                // whenever the assumption first fails.
                prop_assume!(n + step < 11);
                prop_assert!(n + step < 11);
            }
        }

        #[test]
        fn tuples_and_options(
            (x, y) in (0u32..7, 0u32..7),
            o in crate::option::of(0i32..3)
        ) {
            prop_assert!(x < 7 && y < 7);
            if let Some(v) = o {
                prop_assert!((0..3).contains(&v));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        let s = crate::collection::vec(0u64..1000, 0..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
