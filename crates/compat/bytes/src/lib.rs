//! Offline shim for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] surface `lipiz-mpi`'s wire codec uses:
//! little-endian primitive get/put on `&[u8]` cursors and `Vec<u8>` sinks.

macro_rules! buf_get {
    ($($name:ident -> $ty:ty),+ $(,)?) => {
        $(
            /// Read a little-endian value from the front of the buffer,
            /// advancing past it.
            ///
            /// # Panics
            /// Panics if fewer than `size_of` bytes remain (callers are
            /// expected to check [`Buf::remaining`] first, as upstream does).
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_le_bytes(raw)
            }
        )+
    };
}

/// Read side: a byte cursor that can be advanced.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    buf_get! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! buf_put {
    ($($name:ident($ty:ty)),+ $(,)?) => {
        $(
            /// Append a little-endian value.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX);
        buf.put_i32_le(-5);
        buf.put_i64_le(i64::MIN);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX);
        assert_eq!(cur.get_i32_le(), -5);
        assert_eq!(cur.get_i64_le(), i64::MIN);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.get_u8(), 3);
    }
}
