//! Offline shim for the `parking_lot` crate, backed by `std::sync`.
//!
//! Mirrors the parking_lot API shape the workspace uses: `Mutex::lock`
//! returns the guard directly (a poisoned lock panics, matching
//! parking_lot's no-poisoning semantics for code that never unwinds with
//! the lock held), and `Condvar::wait`/`wait_until` take the guard by
//! `&mut` instead of by value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// Mutual exclusion primitive (see [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`]/[`Condvar::wait_until`] while ownership is lent to the
/// std condvar.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard lent to condvar")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard lent to condvar")
    }
}

/// Reader-writer lock (see [`std::sync::RwLock`]).
///
/// Like [`Mutex`], poisoning is swallowed to match parking_lot's
/// no-poisoning semantics.
#[derive(Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of a timed wait: did the deadline pass?
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline expired.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`Mutex`] (see [`std::sync::Condvar`]).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard lent to condvar");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard lent to condvar");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_and_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (9, 9));
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
