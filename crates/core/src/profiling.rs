//! Routine-level profiling (Table IV / Fig. 4 instrumentation).
//!
//! The paper profiles four routines: *gather* (neighbor exchange), *train*
//! (gradient steps), *update genomes* (fitness evaluation + replacement)
//! and *mutate* (hyperparameter mutation). Every driver threads a
//! [`Profiler`] through the cell engine so the same instrumentation powers
//! the single-core and distributed columns of Table IV.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The profiled routines, in the paper's Table IV order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Routine {
    /// Neighbor-center exchange (MPI allgather in the distributed version).
    Gather,
    /// Adversarial gradient steps.
    Train,
    /// Fitness evaluation, center replacement, mixture evolution.
    UpdateGenomes,
    /// Hyperparameter / loss mutation.
    Mutate,
    /// Everything else (setup, scoring, reporting).
    Other,
}

impl Routine {
    /// All routines in display order.
    pub const ALL: [Routine; 5] = [
        Routine::Gather,
        Routine::Train,
        Routine::UpdateGenomes,
        Routine::Mutate,
        Routine::Other,
    ];

    /// Table IV row label.
    pub fn name(&self) -> &'static str {
        match self {
            Routine::Gather => "gather",
            Routine::Train => "train",
            Routine::UpdateGenomes => "update genomes",
            Routine::Mutate => "mutate",
            Routine::Other => "other",
        }
    }

    fn index(&self) -> usize {
        match self {
            Routine::Gather => 0,
            Routine::Train => 1,
            Routine::UpdateGenomes => 2,
            Routine::Mutate => 3,
            Routine::Other => 4,
        }
    }
}

/// Accumulated wall time and call counts per routine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profiler {
    acc: [Duration; 5],
    calls: [u64; 5],
}

impl Profiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `routine`.
    pub fn time<R>(&mut self, routine: Routine, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(routine, start.elapsed());
        out
    }

    /// Record an externally measured duration.
    pub fn record(&mut self, routine: Routine, d: Duration) {
        let i = routine.index();
        self.acc[i] += d;
        self.calls[i] += 1;
    }

    /// Total accumulated time for a routine.
    pub fn total(&self, routine: Routine) -> Duration {
        self.acc[routine.index()]
    }

    /// Number of recorded calls for a routine.
    pub fn calls(&self, routine: Routine) -> u64 {
        self.calls[routine.index()]
    }

    /// Merge another profiler into this one (summing; used when combining
    /// per-cell profilers in the sequential driver).
    pub fn merge(&mut self, other: &Profiler) {
        for i in 0..5 {
            self.acc[i] += other.acc[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Keep the *maximum* per routine instead of the sum — the right
    /// combination for concurrent ranks, where wall time is dominated by
    /// the slowest rank.
    pub fn merge_max(&mut self, other: &Profiler) {
        for i in 0..5 {
            self.acc[i] = self.acc[i].max(other.acc[i]);
            self.calls[i] = self.calls[i].max(other.calls[i]);
        }
    }

    /// Snapshot into a serializable report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            rows: Routine::ALL
                .iter()
                .map(|r| ProfileRow {
                    routine: r.name().to_string(),
                    seconds: self.total(*r).as_secs_f64(),
                    calls: self.calls(*r),
                })
                .collect(),
        }
    }
}

/// One row of the profile report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Routine label.
    pub routine: String,
    /// Accumulated seconds.
    pub seconds: f64,
    /// Call count.
    pub calls: u64,
}

/// Serializable profile summary (the data behind Table IV / Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Rows in [`Routine::ALL`] order.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Seconds recorded for a routine by name; 0 if absent.
    pub fn seconds(&self, routine: Routine) -> f64 {
        self.rows.iter().find(|r| r.routine == routine.name()).map_or(0.0, |r| r.seconds)
    }

    /// Sum of all routine times.
    pub fn total_seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_counts() {
        let mut p = Profiler::new();
        let v = p.time(Routine::Train, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(p.total(Routine::Train) >= Duration::from_millis(4));
        assert_eq!(p.calls(Routine::Train), 1);
        assert_eq!(p.calls(Routine::Gather), 0);
    }

    #[test]
    fn record_and_merge_sum() {
        let mut a = Profiler::new();
        a.record(Routine::Gather, Duration::from_millis(10));
        let mut b = Profiler::new();
        b.record(Routine::Gather, Duration::from_millis(5));
        b.record(Routine::Mutate, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.total(Routine::Gather), Duration::from_millis(15));
        assert_eq!(a.total(Routine::Mutate), Duration::from_millis(1));
        assert_eq!(a.calls(Routine::Gather), 2);
    }

    #[test]
    fn merge_max_keeps_slowest() {
        let mut a = Profiler::new();
        a.record(Routine::Train, Duration::from_millis(30));
        let mut b = Profiler::new();
        b.record(Routine::Train, Duration::from_millis(50));
        a.merge_max(&b);
        assert_eq!(a.total(Routine::Train), Duration::from_millis(50));
    }

    #[test]
    fn report_round_trip() {
        let mut p = Profiler::new();
        p.record(Routine::UpdateGenomes, Duration::from_millis(20));
        let report = p.report();
        assert!((report.seconds(Routine::UpdateGenomes) - 0.02).abs() < 1e-6);
        assert_eq!(report.seconds(Routine::Train), 0.0);
        assert!((report.total_seconds() - 0.02).abs() < 1e-6);
        assert_eq!(report.rows.len(), 5);
    }

    #[test]
    fn routine_names_match_table4() {
        assert_eq!(Routine::Gather.name(), "gather");
        assert_eq!(Routine::Train.name(), "train");
        assert_eq!(Routine::UpdateGenomes.name(), "update genomes");
        assert_eq!(Routine::Mutate.name(), "mutate");
    }
}
