//! Model persistence: save/load trained ensembles.
//!
//! The paper motivates the speedup with "especially when new trainings are
//! needed" — which implies trained models get reused. This module stores an
//! [`EnsembleModel`] in a small, versioned, self-describing binary format
//! (`.lpz`), so a training run's winner can be reloaded for sampling
//! without retraining.

use crate::mixture::{EnsembleModel, MixtureWeights};
use lipiz_nn::{Activation, NetworkConfig};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LPZ1";
const FORMAT_VERSION: u32 = 1;

/// Errors from loading a persisted model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an `.lpz` file or corrupted header.
    BadMagic,
    /// File format version newer than this library understands.
    UnsupportedVersion(u32),
    /// Structurally invalid contents (e.g. genome length mismatch).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic => write!(f, "not a lipizzaner model file"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32(r: &mut impl Read) -> Result<f32, PersistError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

/// Save an ensemble to `path` (atomic-ish: write then flush).
pub fn save_ensemble(path: &Path, model: &EnsembleModel) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, FORMAT_VERSION)?;
    // Network config (activation is fixed tanh per Table I; stored as id
    // for forward compatibility).
    write_u32(&mut w, model.network.latent_dim as u32)?;
    write_u32(&mut w, model.network.hidden_layers as u32)?;
    write_u32(&mut w, model.network.hidden_units as u32)?;
    write_u32(&mut w, model.network.data_dim as u32)?;
    write_u32(&mut w, activation_id(model.network.activation))?;
    // Components.
    write_u32(&mut w, model.genomes.len() as u32)?;
    for (genome, &weight) in model.genomes.iter().zip(model.weights.weights()) {
        write_f32(&mut w, weight)?;
        write_u32(&mut w, genome.len() as u32)?;
        for &p in genome {
            write_f32(&mut w, p)?;
        }
    }
    w.flush()
}

/// Load an ensemble saved by [`save_ensemble`].
pub fn load_ensemble(path: &Path) -> Result<EnsembleModel, PersistError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let latent_dim = read_u32(&mut r)? as usize;
    let hidden_layers = read_u32(&mut r)? as usize;
    let hidden_units = read_u32(&mut r)? as usize;
    let data_dim = read_u32(&mut r)? as usize;
    let activation =
        activation_from_id(read_u32(&mut r)?).ok_or(PersistError::Corrupt("activation id"))?;
    let network =
        NetworkConfig { latent_dim, hidden_layers, hidden_units, data_dim, activation };

    let components = read_u32(&mut r)? as usize;
    if components == 0 || components > 4096 {
        return Err(PersistError::Corrupt("component count"));
    }
    // Validate genome length against the declared topology.
    let dims = network.generator_dims();
    let expected: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
    let mut weights = Vec::with_capacity(components);
    let mut genomes = Vec::with_capacity(components);
    for _ in 0..components {
        weights.push(read_f32(&mut r)?);
        let len = read_u32(&mut r)? as usize;
        if len != expected {
            return Err(PersistError::Corrupt("genome length vs topology"));
        }
        let mut genome = vec![0.0f32; len];
        for g in &mut genome {
            *g = read_f32(&mut r)?;
        }
        genomes.push(genome);
    }
    // Reject trailing garbage.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(EnsembleModel::new(network, genomes, MixtureWeights::from_raw(&weights)))
}

fn activation_id(a: Activation) -> u32 {
    match a {
        Activation::Tanh => 0,
        Activation::Sigmoid => 1,
        Activation::LeakyRelu(_) => 2,
        Activation::Identity => 3,
    }
}

fn activation_from_id(id: u32) -> Option<Activation> {
    match id {
        0 => Some(Activation::Tanh),
        1 => Some(Activation::Sigmoid),
        2 => Some(Activation::LeakyRelu(0.2)),
        3 => Some(Activation::Identity),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipiz_nn::Generator;
    use lipiz_tensor::Rng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lipiz_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn demo_model() -> EnsembleModel {
        let cfg = NetworkConfig::tiny(12);
        let mut rng = Rng64::seed_from(3);
        let genomes: Vec<Vec<f32>> =
            (0..3).map(|_| Generator::new(&cfg, &mut rng).net.genome().to_vec()).collect();
        EnsembleModel::new(cfg, genomes, MixtureWeights::from_raw(&[0.5, 0.3, 0.2]))
    }

    #[test]
    fn save_load_round_trip() {
        let model = demo_model();
        let path = tmp("round_trip.lpz");
        save_ensemble(&path, &model).unwrap();
        let back = load_ensemble(&path).unwrap();
        assert_eq!(back.network, model.network);
        assert_eq!(back.genomes, model.genomes);
        for (a, b) in back.weights.weights().iter().zip(model.weights.weights()) {
            assert!((a - b).abs() < 1e-6);
        }
        // And it samples identically.
        let mut r1 = Rng64::seed_from(9);
        let mut r2 = Rng64::seed_from(9);
        assert_eq!(model.sample(5, &mut r1), back.sample(5, &mut r2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad_magic.lpz");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(load_ensemble(&path), Err(PersistError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let model = demo_model();
        let path = tmp("trunc.lpz");
        save_ensemble(&path, &model).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_ensemble(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let model = demo_model();
        let path = tmp("trailing.lpz");
        save_ensemble(&path, &model).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xAA);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_ensemble(&path), Err(PersistError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let model = demo_model();
        let path = tmp("version.lpz");
        save_ensemble(&path, &model).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99; // bump version field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_ensemble(&path), Err(PersistError::UnsupportedVersion(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn genome_length_mismatch_rejected() {
        let model = demo_model();
        let path = tmp("length.lpz");
        save_ensemble(&path, &model).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Header = 4 magic + 4 version + 5*4 config + 4 count = 32 bytes;
        // the first component's genome length field sits at offset 36.
        bytes[36] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_ensemble(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
