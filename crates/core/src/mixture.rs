//! Mixture ensembles and (1+1)-ES mixture-weight evolution.
//!
//! A cell's generative model is not a single network but a *mixture* of the
//! sub-population generators: to sample, pick generator `i` with probability
//! `w_i`. Lipizzaner evolves `w` with a (1+1)-ES using Gaussian mutation
//! (Table I: mixture mutation scale 0.01), accepting a mutant that improves
//! the ensemble's quality score.

use lipiz_nn::{Generator, NetworkConfig};
use lipiz_tensor::{Matrix, Rng64};

/// Normalized mixture weights over a sub-population.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureWeights {
    w: Vec<f32>,
}

impl MixtureWeights {
    /// Uniform weights over `n` generators.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "mixture over zero generators");
        Self { w: vec![1.0 / n as f32; n] }
    }

    /// Build from raw weights (clamped non-negative, renormalized).
    pub fn from_raw(raw: &[f32]) -> Self {
        assert!(!raw.is_empty(), "mixture over zero generators");
        let mut w: Vec<f32> = raw.iter().map(|&v| v.max(0.0)).collect();
        let sum: f32 = w.iter().sum();
        if sum <= f32::EPSILON {
            return Self::uniform(raw.len());
        }
        w.iter_mut().for_each(|v| *v /= sum);
        Self { w }
    }

    /// Rebuild from weights that already sum to 1 — the wire-transfer path.
    ///
    /// Unlike [`MixtureWeights::from_raw`] this performs **no**
    /// renormalization: the division would perturb the low bits and break
    /// the byte-identity between a master reassembling gathered slave
    /// ensembles and the slave's own [`EnsembleModel`].
    ///
    /// # Panics
    /// Panics if `w` is empty; debug-asserts the unit sum.
    pub fn from_normalized(w: &[f32]) -> Self {
        assert!(!w.is_empty(), "mixture over zero generators");
        debug_assert!(
            (w.iter().sum::<f32>() - 1.0).abs() < 1e-3,
            "from_normalized requires unit-sum weights"
        );
        Self { w: w.to_vec() }
    }

    /// The weights (sum to 1).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Gaussian-mutated copy: `w'_i = max(0, w_i + N(0, sigma))`,
    /// renormalized (Table I: sigma = 0.01).
    pub fn mutate(&self, sigma: f32, rng: &mut Rng64) -> Self {
        let mut out = Self::uniform(self.w.len());
        self.mutate_into(sigma, rng, &mut out);
        out
    }

    /// [`MixtureWeights::mutate`] into a recycled instance — identical
    /// draws and identical clamp/renormalize arithmetic, zero allocations
    /// once `out` has capacity.
    pub fn mutate_into(&self, sigma: f32, rng: &mut Rng64, out: &mut MixtureWeights) {
        out.w.clear();
        out.w.extend(self.w.iter().map(|&v| (v + rng.normal(0.0, sigma)).max(0.0)));
        let sum: f32 = out.w.iter().sum();
        if sum <= f32::EPSILON {
            let n = out.w.len();
            out.w.iter_mut().for_each(|v| *v = 1.0 / n as f32);
        } else {
            out.w.iter_mut().for_each(|v| *v /= sum);
        }
    }

    /// Draw a component index according to the weights.
    pub fn sample_component(&self, rng: &mut Rng64) -> usize {
        let u = rng.uniform(0.0, 1.0);
        let mut acc = 0.0f32;
        for (i, &w) in self.w.iter().enumerate() {
            acc += w;
            if u < acc {
                return i;
            }
        }
        self.w.len() - 1
    }

    /// One (1+1)-ES step: mutate, score, keep the better (lower score).
    /// Returns `true` if the mutant was accepted.
    pub fn es_step(
        &mut self,
        sigma: f32,
        rng: &mut Rng64,
        score: impl FnMut(&MixtureWeights) -> f64,
    ) -> bool {
        let mut scratch = MixtureWeights::uniform(self.w.len());
        self.es_step_with(sigma, rng, score, &mut scratch)
    }

    /// [`MixtureWeights::es_step`] with a recycled candidate buffer — the
    /// zero-allocation path of the per-iteration mixture evolution. An
    /// accepted mutant is swapped in (no copy, no allocation).
    pub fn es_step_with(
        &mut self,
        sigma: f32,
        rng: &mut Rng64,
        mut score: impl FnMut(&MixtureWeights) -> f64,
        scratch: &mut MixtureWeights,
    ) -> bool {
        self.mutate_into(sigma, rng, scratch);
        let current_score = score(self);
        let mutant_score = score(scratch);
        if mutant_score < current_score {
            std::mem::swap(&mut self.w, &mut scratch.w);
            true
        } else {
            false
        }
    }
}

/// A portable mixture-of-generators model — the artifact a finished
/// training run hands back (§II-B: "the generative model returned is the
/// one defined by the sub-population with the highest quality").
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleModel {
    /// Network topology of every component generator.
    pub network: NetworkConfig,
    /// Component generator genomes.
    pub genomes: Vec<Vec<f32>>,
    /// Mixture weights (aligned with `genomes`).
    pub weights: MixtureWeights,
}

impl EnsembleModel {
    /// Build; validates alignment.
    ///
    /// # Panics
    /// Panics if `genomes.len() != weights.len()` or no components.
    pub fn new(
        network: NetworkConfig,
        genomes: Vec<Vec<f32>>,
        weights: MixtureWeights,
    ) -> Self {
        assert!(!genomes.is_empty(), "ensemble needs at least one generator");
        assert_eq!(genomes.len(), weights.len(), "weights/genomes misaligned");
        Self { network, genomes, weights }
    }

    /// Number of component generators.
    pub fn components(&self) -> usize {
        self.genomes.len()
    }

    /// Sample `n` images from the mixture: for each sample, draw a
    /// component by weight, then a latent vector, then generate.
    pub fn sample(&self, n: usize, rng: &mut Rng64) -> Matrix {
        // Materialize the component generators once.
        let mut proto_rng = Rng64::seed_from(0);
        let mut gens: Vec<Generator> = Vec::with_capacity(self.genomes.len());
        for g in &self.genomes {
            let mut gen = Generator::new(&self.network, &mut proto_rng);
            gen.net.load_genome(g);
            gens.push(gen);
        }
        // Group draws by component so each forward pass is batched.
        let mut assignment: Vec<usize> = Vec::with_capacity(n);
        for _ in 0..n {
            assignment.push(self.weights.sample_component(rng));
        }
        let mut out = Matrix::zeros(n, self.network.data_dim);
        for (c, gen) in gens.iter().enumerate() {
            let rows: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if rows.is_empty() {
                continue;
            }
            let z = lipiz_nn::gan::latent_batch(rng, rows.len(), self.network.latent_dim);
            let images = gen.generate(&z);
            for (bi, &row) in rows.iter().enumerate() {
                out.row_mut(row).copy_from_slice(images.row(bi));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sum_to_one() {
        let w = MixtureWeights::uniform(5);
        let sum: f32 = w.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(w.weights().iter().all(|&v| (v - 0.2).abs() < 1e-6));
    }

    #[test]
    fn from_raw_clamps_and_normalizes() {
        let w = MixtureWeights::from_raw(&[2.0, -1.0, 2.0]);
        assert_eq!(w.weights(), &[0.5, 0.0, 0.5]);
        // All-zero raw falls back to uniform.
        let w = MixtureWeights::from_raw(&[0.0, 0.0]);
        assert_eq!(w.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn from_normalized_is_bit_exact() {
        // The wire path must reproduce weights bit-for-bit, including ones
        // whose f32 sum is not exactly 1.0.
        let mut rng = Rng64::seed_from(11);
        let original = MixtureWeights::uniform(5).mutate(0.01, &mut rng);
        let back = MixtureWeights::from_normalized(original.weights());
        assert_eq!(back, original);
        assert_eq!(
            back.weights().iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            original.weights().iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mutation_stays_normalized() {
        let mut rng = Rng64::seed_from(1);
        let w = MixtureWeights::uniform(4);
        for _ in 0..50 {
            let m = w.mutate(0.01, &mut rng);
            let sum: f32 = m.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(m.weights().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let mut rng = Rng64::seed_from(2);
        let w = MixtureWeights::from_raw(&[0.8, 0.2]);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[w.sample_component(&mut rng)] += 1;
        }
        let share0 = counts[0] as f64 / 2000.0;
        assert!((share0 - 0.8).abs() < 0.05, "share {share0}");
    }

    #[test]
    fn degenerate_weight_always_sampled() {
        let mut rng = Rng64::seed_from(3);
        let w = MixtureWeights::from_raw(&[0.0, 1.0, 0.0]);
        for _ in 0..100 {
            assert_eq!(w.sample_component(&mut rng), 1);
        }
    }

    #[test]
    fn es_step_accepts_only_improvements() {
        let mut rng = Rng64::seed_from(4);
        let mut w = MixtureWeights::uniform(3);
        // Score: distance of w[0] from 1 => optimum is all mass on 0.
        let score = |m: &MixtureWeights| (1.0 - m.weights()[0]) as f64;
        let before = score(&w);
        let mut accepted = 0;
        for _ in 0..200 {
            if w.es_step(0.05, &mut rng, score) {
                accepted += 1;
            }
        }
        let after = score(&w);
        assert!(after < before, "ES failed to improve: {before} -> {after}");
        assert!(accepted > 0, "no mutant ever accepted");
        assert!(w.weights()[0] > 0.6, "w0 = {}", w.weights()[0]);
    }

    #[test]
    fn ensemble_samples_have_data_shape() {
        let mut rng = Rng64::seed_from(5);
        let cfg = NetworkConfig::tiny(12);
        let g1 = Generator::new(&cfg, &mut rng).net.genome().to_vec();
        let g2 = Generator::new(&cfg, &mut rng).net.genome().to_vec();
        let model = EnsembleModel::new(cfg, vec![g1, g2], MixtureWeights::uniform(2));
        let samples = model.sample(9, &mut rng);
        assert_eq!(samples.shape(), (9, 12));
        assert!(samples.all_finite());
        assert!(samples.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn ensemble_with_one_dead_component_still_samples() {
        let mut rng = Rng64::seed_from(6);
        let cfg = NetworkConfig::tiny(8);
        let g1 = Generator::new(&cfg, &mut rng).net.genome().to_vec();
        let g2 = Generator::new(&cfg, &mut rng).net.genome().to_vec();
        let model =
            EnsembleModel::new(cfg, vec![g1, g2], MixtureWeights::from_raw(&[1.0, 0.0]));
        let samples = model.sample(5, &mut rng);
        assert_eq!(samples.rows(), 5);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_ensemble_panics() {
        let cfg = NetworkConfig::tiny(8);
        EnsembleModel::new(cfg, vec![vec![0.0; 4]], MixtureWeights::uniform(2));
    }
}
