//! Toroidal grid and overlapping neighborhoods (§II-B, Fig. 1).
//!
//! This is the paper's new `grid` class: it defines each cell's
//! neighborhood, supports *dynamic* reconfiguration (a feature the original
//! Lipizzaner lacked, §III-C), and is deliberately decoupled from the
//! communication layer so different comm backends can drive it.

use serde::{Deserialize, Serialize};

/// Neighborhood shape on the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborhoodPattern {
    /// Center + North/South/West/East — the paper's five-cell neighborhood
    /// (called "Moore" in the paper, von Neumann r=1 in the CA literature).
    Cross5,
    /// Center + all 8 surrounding cells (Moore r=1), for the neighborhood
    /// ablation.
    Moore9,
    /// Center only: no migration — the "isolated islands" degenerate case.
    Isolated,
}

impl NeighborhoodPattern {
    /// Relative `(dr, dc)` offsets of the neighbors (center excluded), in
    /// the deterministic order used everywhere (N, S, W, E, then diagonals).
    pub fn offsets(&self) -> &'static [(isize, isize)] {
        match self {
            NeighborhoodPattern::Cross5 => &[(-1, 0), (1, 0), (0, -1), (0, 1)],
            NeighborhoodPattern::Moore9 => {
                &[(-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1)]
            }
            NeighborhoodPattern::Isolated => &[],
        }
    }

    /// Effective sub-population size `s` on an `rows × cols` torus
    /// (duplicate wrap-around neighbors collapse on small grids, but each
    /// *slot* still exists — this returns the slot count, center included).
    pub fn neighborhood_size(&self, _rows: usize, _cols: usize) -> usize {
        1 + self.offsets().len()
    }
}

/// A toroidal cell grid with a reconfigurable neighborhood pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    rows: usize,
    cols: usize,
    pattern: NeighborhoodPattern,
}

impl Grid {
    /// Build a `rows × cols` toroidal grid.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, pattern: NeighborhoodPattern) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Self { rows, cols, pattern }
    }

    /// Square grid with the paper's five-cell pattern.
    pub fn square(m: usize) -> Self {
        Self::new(m, m, NeighborhoodPattern::Cross5)
    }

    /// From a [`crate::config::GridConfig`].
    pub fn from_config(cfg: &crate::config::GridConfig) -> Self {
        Self::new(cfg.rows, cfg.cols, cfg.pattern)
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Active neighborhood pattern.
    pub fn pattern(&self) -> NeighborhoodPattern {
        self.pattern
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinates of cell `idx` (row-major).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.cell_count(), "cell index out of grid");
        (idx / self.cols, idx % self.cols)
    }

    /// Cell index at `(row, col)` with toroidal wrap-around.
    pub fn index(&self, row: isize, col: isize) -> usize {
        let r = row.rem_euclid(self.rows as isize) as usize;
        let c = col.rem_euclid(self.cols as isize) as usize;
        r * self.cols + c
    }

    /// Neighbor cell indices of `idx` (center excluded), in pattern order.
    /// Wrap-around duplicates are preserved so the sub-population slot
    /// layout is grid-size independent.
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let (r, c) = self.coords(idx);
        self.pattern
            .offsets()
            .iter()
            .map(|&(dr, dc)| self.index(r as isize + dr, c as isize + dc))
            .collect()
    }

    /// Full neighborhood of `idx`: center first, then neighbors.
    pub fn neighborhood(&self, idx: usize) -> Vec<usize> {
        let mut n = Vec::with_capacity(1 + self.pattern.offsets().len());
        n.push(idx);
        n.extend(self.neighbors(idx));
        n
    }

    /// Cells whose neighborhood *contains* `idx` (the overlap set of Fig. 1:
    /// updates to `idx`'s center propagate to exactly these cells on the
    /// next gather).
    pub fn overlapping(&self, idx: usize) -> Vec<usize> {
        (0..self.cell_count())
            .filter(|&other| self.neighborhood(other).contains(&idx))
            .collect()
    }

    /// Dynamically resize the grid — the §III-C feature. Cell indices are
    /// remapped row-major; callers re-assign engines to the new layout.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn regrid(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
    }

    /// Dynamically change the neighborhood pattern — also §III-C
    /// ("dynamically changing the neighborhood allows exploring different
    /// patterns for training and learning").
    pub fn set_pattern(&mut self, pattern: NeighborhoodPattern) {
        self.pattern = pattern;
    }

    /// ASCII rendering of a neighborhood (used by the `repro fig1` target).
    pub fn render_neighborhood(&self, idx: usize) -> String {
        let hood = self.neighborhood(idx);
        let mut out = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let i = r * self.cols + c;
                let ch = if i == idx {
                    'C'
                } else if hood.contains(&i) {
                    'n'
                } else {
                    '.'
                };
                out.push(ch);
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_cell_neighborhood_matches_paper() {
        // Fig. 1: on a 4×4 torus, the neighborhood of (1,1) is itself plus
        // W(1,0), N(0,1), E(1,2), S(2,1).
        let g = Grid::square(4);
        let idx = g.index(1, 1);
        let hood = g.neighborhood(idx);
        assert_eq!(hood.len(), 5);
        assert!(hood.contains(&g.index(0, 1)));
        assert!(hood.contains(&g.index(2, 1)));
        assert!(hood.contains(&g.index(1, 0)));
        assert!(hood.contains(&g.index(1, 2)));
        assert_eq!(hood[0], idx, "center first");
    }

    #[test]
    fn overlap_propagation_matches_figure1() {
        // Fig. 1 narrative: updates in N1,0 and N1,2 are visible to N1,1.
        let g = Grid::square(4);
        let n10 = g.index(1, 0);
        let n11 = g.index(1, 1);
        let n12 = g.index(1, 2);
        assert!(g.overlapping(n10).contains(&n11));
        assert!(g.overlapping(n12).contains(&n11));
        // And on the torus, N1,3's update reaches N1,0 (wrap).
        let n13 = g.index(1, 3);
        assert!(g.overlapping(n13).contains(&n10));
    }

    #[test]
    fn every_cell_overlaps_itself_and_four_others_cross5() {
        let g = Grid::square(4);
        for idx in 0..g.cell_count() {
            let overlaps = g.overlapping(idx);
            assert_eq!(overlaps.len(), 5, "cell {idx}: {overlaps:?}");
            assert!(overlaps.contains(&idx));
        }
    }

    #[test]
    fn wraparound_duplicates_preserved_on_2x2() {
        // On 2×2, N and S are the same physical cell; slots must still be 4.
        let g = Grid::square(2);
        let n = g.neighbors(0);
        assert_eq!(n.len(), 4);
        assert_eq!(n[0], n[1], "N == S on a 2-row torus");
        assert_eq!(n[2], n[3], "W == E on a 2-col torus");
    }

    #[test]
    fn moore9_has_nine_slots() {
        let g = Grid::new(4, 4, NeighborhoodPattern::Moore9);
        assert_eq!(g.neighborhood(5).len(), 9);
        assert_eq!(NeighborhoodPattern::Moore9.neighborhood_size(4, 4), 9);
    }

    #[test]
    fn isolated_has_no_neighbors() {
        let g = Grid::new(3, 3, NeighborhoodPattern::Isolated);
        assert!(g.neighbors(4).is_empty());
        assert_eq!(g.neighborhood(4), vec![4]);
        assert_eq!(g.overlapping(4), vec![4]);
    }

    #[test]
    fn regrid_changes_shape() {
        let mut g = Grid::square(2);
        assert_eq!(g.cell_count(), 4);
        g.regrid(3, 5);
        assert_eq!(g.cell_count(), 15);
        assert_eq!(g.coords(14), (2, 4));
        g.set_pattern(NeighborhoodPattern::Moore9);
        assert_eq!(g.neighborhood(0).len(), 9);
    }

    #[test]
    fn rectangular_grids_work() {
        let g = Grid::new(2, 5, NeighborhoodPattern::Cross5);
        for idx in 0..g.cell_count() {
            assert_eq!(g.neighbors(idx).len(), 4);
        }
        // East of (0,4) wraps to (0,0).
        assert_eq!(g.index(0, 5), 0);
    }

    #[test]
    fn one_by_n_grid_collapses_vertical_neighbors() {
        // 1×4 torus, Cross5: the N and S slots both wrap to the cell
        // itself, W/E wrap along the row — and every slot still exists, so
        // the sub-population layout matches larger grids.
        let g = Grid::new(1, 4, NeighborhoodPattern::Cross5);
        for idx in 0..4 {
            let n = g.neighbors(idx);
            assert_eq!(n.len(), 4, "slot count is shape-independent");
            assert_eq!(n[0], idx, "N wraps to self on one row");
            assert_eq!(n[1], idx, "S wraps to self on one row");
            assert_eq!(n[2], (idx + 3) % 4, "W");
            assert_eq!(n[3], (idx + 1) % 4, "E");
        }
    }

    #[test]
    fn two_by_five_neighborhoods_are_consistent() {
        let g = Grid::new(2, 5, NeighborhoodPattern::Cross5);
        for idx in 0..g.cell_count() {
            let n = g.neighbors(idx);
            assert_eq!(n.len(), 4);
            // Two rows: N and S land on the same physical cell.
            assert_eq!(n[0], n[1], "N == S on a 2-row torus");
            // Neighbor relations are symmetric on the torus: if b is in
            // a's neighborhood, a is in b's.
            for &b in &n {
                assert!(g.neighbors(b).contains(&idx), "asymmetric {idx}<->{b}");
            }
        }
        // Overlap bookkeeping: each cell's neighborhood holds 4 *distinct*
        // cells on 2 rows (center, N==S, W, E), so the overlap sets sum to
        // 4 incidences per cell.
        let total: usize = (0..g.cell_count()).map(|i| g.overlapping(i).len()).sum();
        assert_eq!(total, g.cell_count() * 4);
    }

    #[test]
    fn single_cell_grid_all_slots_point_home() {
        let g = Grid::new(1, 1, NeighborhoodPattern::Cross5);
        assert_eq!(g.neighbors(0), vec![0, 0, 0, 0]);
        assert_eq!(g.neighborhood(0), vec![0, 0, 0, 0, 0]);
        assert_eq!(g.overlapping(0), vec![0]);
        let m = Grid::new(1, 1, NeighborhoodPattern::Moore9);
        assert_eq!(m.neighbors(0), vec![0; 8]);
    }

    #[test]
    fn moore9_on_single_row_wraps_diagonals_into_the_row() {
        // On a 1×3 torus every "diagonal" collapses into the row, so the
        // 8 neighbor slots only ever reference the 3 physical cells.
        let g = Grid::new(1, 3, NeighborhoodPattern::Moore9);
        for idx in 0..3 {
            let n = g.neighbors(idx);
            assert_eq!(n.len(), 8);
            assert!(n.iter().all(|&c| c < 3));
            // N/S collapse to self; NW/SW collapse to W; NE/SE to E.
            assert_eq!(n[0], idx);
            assert_eq!(n[1], idx);
            assert_eq!(n[4], n[2], "NW == W on one row");
            assert_eq!(n[6], n[2], "SW == W on one row");
            assert_eq!(n[5], n[3], "NE == E on one row");
            assert_eq!(n[7], n[3], "SE == E on one row");
        }
    }

    #[test]
    fn regrid_to_degenerate_shapes_keeps_invariants() {
        let mut g = Grid::square(3);
        for (rows, cols) in [(1, 9), (9, 1), (2, 5), (1, 1)] {
            g.regrid(rows, cols);
            assert_eq!(g.cell_count(), rows * cols);
            for idx in 0..g.cell_count() {
                assert_eq!(g.neighbors(idx).len(), 4);
                let (r, c) = g.coords(idx);
                assert_eq!(g.index(r as isize, c as isize), idx);
            }
        }
    }

    #[test]
    fn render_marks_center_and_neighbors() {
        let g = Grid::square(4);
        let art = g.render_neighborhood(g.index(1, 1));
        assert_eq!(art.matches('C').count(), 1);
        assert_eq!(art.matches('n').count(), 4);
        assert_eq!(art.matches('.').count(), 11);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_rejected() {
        Grid::new(0, 1, NeighborhoodPattern::Cross5);
    }
}
