//! Training configuration (Table I of the paper).

use lipiz_nn::{Activation, GanLoss, NetworkConfig};
use serde::{Deserialize, Serialize};

/// Neighborhood shape; re-exported through [`crate::topology`].
pub use crate::topology::NeighborhoodPattern;

/// Grid dimensions and neighborhood pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Neighborhood pattern (paper: five-cell, s = 5).
    pub pattern: NeighborhoodPattern,
}

impl GridConfig {
    /// Square `m × m` grid with the paper's five-cell neighborhood.
    pub fn square(m: usize) -> Self {
        Self { rows: m, cols: m, pattern: NeighborhoodPattern::Cross5 }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// Which message-passing backend carries the distributed runtime's traffic.
///
/// The training semantics are transport-independent (the runtime proves the
/// two backends byte-identical), so this lives beside — not inside — the
/// [`TrainConfig`] that travels over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransportKind {
    /// Every rank is a thread of one OS process (in-memory mailboxes).
    #[default]
    InProcess,
    /// Every rank is an OS process; envelopes travel over TCP sockets.
    Tcp,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in-process" | "inprocess" | "threads" => Ok(TransportKind::InProcess),
            "tcp" | "sockets" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport '{other}' (expected in-process|tcp)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::InProcess => write!(f, "in-process"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

/// When a training iteration sees its neighbors' snapshots.
///
/// Unlike [`TransportKind`] this *does* change training semantics, so it
/// rides inside the [`TrainConfig`] that travels over the wire: every rank
/// (and every driver) derives the same exchange behavior from the config
/// alone, which is what keeps each mode's determinism contract intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// Iteration `i` trains against generation-`i` neighbor snapshots —
    /// the exchange completes before compute starts. Byte-identical to the
    /// historical behavior.
    #[default]
    Sync,
    /// Iteration `i` (for `i ≥ 1`) trains against generation-`i-1`
    /// snapshots while the generation-`i` exchange completes in the
    /// background. The staleness bound is *fixed* at exactly 1 (iteration 0
    /// bootstraps synchronously), so the result is still a pure function of
    /// `(seed, config)` — just a different one than sync mode's.
    Async,
}

impl ExchangeMode {
    /// Is the background-exchange pipeline active?
    pub fn is_async(&self) -> bool {
        matches!(self, ExchangeMode::Async)
    }
}

impl std::str::FromStr for ExchangeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sync" | "synchronous" => Ok(ExchangeMode::Sync),
            "async" | "asynchronous" | "overlap" => Ok(ExchangeMode::Async),
            other => Err(format!("unknown exchange mode '{other}' (expected sync|async)")),
        }
    }
}

impl std::fmt::Display for ExchangeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeMode::Sync => write!(f, "sync"),
            ExchangeMode::Async => write!(f, "async"),
        }
    }
}

/// How the trainer picks adversaries from the sub-population each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryStrategy {
    /// Tournament selection of one adversary per batch (Table I:
    /// tournament size 2).
    Tournament(usize),
    /// Train against every sub-population member each batch (the most
    /// expensive, fully pairwise variant; exposed for ablation).
    All,
}

/// Generator loss handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossMode {
    /// Fixed loss every step — plain Lipizzaner (BCE ⇒ heuristic G loss).
    Fixed(WireGanLoss),
    /// Mustangs: mutate the loss per iteration over the three-variant set.
    Mutate,
}

/// Serializable mirror of [`GanLoss`] (the nn crate stays serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireGanLoss {
    /// Saturating minimax loss.
    Minimax,
    /// Non-saturating heuristic loss.
    Heuristic,
    /// Least-squares loss.
    LeastSquares,
}

impl From<WireGanLoss> for GanLoss {
    fn from(w: WireGanLoss) -> Self {
        match w {
            WireGanLoss::Minimax => GanLoss::Minimax,
            WireGanLoss::Heuristic => GanLoss::Heuristic,
            WireGanLoss::LeastSquares => GanLoss::LeastSquares,
        }
    }
}

impl From<GanLoss> for WireGanLoss {
    fn from(g: GanLoss) -> Self {
        match g {
            GanLoss::Minimax => WireGanLoss::Minimax,
            GanLoss::Heuristic => WireGanLoss::Heuristic,
            GanLoss::LeastSquares => WireGanLoss::LeastSquares,
        }
    }
}

/// Coevolutionary settings (Table I, middle block).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoevolutionConfig {
    /// Training iterations (Table I: 200).
    pub iterations: usize,
    /// Individuals per cell before neighbor imports (Table I: 1).
    pub population_per_cell: usize,
    /// Tournament size (Table I: 2).
    pub tournament_size: usize,
    /// Mixture mutation scale for the (1+1)-ES (Table I: 0.01).
    pub mixture_sigma: f32,
    /// Evolve mixture weights every this many iterations (0 = never).
    pub mixture_every: usize,
    /// Adversary selection strategy for gradient steps.
    pub adversary: AdversaryStrategy,
}

/// Hyperparameter-mutation settings (Table I, "Hyperparameter mutation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationConfig {
    /// Initial Adam learning rate (Table I: 2e-4).
    pub initial_lr: f32,
    /// Gaussian std of the learning-rate mutation (Table I: 1e-4).
    pub rate: f32,
    /// Probability of mutating per iteration (Table I: 0.5).
    pub probability: f64,
    /// Generator loss handling (Lipizzaner fixed vs Mustangs mutation).
    pub loss_mode: LossMode,
}

/// Data/batching settings (Table I, "Training settings").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Mini-batch size (Table I: 100).
    pub batch_size: usize,
    /// Gradient batches per training iteration.
    ///
    /// The paper runs a full pass over the per-cell data each iteration;
    /// this knob lets the benchmark harness scale the workload down while
    /// keeping every per-iteration cost ratio intact.
    pub batches_per_iteration: usize,
    /// Train the discriminator only every `1 + skip_disc_steps`-th batch
    /// (Table I: "Skip N disc. steps 1" ⇒ D trains every batch).
    pub skip_disc_steps: usize,
    /// Number of samples each cell's local dataset holds.
    pub dataset_size: usize,
    /// Seed for dataset synthesis (shared by all ranks so everyone can
    /// rebuild the same data locally).
    pub data_seed: u64,
    /// Rows of the fixed evaluation batch used for fitness.
    pub eval_batch: usize,
    /// Worker threads per cell engine for the intra-rank level of the
    /// paper's two-level parallelism (§III-A). Every matrix product of the
    /// training iteration — forward, backward, and evaluation — fans out to
    /// this many threads; results are bit-identical for every value.
    /// `1` (the default) runs fully inline.
    pub workers_per_cell: usize,
    /// Partition the dataset into per-cell shards instead of replicating it
    /// (the data-dieting setup). Carried in the configuration — not as a
    /// per-host flag — so every rank of a distributed run, including slave
    /// processes on other machines, derives the same data layout from the
    /// wire config alone.
    pub shard_data: bool,
}

/// Serializable mirror of the network topology (Table I, top block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSettings {
    /// Latent dimension (input neurons; Table I: 64).
    pub latent_dim: usize,
    /// Hidden layers (Table I: 2).
    pub hidden_layers: usize,
    /// Neurons per hidden layer (Table I: 256).
    pub hidden_units: usize,
    /// Output neurons / data dimension (Table I: 784).
    pub data_dim: usize,
}

impl NetworkSettings {
    /// Convert to the nn crate's runtime config (tanh activation,
    /// per Table I).
    pub fn to_network_config(self) -> NetworkConfig {
        NetworkConfig {
            latent_dim: self.latent_dim,
            hidden_layers: self.hidden_layers,
            hidden_units: self.hidden_units,
            data_dim: self.data_dim,
            activation: Activation::Tanh,
        }
    }
}

/// Checkpoint/restore settings.
///
/// Checkpointing rides in the training configuration — not as a per-host
/// flag — so every rank of a distributed run derives the same cadence and
/// target directory from the wire config alone (the same reasoning as
/// `shard_data`). On multi-machine runs `dir` must resolve to a shared
/// filesystem path visible to every host.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Commit a checkpoint every this many iterations (`0` = off).
    pub every: usize,
    /// Directory the checkpoints and manifest live in.
    pub dir: Option<String>,
    /// Pause the run after this many iterations, leaving a committed
    /// checkpoint behind — time-budgeted training, and the deterministic
    /// "interrupt at iteration k" lever the resume-equivalence suite uses.
    pub pause_after: Option<usize>,
}

impl CheckpointConfig {
    /// Is periodic checkpointing active?
    pub fn enabled(&self) -> bool {
        self.every > 0 && self.dir.is_some()
    }

    /// Does iteration `iter` (0-based, just completed) commit a checkpoint?
    /// Commits land at the end of iterations `every-1, 2·every-1, …` and at
    /// a configured pause point.
    pub fn commits_after(&self, iter: usize) -> bool {
        if !self.enabled() {
            return false;
        }
        (iter + 1).is_multiple_of(self.every) || self.pause_after == Some(iter + 1)
    }

    /// The iteration count this run actually executes to before stopping:
    /// the configured pause point, or the full run.
    pub fn effective_iterations(&self, total: usize) -> usize {
        self.pause_after.map_or(total, |p| p.min(total))
    }
}

/// Failure-semantics knobs: heartbeat cadence, the stale-substitution
/// bound for graceful grid degradation, and an optional scripted fault
/// plan (deterministic fault injection).
///
/// Like checkpointing, these ride in the training configuration — not in
/// per-host state — so every rank of a distributed run derives the same
/// failure behavior from the wire config alone: the fan-in root arms the
/// same absence windows the victim's own process enforces, and a degraded
/// run stays a pure function of `(seed, plan)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Milliseconds between master heartbeat rounds (`0` = driver default).
    pub heartbeat_interval_ms: u64,
    /// Consecutive missed heartbeat rounds that convict a slave as dead
    /// (`0` = keep the driver's default policy).
    pub heartbeat_misses: usize,
    /// How many consecutive iterations a dead rank's neighbors may train
    /// against its last-known snapshot before the run escalates to
    /// coordinated recovery (`0` = degradation off: any death stalls the
    /// grid until the heartbeat deadline aborts the run).
    pub max_stale_iters: usize,
    /// Scripted fault plan (the `lipiz-mpi` fault grammar, e.g.
    /// `"kill:3@2;delay:1>2:*@4:50"`). `None` = fault-free run.
    pub plan: Option<String>,
}

impl FaultConfig {
    /// Is stale-snapshot degradation armed?
    pub fn degradation_enabled(&self) -> bool {
        self.max_stale_iters > 0
    }
}

/// Run-telemetry settings: the event journal, metrics registry, and
/// summary aggregation described in `lipiz-telemetry`.
///
/// Telemetry is *observational only* — it never touches RNG or training
/// state, so runs with and without it produce byte-identical ensembles.
/// It still rides in the training configuration (not per-host state) so
/// every rank of a distributed run derives the same gate, journal
/// directory, and ring capacity from the wire config alone.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. Off (the default) costs nothing: no ring is
    /// allocated and every record call is a dead branch.
    pub enabled: bool,
    /// Directory per-rank journal files (`<node>.jsonl`) are written to.
    /// On multi-machine runs this must resolve per-host; journals are
    /// merged offline by `lipizzaner trace`.
    pub dir: Option<String>,
    /// Event-ring capacity in records (`0` = the crate default). The ring
    /// never resizes: overflow overwrites the oldest record and ticks a
    /// drop counter.
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    /// Is telemetry recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Complete training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Grid shape.
    pub grid: GridConfig,
    /// Network topology.
    pub network: NetworkSettings,
    /// Coevolutionary settings.
    pub coevolution: CoevolutionConfig,
    /// Hyperparameter mutation settings.
    pub mutation: MutationConfig,
    /// Training/batching settings.
    pub training: TrainingConfig,
    /// Checkpoint/restore settings.
    pub checkpoint: CheckpointConfig,
    /// Failure-semantics settings (heartbeats, degradation, fault plan).
    /// Absent from pre-existing manifests, which load with the defaults.
    pub fault: FaultConfig,
    /// Neighbor-exchange mode (synchronous, or overlapped with compute at a
    /// fixed staleness of 1).
    pub exchange: ExchangeMode,
    /// Run-telemetry settings (event journal + metrics). Observational
    /// only; absent from pre-existing manifests, which load with the
    /// defaults (off).
    pub telemetry: TelemetryConfig,
    /// Master seed; every cell derives its streams from this and its grid
    /// coordinates, which is what makes all three drivers bit-identical.
    pub seed: u64,
}

impl TrainConfig {
    /// The exact Table I configuration (MNIST-scale).
    pub fn paper_table1() -> Self {
        Self {
            grid: GridConfig::square(3),
            network: NetworkSettings {
                latent_dim: 64,
                hidden_layers: 2,
                hidden_units: 256,
                data_dim: 784,
            },
            coevolution: CoevolutionConfig {
                iterations: 200,
                population_per_cell: 1,
                tournament_size: 2,
                mixture_sigma: 0.01,
                mixture_every: 5,
                adversary: AdversaryStrategy::Tournament(2),
            },
            mutation: MutationConfig {
                initial_lr: 2e-4,
                rate: 1e-4,
                probability: 0.5,
                loss_mode: LossMode::Fixed(WireGanLoss::Heuristic),
            },
            training: TrainingConfig {
                batch_size: 100,
                batches_per_iteration: 600,
                skip_disc_steps: 1,
                dataset_size: 60_000,
                data_seed: 0xDA7A,
                eval_batch: 100,
                workers_per_cell: 1,
                shard_data: false,
            },
            checkpoint: CheckpointConfig::default(),
            fault: FaultConfig::default(),
            exchange: ExchangeMode::default(),
            telemetry: TelemetryConfig::default(),
            seed: 1,
        }
    }

    /// A small-but-real configuration for fast tests: tiny networks, tiny
    /// dataset, a couple of iterations. Same algorithm, same code paths.
    pub fn smoke(grid_m: usize) -> Self {
        Self {
            grid: GridConfig::square(grid_m),
            network: NetworkSettings {
                latent_dim: 4,
                hidden_layers: 1,
                hidden_units: 8,
                data_dim: 16,
            },
            coevolution: CoevolutionConfig {
                iterations: 2,
                population_per_cell: 1,
                tournament_size: 2,
                mixture_sigma: 0.01,
                mixture_every: 1,
                adversary: AdversaryStrategy::Tournament(2),
            },
            mutation: MutationConfig {
                initial_lr: 2e-4,
                rate: 1e-4,
                probability: 0.5,
                loss_mode: LossMode::Fixed(WireGanLoss::Heuristic),
            },
            training: TrainingConfig {
                batch_size: 8,
                batches_per_iteration: 2,
                skip_disc_steps: 1,
                dataset_size: 64,
                data_seed: 7,
                eval_batch: 16,
                workers_per_cell: 1,
                shard_data: false,
            },
            checkpoint: CheckpointConfig::default(),
            fault: FaultConfig::default(),
            exchange: ExchangeMode::default(),
            telemetry: TelemetryConfig::default(),
            seed: 3,
        }
    }

    /// Mustangs variant of any config (loss mutation on).
    pub fn with_mustangs(mut self) -> Self {
        self.mutation.loss_mode = LossMode::Mutate;
        self
    }

    /// Same config with `workers` threads per cell engine (min 1). Training
    /// results are bit-identical for every worker count; only wall-clock
    /// changes.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.training.workers_per_cell = workers.max(1);
        self
    }

    /// Same config with per-cell data sharding toggled.
    pub fn with_shards(mut self, shard: bool) -> Self {
        self.training.shard_data = shard;
        self
    }

    /// Same config with periodic checkpointing into `dir` every `every`
    /// iterations (`every` is clamped to ≥ 1).
    pub fn with_checkpoints(mut self, dir: impl Into<String>, every: usize) -> Self {
        self.checkpoint.every = every.max(1);
        self.checkpoint.dir = Some(dir.into());
        self
    }

    /// Same config pausing after `k` iterations with a committed checkpoint
    /// (see [`CheckpointConfig::pause_after`]).
    pub fn with_pause_after(mut self, k: usize) -> Self {
        self.checkpoint.pause_after = Some(k);
        self
    }

    /// Same config with a scripted fault plan and a stale-substitution
    /// bound of `max_stale` iterations (clamped to ≥ 1 — a plan with no
    /// degradation budget could never be survived gracefully).
    pub fn with_fault_plan(mut self, spec: impl Into<String>, max_stale: usize) -> Self {
        self.fault.plan = Some(spec.into());
        self.fault.max_stale_iters = max_stale.max(1);
        self
    }

    /// Same config with an explicit heartbeat policy (interval in
    /// milliseconds, consecutive misses before conviction).
    pub fn with_heartbeat(mut self, interval_ms: u64, misses: usize) -> Self {
        self.fault.heartbeat_interval_ms = interval_ms;
        self.fault.heartbeat_misses = misses;
        self
    }

    /// Same config with the given neighbor-exchange mode.
    pub fn with_exchange(mut self, mode: ExchangeMode) -> Self {
        self.exchange = mode;
        self
    }

    /// Same config with telemetry recording on, journaling into `dir`.
    /// `ring_capacity` of `0` keeps the default ring size.
    pub fn with_telemetry(mut self, dir: impl Into<String>, ring_capacity: usize) -> Self {
        self.telemetry.enabled = true;
        self.telemetry.dir = Some(dir.into());
        self.telemetry.ring_capacity = ring_capacity;
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.grid.cells()
    }

    /// Sub-population size `s` implied by the neighborhood pattern.
    pub fn subpopulation_size(&self) -> usize {
        self.grid.pattern.neighborhood_size(self.grid.rows, self.grid.cols)
    }

    /// Deterministic per-cell seed derived from the master seed.
    pub fn cell_seed(&self, cell_index: usize) -> u64 {
        // splitmix-style mixing keeps adjacent cells uncorrelated.
        let x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((cell_index as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let cfg = TrainConfig::paper_table1();
        assert_eq!(cfg.network.latent_dim, 64);
        assert_eq!(cfg.network.hidden_layers, 2);
        assert_eq!(cfg.network.hidden_units, 256);
        assert_eq!(cfg.network.data_dim, 784);
        assert_eq!(cfg.coevolution.iterations, 200);
        assert_eq!(cfg.coevolution.population_per_cell, 1);
        assert_eq!(cfg.coevolution.tournament_size, 2);
        assert!((cfg.coevolution.mixture_sigma - 0.01).abs() < 1e-9);
        assert!((cfg.mutation.initial_lr - 2e-4).abs() < 1e-12);
        assert!((cfg.mutation.rate - 1e-4).abs() < 1e-12);
        assert!((cfg.mutation.probability - 0.5).abs() < 1e-12);
        assert_eq!(cfg.training.batch_size, 100);
        assert_eq!(cfg.training.skip_disc_steps, 1);
    }

    #[test]
    fn subpopulation_size_is_five_on_big_grids() {
        let cfg = TrainConfig::paper_table1();
        assert_eq!(cfg.subpopulation_size(), 5);
    }

    #[test]
    fn cell_seeds_are_distinct() {
        let cfg = TrainConfig::smoke(4);
        let seeds: Vec<u64> = (0..16).map(|i| cfg.cell_seed(i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn cell_seeds_depend_on_master_seed() {
        let mut a = TrainConfig::smoke(2);
        let b = a.clone();
        a.seed = 99;
        assert_ne!(a.cell_seed(0), b.cell_seed(0));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = TrainConfig::paper_table1();
        let json = serde_json_like(&cfg);
        assert!(json.contains("iterations"));
    }

    // serde_json is not in the offline set; smoke-test Serialize via the
    // debug formatter of the serialize impl using a minimal sink.
    fn serde_json_like(cfg: &TrainConfig) -> String {
        format!("{cfg:?}")
    }

    #[test]
    fn mustangs_toggle() {
        let cfg = TrainConfig::smoke(2).with_mustangs();
        assert_eq!(cfg.mutation.loss_mode, LossMode::Mutate);
    }

    #[test]
    fn workers_toggle_clamps_to_one() {
        assert_eq!(TrainConfig::smoke(2).with_workers(4).training.workers_per_cell, 4);
        assert_eq!(TrainConfig::smoke(2).with_workers(0).training.workers_per_cell, 1);
        assert_eq!(TrainConfig::smoke(2).training.workers_per_cell, 1);
    }

    #[test]
    fn transport_kind_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(TransportKind::from_str("tcp"), Ok(TransportKind::Tcp));
        assert_eq!(TransportKind::from_str("in-process"), Ok(TransportKind::InProcess));
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
        assert!(TransportKind::from_str("carrier-pigeon").is_err());
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::InProcess.to_string(), "in-process");
    }

    #[test]
    fn checkpoint_config_defaults_off() {
        let cfg = TrainConfig::smoke(2);
        assert!(!cfg.checkpoint.enabled());
        assert!(!cfg.checkpoint.commits_after(0));
        assert_eq!(cfg.checkpoint.effective_iterations(10), 10);
    }

    #[test]
    fn checkpoint_cadence_and_pause() {
        let cfg = TrainConfig::smoke(2).with_checkpoints("/tmp/ckpt", 3).with_pause_after(4);
        assert!(cfg.checkpoint.enabled());
        // Commits after iterations 3 (cadence), 4 (pause), 6, 9, ...
        let commits: Vec<usize> =
            (0..10).filter(|&i| cfg.checkpoint.commits_after(i)).map(|i| i + 1).collect();
        assert_eq!(commits, vec![3, 4, 6, 9]);
        assert_eq!(cfg.checkpoint.effective_iterations(10), 4);
        assert_eq!(cfg.checkpoint.effective_iterations(2), 2);
        // every is clamped to at least 1.
        assert_eq!(TrainConfig::smoke(2).with_checkpoints("d", 0).checkpoint.every, 1);
    }

    #[test]
    fn fault_config_defaults_off() {
        let cfg = TrainConfig::smoke(2);
        assert_eq!(cfg.fault, FaultConfig::default());
        assert!(!cfg.fault.degradation_enabled());
        assert!(cfg.fault.plan.is_none());
    }

    #[test]
    fn fault_builders() {
        let cfg = TrainConfig::smoke(2).with_fault_plan("kill:3@2", 2).with_heartbeat(10, 5);
        assert_eq!(cfg.fault.plan.as_deref(), Some("kill:3@2"));
        assert_eq!(cfg.fault.max_stale_iters, 2);
        assert!(cfg.fault.degradation_enabled());
        assert_eq!(cfg.fault.heartbeat_interval_ms, 10);
        assert_eq!(cfg.fault.heartbeat_misses, 5);
        // max_stale is clamped to at least one.
        assert_eq!(
            TrainConfig::smoke(2).with_fault_plan("kill:2@1", 0).fault.max_stale_iters,
            1
        );
    }

    #[test]
    fn telemetry_config_defaults_off() {
        let cfg = TrainConfig::smoke(2);
        assert_eq!(cfg.telemetry, TelemetryConfig::default());
        assert!(!cfg.telemetry.is_enabled());
        assert!(cfg.telemetry.dir.is_none());
    }

    #[test]
    fn telemetry_builder() {
        let cfg = TrainConfig::smoke(2).with_telemetry("tel", 128);
        assert!(cfg.telemetry.is_enabled());
        assert_eq!(cfg.telemetry.dir.as_deref(), Some("tel"));
        assert_eq!(cfg.telemetry.ring_capacity, 128);
    }

    #[test]
    fn exchange_mode_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(ExchangeMode::from_str("sync"), Ok(ExchangeMode::Sync));
        assert_eq!(ExchangeMode::from_str("async"), Ok(ExchangeMode::Async));
        assert_eq!(ExchangeMode::from_str("overlap"), Ok(ExchangeMode::Async));
        assert!(ExchangeMode::from_str("eventual").is_err());
        assert_eq!(ExchangeMode::default(), ExchangeMode::Sync);
        assert!(!ExchangeMode::Sync.is_async());
        assert!(ExchangeMode::Async.is_async());
        assert_eq!(ExchangeMode::Async.to_string(), "async");
        assert_eq!(ExchangeMode::Sync.to_string(), "sync");
        let cfg = TrainConfig::smoke(2).with_exchange(ExchangeMode::Async);
        assert_eq!(cfg.exchange, ExchangeMode::Async);
        assert_eq!(TrainConfig::smoke(2).exchange, ExchangeMode::Sync);
    }

    #[test]
    fn wire_loss_round_trip() {
        for w in [WireGanLoss::Minimax, WireGanLoss::Heuristic, WireGanLoss::LeastSquares] {
            let g: GanLoss = w.into();
            let back: WireGanLoss = g.into();
            assert_eq!(back, w);
        }
    }
}
