//! Cellular competitive-coevolutionary GAN training — the
//! Lipizzaner/Mustangs core that the paper parallelizes.
//!
//! # Algorithm (§II-B)
//!
//! A toroidal grid holds one GAN per cell. Each cell maintains
//! *sub-populations*: its own center generator/discriminator plus copies of
//! the four von-Neumann neighbors' centers (the paper's "five-cell Moore
//! neighborhood", s = 5). Every training iteration runs four phases — the
//! same four routines the paper profiles in Table IV:
//!
//! 1. **gather** — refresh the sub-populations with the neighbors' latest
//!    centers (an allgather in the distributed runtime, a snapshot copy in
//!    the sequential baseline);
//! 2. **mutate** — Gaussian hyperparameter mutation of the learning rate
//!    (Table I: rate 1e-4, probability 0.5) and, in Mustangs mode, mutation
//!    of the generator's loss function over {minimax, heuristic,
//!    least-squares};
//! 3. **train** — mini-batch adversarial gradient steps of the center pair
//!    against tournament-selected adversaries from the sub-populations;
//! 4. **update genomes** — re-evaluate every individual against the
//!    opposing sub-population, replace the center with the sub-population
//!    best, and periodically evolve the ensemble mixture weights with a
//!    (1+1)-ES (Table I: mixture mutation scale 0.01).
//!
//! The final model of a cell is a *mixture ensemble* of its sub-population
//! generators weighted by the evolved mixture weights; the grid's answer is
//! the best cell by score (inception score / FID via `lipiz-metrics`).
//!
//! # Drivers
//!
//! [`sequential::SequentialTrainer`] runs every cell in one process — the
//! "single core" baseline of Table III. The distributed master/slave driver
//! lives in `lipiz-runtime`, and the virtual-time cluster driver in
//! `lipiz-cluster`; all three share [`cell::CellEngine`] and are
//! bit-identical given the same [`config::TrainConfig`] (asserted by
//! integration tests).
//!
//! # Example
//!
//! ```
//! use lipiz_core::sequential::SequentialTrainer;
//! use lipiz_core::TrainConfig;
//! use lipiz_tensor::Rng64;
//!
//! let cfg = TrainConfig::smoke(2); // 2×2 grid, toy networks
//! let mut rng = Rng64::seed_from(cfg.training.data_seed);
//! let data = rng.uniform_matrix(cfg.training.dataset_size, cfg.network.data_dim, -0.9, 0.9);
//! let report = SequentialTrainer::new(&cfg, |_| data.clone()).run();
//! assert_eq!(report.driver, "sequential");
//! assert_eq!(report.cells.len(), 4);
//! assert!(report.best().gen_fitness.is_finite());
//! ```

pub mod cell;
pub mod config;
pub mod individual;
pub mod mixture;
pub mod persist;
pub mod profiling;
pub mod report;
pub mod resume;
pub mod sequential;
pub mod snapshot;
pub mod topology;

pub use cell::CellEngine;
pub use config::{
    AdversaryStrategy, CheckpointConfig, CoevolutionConfig, ExchangeMode, FaultConfig,
    GridConfig, LossMode, MutationConfig, TelemetryConfig, TrainConfig, TrainingConfig,
    TransportKind,
};
pub use individual::{Individual, SubPopulation};
pub use mixture::{EnsembleModel, MixtureWeights};
pub use profiling::{ProfileReport, Profiler, Routine};
pub use report::{CellResult, TrainReport};
pub use resume::CellState;
pub use snapshot::CellSnapshot;
pub use topology::{Grid, NeighborhoodPattern};
