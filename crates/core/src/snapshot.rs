//! Center snapshots — the unit of inter-cell migration.

use crate::individual::Individual;
use lipiz_nn::GanLoss;

/// Everything a neighborhood needs to know about one cell's center pair.
///
/// This is exactly what the gather phase moves between cells: in the
/// sequential driver it is a clone, in the distributed runtime it is the
/// allgather payload (serialized by `lipiz-runtime`'s protocol layer), and
/// in the cluster simulator its byte size drives the communication cost
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    /// Flat grid index of the originating cell.
    pub cell: usize,
    /// Center generator genome.
    pub gen_genome: Vec<f32>,
    /// Generator learning rate.
    pub gen_lr: f32,
    /// Generator loss variant (Mustangs gene).
    pub gen_loss: GanLoss,
    /// Generator fitness (lower better).
    pub gen_fitness: f64,
    /// Center discriminator genome.
    pub disc_genome: Vec<f32>,
    /// Discriminator learning rate.
    pub disc_lr: f32,
    /// Discriminator fitness (lower better).
    pub disc_fitness: f64,
}

impl CellSnapshot {
    /// An empty snapshot shell for recycled buffers (filled by
    /// `CellEngine::snapshot_into` or [`CellSnapshot::copy_from`]).
    pub fn empty() -> Self {
        Self {
            cell: 0,
            gen_genome: Vec::new(),
            gen_lr: 0.0,
            gen_loss: GanLoss::Heuristic,
            gen_fitness: 0.0,
            disc_genome: Vec::new(),
            disc_lr: 0.0,
            disc_fitness: 0.0,
        }
    }

    /// Overwrite `self` with `src`, reusing both genome buffers — the
    /// zero-allocation analogue of `clone` for snapshot fan-out in the
    /// drivers.
    pub fn copy_from(&mut self, src: &CellSnapshot) {
        self.cell = src.cell;
        self.gen_genome.clear();
        self.gen_genome.extend_from_slice(&src.gen_genome);
        self.gen_lr = src.gen_lr;
        self.gen_loss = src.gen_loss;
        self.gen_fitness = src.gen_fitness;
        self.disc_genome.clear();
        self.disc_genome.extend_from_slice(&src.disc_genome);
        self.disc_lr = src.disc_lr;
        self.disc_fitness = src.disc_fitness;
    }

    /// Serialized payload size in bytes (used by the comm cost model):
    /// 4 bytes per f32 plus fixed header fields.
    pub fn wire_size(&self) -> usize {
        let floats = self.gen_genome.len() + self.disc_genome.len();
        // genomes + (cell, lrs, loss id, fitnesses) header + 2 length prefixes
        floats * 4 + 8 + 4 + 4 + 1 + 8 + 8 + 8
    }

    /// View the generator half as an [`Individual`].
    pub fn gen_individual(&self) -> Individual {
        Individual {
            genome: self.gen_genome.clone(),
            lr: self.gen_lr,
            loss: self.gen_loss,
            fitness: self.gen_fitness,
        }
    }

    /// View the discriminator half as an [`Individual`].
    pub fn disc_individual(&self) -> Individual {
        Individual {
            genome: self.disc_genome.clone(),
            lr: self.disc_lr,
            loss: GanLoss::Heuristic,
            fitness: self.disc_fitness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> CellSnapshot {
        CellSnapshot {
            cell: 3,
            gen_genome: vec![1.0; 10],
            gen_lr: 2e-4,
            gen_loss: GanLoss::LeastSquares,
            gen_fitness: 0.5,
            disc_genome: vec![2.0; 6],
            disc_lr: 3e-4,
            disc_fitness: 0.25,
        }
    }

    #[test]
    fn wire_size_tracks_genomes() {
        let s = snap();
        let base = s.wire_size();
        let mut bigger = s.clone();
        bigger.gen_genome.extend_from_slice(&[0.0; 5]);
        assert_eq!(bigger.wire_size(), base + 20);
    }

    #[test]
    fn individual_views_carry_fields() {
        let s = snap();
        let g = s.gen_individual();
        assert_eq!(g.genome, vec![1.0; 10]);
        assert_eq!(g.loss, GanLoss::LeastSquares);
        assert_eq!(g.fitness, 0.5);
        let d = s.disc_individual();
        assert_eq!(d.genome, vec![2.0; 6]);
        assert_eq!(d.fitness, 0.25);
    }
}
