//! Training run reports.

use crate::profiling::ProfileReport;
use serde::{Deserialize, Serialize};

/// Per-cell outcome summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Flat grid index.
    pub cell: usize,
    /// Grid coordinates.
    pub coords: (usize, usize),
    /// Best generator fitness in the final sub-population (lower better).
    pub gen_fitness: f64,
    /// Best discriminator fitness in the final sub-population.
    pub disc_fitness: f64,
    /// Final mixture weights of the cell's ensemble.
    pub mixture_weights: Vec<f32>,
}

/// Result of a full training run, common to all three drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Which driver produced this report ("sequential", "distributed",
    /// "cluster-sim").
    pub driver: String,
    /// Grid shape used.
    pub grid: (usize, usize),
    /// Iterations executed.
    pub iterations: usize,
    /// Wall-clock seconds of the run (virtual seconds for the simulator).
    pub wall_seconds: f64,
    /// Routine-level profile (Table IV data).
    pub profile: ProfileReport,
    /// Per-cell outcomes, in flat grid order.
    pub cells: Vec<CellResult>,
    /// Index into `cells` of the best cell (lowest generator fitness, or
    /// external score when a scorer ran).
    pub best_cell: usize,
}

impl TrainReport {
    /// The best cell's result row.
    pub fn best(&self) -> &CellResult {
        &self.cells[self.best_cell]
    }

    /// Speedup of this run relative to a baseline wall time.
    pub fn speedup_vs(&self, baseline_seconds: f64) -> f64 {
        baseline_seconds / self.wall_seconds.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::Profiler;

    fn dummy_report(wall: f64) -> TrainReport {
        TrainReport {
            driver: "test".into(),
            grid: (2, 2),
            iterations: 3,
            wall_seconds: wall,
            profile: Profiler::new().report(),
            cells: vec![
                CellResult {
                    cell: 0,
                    coords: (0, 0),
                    gen_fitness: 0.9,
                    disc_fitness: 0.5,
                    mixture_weights: vec![1.0],
                },
                CellResult {
                    cell: 1,
                    coords: (0, 1),
                    gen_fitness: 0.2,
                    disc_fitness: 0.6,
                    mixture_weights: vec![1.0],
                },
            ],
            best_cell: 1,
        }
    }

    #[test]
    fn best_points_to_best_cell() {
        let r = dummy_report(10.0);
        assert_eq!(r.best().cell, 1);
    }

    #[test]
    fn speedup_math() {
        let r = dummy_report(25.0);
        assert!((r.speedup_vs(100.0) - 4.0).abs() < 1e-9);
        let degenerate = dummy_report(0.0);
        assert!(degenerate.speedup_vs(1.0).is_finite());
    }
}
